//! Proves the workspace contract from `docs/performance.md`: once buffers
//! are warm, the `_with`/`_into` kernel entry points draw every scratch
//! buffer from the caller's [`Workspace`] and touch the global allocator
//! only for the documented output allocation (or not at all).
//!
//! The whole file is a single `#[test]` on purpose: the counting
//! `#[global_allocator]` below is process-global state, and a second test
//! running in a sibling thread would pollute the armed byte counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use pipetune_tensor::{conv2d_gemm_with, im2col, im2col_with, Tensor, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts bytes requested from the system allocator while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Bytes allocated while running `f`.
fn allocated_during(f: impl FnOnce()) -> u64 {
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    BYTES.load(Ordering::SeqCst)
}

#[test]
fn warm_workspace_kernels_do_not_allocate() {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::randn(&[24, 96], 1.0, &mut rng);
    let b = Tensor::randn(&[96, 80], 1.0, &mut rng);
    let x = Tensor::randn(&[2, 3, 12, 12], 1.0, &mut rng);
    let w = Tensor::randn(&[8, 3, 3, 3], 0.5, &mut rng);
    let bias = Tensor::randn(&[8], 0.1, &mut rng);

    let mut ws = Workspace::new();
    let mut prod = Tensor::zeros(&[1]);
    let mut cols = Tensor::zeros(&[1]);

    // Warm-up: grows `prod`/`cols` buffers and the workspace pool to
    // steady state, exactly like a training loop's first iteration.
    a.matmul_into(&b, &mut prod, &mut ws).expect("matmul_into");
    im2col_with(&x, 3, 3, &mut cols).expect("im2col_with");
    let expected_conv = conv2d_gemm_with(&x, &w, &bias, &mut ws).expect("conv2d_gemm_with");
    let expected_prod = a.matmul(&b).expect("matmul");
    let expected_cols = im2col(&x, 3, 3).expect("im2col");

    // Steady state: `matmul_into` and `im2col_with` reuse every buffer.
    let bytes = allocated_during(|| {
        for _ in 0..10 {
            a.matmul_into(&b, &mut prod, &mut ws).expect("matmul_into");
            im2col_with(&x, 3, 3, &mut cols).expect("im2col_with");
        }
    });
    assert_eq!(bytes, 0, "warm matmul_into/im2col_with must not allocate");
    assert_eq!(prod.data(), expected_prod.data());
    assert_eq!(cols.data(), expected_cols.data());

    // `conv2d_gemm_with` documents exactly one allocation per call: the
    // returned output tensor. Scratch (cols, wmat, prod) must all come
    // from the pool, so per-call bytes stay within the output tensor plus
    // a small constant for its shape bookkeeping.
    let out_bytes = expected_conv.data().len() as u64 * 4;
    let reps = 10u64;
    let bytes = allocated_during(|| {
        for _ in 0..reps {
            let out = conv2d_gemm_with(&x, &w, &bias, &mut ws).expect("conv2d_gemm_with");
            assert_eq!(out.data(), expected_conv.data());
        }
    });
    assert!(
        bytes <= reps * (out_bytes + 256),
        "conv2d_gemm_with allocated {bytes} bytes over {reps} calls; \
         budget is the output tensor ({out_bytes} bytes) plus shape bookkeeping per call"
    );
}
