//! Cache-blocked GEMM kernel with packed B-panels.
//!
//! The summation-order contract (see `docs/performance.md`): for every
//! output element `out[i][j]`, products `a[i][p] * b[p][j]` are accumulated
//! in ascending-`p` order, and products whose `a[i][p]` compares equal to
//! `0.0` are skipped — exactly the order and skip rule of the original
//! streaming i-k-j kernel. Blocking only changes *which other* elements are
//! computed between two updates of the same element, never the sequence of
//! updates one element sees, so results are bit-identical to the naive
//! kernel for every shape (the `gemm_determinism` suite pins this against a
//! frozen copy of the pre-blocking kernel).
//!
//! Blocking scheme:
//!
//! * `KC × NC` panels of `B` are packed contiguously into workspace scratch,
//!   sized to sit in L2 while the inner loops run out of L1;
//! * rows of `A` are processed `MR` at a time against the packed panel,
//!   with an `MR × NR` block of `out` held in register accumulators across
//!   the panel depth, so each loaded `B` value feeds `MR` rows and each
//!   output value round-trips memory once per panel instead of once per
//!   `p`;
//! * small problems (`m·k·n` below [`DIRECT_FLOP_LIMIT`]) skip packing
//!   entirely and run the streaming kernel — identical bits, no overhead.

use crate::Workspace;

/// Rows of `A` processed per packed-panel sweep (the register tile height).
const MR: usize = 4;
/// Output columns held in register accumulators per micro-kernel call;
/// `MR × NR` floats must fit the vector register file.
const NR: usize = 16;
/// `k`-extent of a packed panel.
const KC: usize = 256;
/// `n`-extent of a packed panel. `KC × NC × 4` bytes = 1 MiB: half a
/// typical L2, leaving room for the `MR` output-row segments and `A` rows.
const NC: usize = 1024;
/// Problems with fewer multiply-adds than this run the direct streaming
/// kernel; packing overhead only amortises above it.
const DIRECT_FLOP_LIMIT: usize = 64 * 64 * 64;

/// Accumulates `out += A · B` for row-major `A (m×k)`, `B (k×n)`,
/// `out (m×n)`.
///
/// `out` is *accumulated into*, not overwritten: callers pass a zeroed
/// buffer for a plain product. All scratch comes from `ws`.
pub(crate) fn gemm(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * k * n <= DIRECT_FLOP_LIMIT {
        gemm_direct(a, b, out, m, k, n);
        return;
    }

    let avx = avx_available();
    let mut panel = ws.take(KC.min(k) * NC.min(n));
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // Pack B[pc..pc+kc, jc..jc+nc] row-contiguously.
            for pi in 0..kc {
                let src = (pc + pi) * n + jc;
                panel[pi * nc..(pi + 1) * nc].copy_from_slice(&b[src..src + nc]);
            }
            let panel = &panel[..kc * nc];

            let mut i = 0;
            while i + MR <= m {
                if avx {
                    // SAFETY: `avx_available` confirmed AVX support on
                    // this CPU at runtime.
                    unsafe { tile_avx::<MR>(a, panel, out, i, k, n, jc, nc, pc, kc) }
                } else {
                    tile::<MR>(a, panel, out, i, k, n, jc, nc, pc, kc);
                }
                i += MR;
            }
            // Tail rows (m not a multiple of MR): one row at a time.
            while i < m {
                let orow = &mut out[i * n + jc..i * n + jc + nc];
                for pi in 0..kc {
                    let av = a[i * k + (pc + pi)];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &panel[pi * nc..(pi + 1) * nc];
                    for (ov, &bv) in orow.iter_mut().zip(brow) {
                        *ov += av * bv;
                    }
                }
                i += 1;
            }
        }
    }
    ws.give(panel);
}

/// Accumulates an `R`-row register tile against the packed panel: `out`
/// rows `i..i+R`, columns `jc..jc+nc`, panel rows `0..kc` (i.e. `A`
/// columns `pc..pc+kc`).
///
/// The inner micro-kernel holds an `R × NR` block of `out` in register
/// accumulators across the whole panel depth, so each output value is
/// loaded and stored once per panel instead of once per `p`. For a fixed
/// element that changes nothing observable: its partial sums still arrive
/// in ascending-`p` order, and a row whose `A` element is ±0.0 skips its
/// fused multiply-add for that `p`, reproducing the streaming kernel's
/// zero-skip rule bit-for-bit.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile<const R: usize>(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    i: usize,
    k: usize,
    n: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
) {
    tile_body::<R>(a, panel, out, i, k, n, jc, nc, pc, kc);
}

/// [`tile`] compiled with AVX enabled so the accumulator loops
/// autovectorize 8-wide. Only `avx` is enabled — never `fma` — so LLVM
/// emits separate IEEE multiplies and adds and results stay bit-identical
/// to the scalar path.
///
/// # Safety
///
/// The CPU must support AVX (checked by [`avx_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_avx<const R: usize>(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    i: usize,
    k: usize,
    n: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
) {
    tile_body::<R>(a, panel, out, i, k, n, jc, nc, pc, kc);
}

/// Fallback stub so the dispatch site compiles on non-x86 targets; the
/// runtime check in [`avx_available`] guarantees it is never reached.
#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_avx<const R: usize>(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    i: usize,
    k: usize,
    n: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
) {
    tile_body::<R>(a, panel, out, i, k, n, jc, nc, pc, kc);
}

/// Whether the running CPU supports AVX (always false off x86-64).
fn avx_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The shared register-tile body (see [`tile`] for the contract).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile_body<const R: usize>(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    i: usize,
    k: usize,
    n: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
) {
    let mut jr = 0;
    while jr + NR <= nc {
        let mut acc = [[0.0f32; NR]; R];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            acc_row.copy_from_slice(&out[(i + r) * n + jc + jr..][..NR]);
        }
        for pi in 0..kc {
            let bseg = &panel[pi * nc + jr..][..NR];
            let avs: [f32; R] = core::array::from_fn(|r| a[(i + r) * k + pc + pi]);
            if avs.iter().all(|&v| v != 0.0) {
                // Hot path: no branches, R×NR independent multiply-adds.
                for (acc_row, &av) in acc.iter_mut().zip(&avs) {
                    for (ov, &bv) in acc_row.iter_mut().zip(bseg) {
                        *ov += av * bv;
                    }
                }
            } else {
                // Zero-skip path: drop exactly the rows whose A element
                // is ±0.0, as the streaming kernel does.
                for (acc_row, &av) in acc.iter_mut().zip(&avs) {
                    if av != 0.0 {
                        for (ov, &bv) in acc_row.iter_mut().zip(bseg) {
                            *ov += av * bv;
                        }
                    }
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            out[(i + r) * n + jc + jr..][..NR].copy_from_slice(acc_row);
        }
        jr += NR;
    }
    // Column tail (nc not a multiple of NR): per-row streaming updates,
    // same ascending-p order and zero-skip rule.
    if jr < nc {
        for pi in 0..kc {
            let bseg = &panel[pi * nc + jr..pi * nc + nc];
            for r in 0..R {
                let av = a[(i + r) * k + pc + pi];
                if av != 0.0 {
                    let orow = &mut out[(i + r) * n + jc + jr..(i + r) * n + jc + nc];
                    for (ov, &bv) in orow.iter_mut().zip(bseg) {
                        *ov += av * bv;
                    }
                }
            }
        }
    }
}

/// The streaming i-k-j kernel: no packing, same accumulation order and
/// zero-skip rule. Used below [`DIRECT_FLOP_LIMIT`], where `B` fits in
/// cache and packing would be pure overhead.
fn gemm_direct(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
}

/// Writes `src`ᵀ into `dst` for row-major `src (rows×cols)`;
/// `dst` receives the `cols×rows` transpose. Scratch-friendly transpose
/// used by the fused `matmul_tn`/`matmul_nt` variants.
pub(crate) fn transpose_into(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for i in 0..rows {
        for (j, &v) in src[i * cols..(i + 1) * cols].iter().enumerate() {
            dst[j * rows + i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frozen copy of the pre-blocking kernel: the reference for the
    /// bit-identity contract.
    fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        gemm_direct(a, b, &mut out, m, k, n);
        out
    }

    fn pattern(len: usize, sparsity: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                if sparsity > 0 && i % sparsity == 0 {
                    0.0
                } else {
                    ((i * 2_654_435_761 % 1000) as f32 - 500.0) / 250.0
                }
            })
            .collect()
    }

    #[test]
    fn blocked_matches_reference_bitwise_across_shapes() {
        let mut ws = Workspace::new();
        // Shapes straddling every blocking edge: tiny, tails in each of
        // m/k/n, exact multiples, and zero-heavy inputs.
        for &(m, k, n, sparsity) in &[
            (1, 1, 1, 0),
            (3, 7, 5, 0),
            (4, 256, 1024, 0),
            (5, 257, 1025, 3),
            (33, 300, 130, 4),
            (64, 512, 48, 0),
            (17, 513, 2048, 7),
            (14, 300, 1100, 0),
            (15, 257, 1025, 3),
        ] {
            let a = pattern(m * k, sparsity);
            let b = pattern(k * n, 0);
            let want = reference(&a, &b, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm(&a, &b, &mut got, m, k, n, &mut ws);
            assert!(
                want.iter().zip(&got).all(|(x, y)| x.to_bits() == y.to_bits()),
                "bit mismatch at {m}x{k}x{n} sparsity {sparsity}"
            );
        }
    }

    #[test]
    fn transpose_into_round_trips() {
        let src: Vec<f32> = (0..6).map(|v| v as f32).collect();
        let mut t = vec![0.0f32; 6];
        transpose_into(&src, &mut t, 2, 3);
        assert_eq!(t, &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        let mut back = vec![0.0f32; 6];
        transpose_into(&t, &mut back, 3, 2);
        assert_eq!(back, src);
    }
}
