//! 2-D convolution and pooling primitives (NCHW layout, stride 1, no padding).
//!
//! These are the building blocks of the LeNet-5 reproduction in
//! `pipetune-dnn`. Kernels are small (5×5 at most) and inputs are tiny, so a
//! direct loop implementation is both simple and fast enough.

use crate::{Tensor, TensorError};

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, shaped like the forward input.
    pub grad_input: Tensor,
    /// Gradient with respect to the kernel weights.
    pub grad_weight: Tensor,
    /// Gradient with respect to the per-output-channel bias.
    pub grad_bias: Tensor,
}

fn check_rank4(t: &Tensor) -> Result<(usize, usize, usize, usize), TensorError> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: t.shape().rank() });
    }
    let d = t.shape().dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Valid (no padding), stride-1 2-D convolution.
///
/// * `input`: `[batch, in_ch, h, w]`
/// * `weight`: `[out_ch, in_ch, kh, kw]`
/// * `bias`: `[out_ch]`
///
/// Returns `[batch, out_ch, h-kh+1, w-kw+1]`.
///
/// # Errors
///
/// Returns a shape/rank error when the operands do not line up or the kernel
/// is larger than the input.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Result<Tensor, TensorError> {
    let (n, cin, h, w) = check_rank4(input)?;
    let (cout, cin2, kh, kw) = check_rank4(weight)?;
    if cin != cin2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![cout, cin, kh, kw],
            actual: weight.shape().dims().to_vec(),
        });
    }
    if bias.shape().dims() != [cout] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![cout],
            actual: bias.shape().dims().to_vec(),
        });
    }
    if kh > h || kw > w {
        return Err(TensorError::ShapeMismatch {
            expected: vec![h, w],
            actual: vec![kh, kw],
        });
    }
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let mut out = vec![0.0f32; n * cout * oh * ow];
    let x = input.data();
    let k = weight.data();
    for b in 0..n {
        for oc in 0..cout {
            let bias_v = bias.data()[oc];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias_v;
                    for ic in 0..cin {
                        for ky in 0..kh {
                            let xrow = ((b * cin + ic) * h + (oy + ky)) * w + ox;
                            let krow = ((oc * cin + ic) * kh + ky) * kw;
                            for kx in 0..kw {
                                acc += x[xrow + kx] * k[krow + kx];
                            }
                        }
                    }
                    out[((b * cout + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, cout, oh, ow])
}

/// Backward pass of [`conv2d`]: given `grad_output` (shaped like the forward
/// output), computes gradients for input, weight and bias.
///
/// # Errors
///
/// Returns a shape/rank error when `grad_output` does not match the forward
/// output shape implied by `input` and `weight`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
) -> Result<Conv2dGrads, TensorError> {
    let (n, cin, h, w) = check_rank4(input)?;
    let (cout, _, kh, kw) = check_rank4(weight)?;
    let (n2, cout2, oh, ow) = check_rank4(grad_output)?;
    if n2 != n || cout2 != cout || oh != h - kh + 1 || ow != w - kw + 1 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, cout, h - kh + 1, w - kw + 1],
            actual: grad_output.shape().dims().to_vec(),
        });
    }
    let x = input.data();
    let k = weight.data();
    let g = grad_output.data();
    let mut gx = vec![0.0f32; x.len()];
    let mut gk = vec![0.0f32; k.len()];
    let mut gb = vec![0.0f32; cout];
    for b in 0..n {
        for oc in 0..cout {
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[((b * cout + oc) * oh + oy) * ow + ox];
                    if gv == 0.0 {
                        continue;
                    }
                    gb[oc] += gv;
                    for ic in 0..cin {
                        for ky in 0..kh {
                            let xrow = ((b * cin + ic) * h + (oy + ky)) * w + ox;
                            let krow = ((oc * cin + ic) * kh + ky) * kw;
                            for kx in 0..kw {
                                gk[krow + kx] += gv * x[xrow + kx];
                                gx[xrow + kx] += gv * k[krow + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(Conv2dGrads {
        grad_input: Tensor::from_vec(gx, input.shape().dims())?,
        grad_weight: Tensor::from_vec(gk, weight.shape().dims())?,
        grad_bias: Tensor::from_vec(gb, &[cout])?,
    })
}

/// Non-overlapping `k×k` max pooling on `[batch, ch, h, w]`.
///
/// Returns the pooled tensor and the flat argmax indices used by
/// [`max_pool2d_backward`]. `h` and `w` must be divisible by `k`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the spatial dimensions are not
/// divisible by `k`, or a rank error on non-rank-4 input.
pub fn max_pool2d(input: &Tensor, k: usize) -> Result<(Tensor, Vec<usize>), TensorError> {
    let (n, c, h, w) = check_rank4(input)?;
    if k == 0 || h % k != 0 || w % k != 0 {
        return Err(TensorError::ShapeMismatch { expected: vec![h / k.max(1) * k], actual: vec![h, w] });
    }
    let (oh, ow) = (h / k, w / k);
    let x = input.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut idx = vec![0usize; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let i = ((b * c + ch) * h + (oy * k + ky)) * w + (ox * k + kx);
                            if x[i] > best {
                                best = x[i];
                                best_i = i;
                            }
                        }
                    }
                    let o = ((b * c + ch) * oh + oy) * ow + ox;
                    out[o] = best;
                    idx[o] = best_i;
                }
            }
        }
    }
    Ok((Tensor::from_vec(out, &[n, c, oh, ow])?, idx))
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// position recorded in `indices`.
///
/// # Errors
///
/// Returns [`TensorError::SizeMismatch`] when `indices` does not match
/// `grad_output`.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    indices: &[usize],
    input_dims: &[usize],
) -> Result<Tensor, TensorError> {
    if indices.len() != grad_output.len() {
        return Err(TensorError::SizeMismatch {
            expected: grad_output.len(),
            actual: indices.len(),
        });
    }
    let mut gx = Tensor::zeros(input_dims);
    let buf = gx.data_mut();
    for (&i, &g) in indices.iter().zip(grad_output.data()) {
        buf[i] += g;
    }
    Ok(gx)
}

/// Non-overlapping `k×k` average pooling on `[batch, ch, h, w]`.
///
/// # Errors
///
/// Same conditions as [`max_pool2d`].
pub fn avg_pool2d(input: &Tensor, k: usize) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = check_rank4(input)?;
    if k == 0 || h % k != 0 || w % k != 0 {
        return Err(TensorError::ShapeMismatch { expected: vec![h / k.max(1) * k], actual: vec![h, w] });
    }
    let (oh, ow) = (h / k, w / k);
    let x = input.data();
    let inv = 1.0 / (k * k) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += x[((b * c + ch) * h + (oy * k + ky)) * w + (ox * k + kx)];
                        }
                    }
                    out[((b * c + ch) * oh + oy) * ow + ox] = acc * inv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel_passes_through() {
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let weight = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]).unwrap();
        let bias = Tensor::zeros(&[1]);
        let out = conv2d(&input, &weight, &bias).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_sums_window() {
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let weight = Tensor::ones(&[1, 1, 2, 2]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d(&input, &weight, &bias).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
        assert!(out.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn conv2d_backward_matches_numeric_gradient() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let input = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        let weight = Tensor::randn(&[3, 2, 2, 2], 0.5, &mut rng);
        let bias = Tensor::randn(&[3], 0.1, &mut rng);
        let out = conv2d(&input, &weight, &bias).unwrap();
        // Loss = sum(out); grad_output = ones.
        let go = Tensor::ones(out.shape().dims());
        let grads = conv2d_backward(&input, &weight, &go).unwrap();
        let eps = 1e-2f32;
        // Check a few weight entries against central differences.
        for probe in [0usize, 5, 11] {
            let mut wp = weight.clone();
            wp.data_mut()[probe] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[probe] -= eps;
            let fp = conv2d(&input, &wp, &bias).unwrap().sum();
            let fm = conv2d(&input, &wm, &bias).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grads.grad_weight.data()[probe];
            assert!((num - ana).abs() < 0.05 * (1.0 + ana.abs()), "probe {probe}: {num} vs {ana}");
        }
        // Input gradient numeric check.
        for probe in [0usize, 17] {
            let mut xp = input.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = input.clone();
            xm.data_mut()[probe] -= eps;
            let fp = conv2d(&xp, &weight, &bias).unwrap().sum();
            let fm = conv2d(&xm, &weight, &bias).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grads.grad_input.data()[probe];
            assert!((num - ana).abs() < 0.05 * (1.0 + ana.abs()), "probe {probe}: {num} vs {ana}");
        }
    }

    #[test]
    fn max_pool_picks_maxima_and_routes_gradient_back() {
        let input =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0], &[1, 1, 4, 4])
                .unwrap();
        let (out, idx) = max_pool2d(&input, 2).unwrap();
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
        let go = Tensor::ones(&[1, 1, 2, 2]);
        let gx = max_pool2d_backward(&go, &idx, &[1, 1, 4, 4]).unwrap();
        assert_eq!(gx.sum(), 4.0);
        assert_eq!(gx.data()[5], 1.0); // position of 6.0
    }

    #[test]
    fn avg_pool_averages_windows() {
        let input = Tensor::from_vec((1..=4).map(|x| x as f32).collect(), &[1, 1, 2, 2]).unwrap();
        let out = avg_pool2d(&input, 2).unwrap();
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn pooling_rejects_indivisible_dims() {
        let input = Tensor::ones(&[1, 1, 3, 3]);
        assert!(max_pool2d(&input, 2).is_err());
        assert!(avg_pool2d(&input, 2).is_err());
    }
}
