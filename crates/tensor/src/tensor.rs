use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is the single data type flowing through the `pipetune-dnn`
/// framework: inputs, activations, weights and gradients are all `Tensor`s.
///
/// # Example
///
/// ```
/// use pipetune_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![1.0; len] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![value; len] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps a flat buffer in a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] when `data.len()` is not the
    /// product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != data.len() {
            return Err(TensorError::SizeMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Samples every element from `U(lo, hi)` using the caller's RNG.
    pub fn uniform<R: Rng>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        let data = (0..len).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// Samples every element from `N(0, std²)` using a Box-Muller transform.
    ///
    /// Used for weight initialisation; the caller supplies the RNG so that
    /// model construction stays deterministic under a fixed seed.
    pub fn randn<R: Rng>(dims: &[usize], std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < len {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn at(&self, idx: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(idx)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn set(&mut self, idx: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(idx)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] when the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::SizeMismatch { expected: shape.len(), actual: self.data.len() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Retargets this tensor's shape and buffer length for a kernel that
    /// will fully overwrite it, growing the buffer only when the element
    /// count increases (the grow-only rule of `docs/performance.md`).
    pub(crate) fn reshape_in_place_for_kernel(&mut self, dims: &[usize]) {
        if self.shape.dims() == dims {
            return; // steady state: shape and buffer already match
        }
        let shape = Shape::new(dims);
        self.data.resize(shape.len(), 0.0);
        self.shape = shape;
    }

    /// Copies rows `[start, end)` of a rank-≥1 tensor (outermost axis).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the range exceeds the
    /// outermost axis, or [`TensorError::RankMismatch`] on a scalar.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor, TensorError> {
        if self.shape.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        let rows = self.shape.dims()[0];
        if start > end || end > rows {
            return Err(TensorError::IndexOutOfBounds { axis: 0, index: end, len: rows });
        }
        let row_len: usize = self.shape.dims()[1..].iter().product();
        let mut dims = self.shape.dims().to_vec();
        dims[0] = end - start;
        let data = self.data[start * row_len..end * row_len].to_vec();
        Tensor::from_vec(data, &dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_validates_size() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.at(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.at(&[2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn randn_is_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(Tensor::randn(&[4, 4], 0.1, &mut a), Tensor::randn(&[4, 4], 0.1, &mut b));
    }

    #[test]
    fn randn_has_roughly_correct_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn slice_rows_copies_contiguous_rows() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]).unwrap();
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.shape().dims(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[3]).is_err());
    }
}
