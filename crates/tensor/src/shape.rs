use serde::{Deserialize, Serialize};

use crate::TensorError;

/// A tensor shape: the length of each axis, outermost first.
///
/// `Shape` is a thin validated wrapper over `Vec<usize>` used by [`crate::Tensor`].
///
/// # Example
///
/// ```
/// use pipetune_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from axis lengths.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Total number of elements (product of axis lengths; 1 for a scalar shape).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` when the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Axis lengths as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Length of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::RankMismatch { expected: axis + 1, actual: self.0.len() })
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset for a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `idx` has the wrong number of
    /// coordinates, and [`TensorError::IndexOutOfBounds`] when any coordinate
    /// exceeds its axis length.
    pub fn offset(&self, idx: &[usize]) -> Result<usize, TensorError> {
        if idx.len() != self.0.len() {
            return Err(TensorError::RankMismatch { expected: self.0.len(), actual: idx.len() });
        }
        let strides = self.strides();
        let mut off = 0usize;
        for (axis, (&i, (&d, &s))) in idx.iter().zip(self.0.iter().zip(strides.iter())).enumerate()
        {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { axis, index: i, len: d });
            }
            off += i * s;
        }
        Ok(off)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(s.offset(&[1]), Err(TensorError::RankMismatch { .. })));
        assert!(matches!(
            s.offset(&[0, 3]),
            Err(TensorError::IndexOutOfBounds { axis: 1, index: 3, len: 3 })
        ));
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
    }
}
