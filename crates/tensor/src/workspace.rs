//! Grow-only scratch arenas for the kernel hot path.
//!
//! Every wall-clock-critical kernel in this crate (the blocked GEMM in
//! [`crate::Tensor::matmul`], the im2col lowering, the packed transposes
//! behind the fused `matmul_tn`/`matmul_nt` variants) needs short-lived
//! `f32` scratch. Allocating that scratch per call dominated steady-state
//! training epochs, so kernels now draw it from a [`Workspace`]: a pool of
//! reusable buffers that only ever grows. After a warm-up pass the pool has
//! reached its high-water mark and subsequent epochs allocate nothing (see
//! `docs/performance.md` for the lifetime rules and the allocation-counting
//! test in `crates/tensor/tests/workspace_alloc.rs`).
//!
//! Two ways to use it:
//!
//! * **Implicit** — the plain [`Tensor::matmul`](crate::Tensor::matmul)
//!   family draws from a thread-local workspace via [`with_thread_local`],
//!   so every existing call site reuses scratch with no signature changes.
//! * **Explicit** — the `*_with` kernel variants (e.g.
//!   [`Tensor::matmul_with`](crate::Tensor::matmul_with),
//!   [`crate::conv2d_gemm_with`]) take `&mut Workspace`, letting a layer or
//!   a benchmark own and audit its arena.
//!
//! Workspace contents are *never* read before being overwritten: kernels
//! treat checked-out buffers as uninitialised memory, which keeps results
//! bit-identical whether scratch is fresh or recycled.

use std::cell::RefCell;

/// A grow-only pool of reusable `f32` scratch buffers.
///
/// [`Workspace::take`] checks a buffer out (recycling the best-fitting
/// retired buffer, growing it if needed) and [`Workspace::give`] returns it.
/// Buffers keep their capacity across the round-trip, so a steady-state
/// caller whose buffer sizes have stabilised performs no allocations.
///
/// # Example
///
/// ```
/// use pipetune_tensor::Workspace;
///
/// let mut ws = Workspace::new();
/// let buf = ws.take(1024);
/// assert_eq!(buf.len(), 1024);
/// ws.give(buf);
/// // The next take of any size ≤ 1024 reuses the same heap block.
/// let again = ws.take(512);
/// assert!(again.capacity() >= 1024);
/// # ws.give(again);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    /// Retired buffers, unordered. Small (a handful of entries), so a
    /// linear best-fit scan beats any indexed structure.
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace { pool: Vec::new() }
    }

    /// Checks out a buffer of exactly `len` elements.
    ///
    /// The contents are unspecified (recycled buffers carry stale data);
    /// callers must treat the buffer as uninitialised and fully overwrite
    /// whatever region they read back. Best-fit selection: the smallest
    /// retired buffer that already holds `len` elements, else the largest
    /// one (grown in place), so repeated identical call sequences converge
    /// on a stable buffer-to-role assignment and stop allocating.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let fitting = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let chosen = fitting.or_else(|| {
            self.pool.iter().enumerate().max_by_key(|(_, b)| b.capacity()).map(|(i, _)| i)
        });
        let mut buf = match chosen {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        buf.resize(len, 0.0);
        buf
    }

    /// Checks out a buffer of `len` elements, zero-filled.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Number of retired buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total `f32` capacity currently held by the pool (the arena's
    /// high-water footprint while idle).
    pub fn capacity(&self) -> usize {
        self.pool.iter().map(Vec::capacity).sum()
    }

    /// Drops every pooled buffer, releasing the arena's memory.
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}

/// Workspaces hold no data of semantic value, so a clone starts empty; a
/// cloned layer or model re-warms its own arena. This keeps checkpoint
/// clones (which snapshot layers mid-run) from duplicating scratch memory.
impl Clone for Workspace {
    fn clone(&self) -> Self {
        Workspace::new()
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with this thread's shared kernel workspace.
///
/// The plain (`Workspace`-less) kernel entry points use this so every call
/// site on a thread shares one grow-only arena. Re-entrant use from inside
/// `f` would double-borrow, so kernels never call back into
/// `with_thread_local` while holding the borrow.
pub fn with_thread_local<T>(f: impl FnOnce(&mut Workspace) -> T) -> T {
    THREAD_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_capacity() {
        let mut ws = Workspace::new();
        let a = ws.take(100);
        let ptr = a.as_ptr();
        ws.give(a);
        let b = ws.take(50);
        assert_eq!(b.as_ptr(), ptr, "must reuse the retired heap block");
        assert_eq!(b.len(), 50);
        ws.give(b);
        assert_eq!(ws.pooled(), 1);
        assert!(ws.capacity() >= 100);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        a.fill(7.5);
        ws.give(a);
        let b = ws.take_zeroed(8);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clone_is_empty_and_clear_releases() {
        let mut ws = Workspace::new();
        ws.give(vec![0.0; 64]);
        assert_eq!(ws.clone().pooled(), 0);
        ws.clear();
        assert_eq!(ws.capacity(), 0);
    }

    #[test]
    fn thread_local_workspace_persists_across_calls() {
        let cap0 = with_thread_local(|ws| {
            let b = ws.take(4096);
            ws.give(b);
            ws.capacity()
        });
        let cap1 = with_thread_local(|ws| ws.capacity());
        assert_eq!(cap0, cap1);
        assert!(cap1 >= 4096);
    }
}
