//! Element-wise and linear-algebra operations on [`Tensor`].

use crate::gemm::{gemm, transpose_into};
use crate::{workspace, Tensor, TensorError, Workspace};

impl Tensor {
    /// Element-wise sum of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        f: F,
    ) -> Result<Tensor, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: other.shape().dims().to_vec(),
            });
        }
        let data = self.data().iter().zip(other.data()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(data, self.shape().dims())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let data = self.data().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(data, self.shape().dims()).expect("same shape")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place AXPY update: `self += alpha * other`.
    ///
    /// This is the hot loop of SGD so it avoids allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: other.shape().dims().to_vec(),
            });
        }
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Arithmetic mean of all elements.
    ///
    /// Returns `0.0` on an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Squared Euclidean norm of the flattened tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum()
    }

    /// Matrix product of two rank-2 tensors: `(m×k) · (k×n) = (m×n)`.
    ///
    /// Runs the cache-blocked kernel (packed B-panels, register-tiled
    /// rows) through this thread's shared [`Workspace`]; results are
    /// bit-identical to the historical streaming i-k-j kernel for every
    /// shape — see the summation-order contract in `docs/performance.md`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when either operand is not rank 2
    /// and [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        workspace::with_thread_local(|ws| self.matmul_with(other, ws))
    }

    /// [`Tensor::matmul`] drawing scratch from the caller's [`Workspace`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_with(&self, other: &Tensor, ws: &mut Workspace) -> Result<Tensor, TensorError> {
        let (m, _, n) = matmul_dims(self, other)?;
        let mut out = vec![0.0f32; m * n];
        self.matmul_into_slice(other, &mut out, ws);
        Tensor::from_vec(out, &[m, n])
    }

    /// [`Tensor::matmul`] writing into a preallocated output tensor,
    /// reshaping it to `m×n`. With a warmed `ws` and an `out` whose buffer
    /// already holds `m·n` elements, the call performs no allocations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_into(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> Result<(), TensorError> {
        let (m, _, n) = matmul_dims(self, other)?;
        out.reshape_in_place_for_kernel(&[m, n]);
        out.data_mut().fill(0.0);
        self.matmul_into_slice(other, out.data_mut(), ws);
        Ok(())
    }

    /// Accumulates `self · other` into `out` (assumed zeroed, shape-checked
    /// by the callers above).
    fn matmul_into_slice(&self, other: &Tensor, out: &mut [f32], ws: &mut Workspace) {
        let (m, k) = (self.shape().dims()[0], self.shape().dims()[1]);
        let n = other.shape().dims()[1];
        gemm(self.data(), other.data(), out, m, k, n, ws);
    }

    /// Transposed matrix product `selfᵀ · other` for `self (k×m)` and
    /// `other (k×n)`, bit-identical to
    /// `self.transpose()?.matmul(other)` but without allocating the
    /// transpose: the packed copy lives in this thread's [`Workspace`].
    ///
    /// This is the backward-pass weight-gradient kernel (`∂L/∂W = xᵀ·∂L/∂y`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], applied to the transposed
    /// left operand.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        workspace::with_thread_local(|ws| self.matmul_tn_with(other, ws))
    }

    /// [`Tensor::matmul_tn`] drawing scratch from the caller's [`Workspace`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul_tn`].
    pub fn matmul_tn_with(
        &self,
        other: &Tensor,
        ws: &mut Workspace,
    ) -> Result<Tensor, TensorError> {
        check_rank2(self)?;
        check_rank2(other)?;
        let (k, m) = (self.shape().dims()[0], self.shape().dims()[1]);
        let (k2, n) = (other.shape().dims()[0], other.shape().dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch { expected: vec![k, n], actual: vec![k2, n] });
        }
        let mut at = ws.take(k * m);
        transpose_into(self.data(), &mut at, k, m);
        let mut out = vec![0.0f32; m * n];
        gemm(&at, other.data(), &mut out, m, k, n, ws);
        ws.give(at);
        Tensor::from_vec(out, &[m, n])
    }

    /// Transposed matrix product `self · otherᵀ` for `self (m×k)` and
    /// `other (n×k)`, bit-identical to
    /// `self.matmul(&other.transpose()?)` but without allocating the
    /// transpose: the packed copy lives in this thread's [`Workspace`].
    ///
    /// This is the backward-pass input-gradient kernel (`∂L/∂x = ∂L/∂y·Wᵀ`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], applied to the transposed
    /// right operand.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        workspace::with_thread_local(|ws| self.matmul_nt_with(other, ws))
    }

    /// [`Tensor::matmul_nt`] drawing scratch from the caller's [`Workspace`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul_nt`].
    pub fn matmul_nt_with(
        &self,
        other: &Tensor,
        ws: &mut Workspace,
    ) -> Result<Tensor, TensorError> {
        check_rank2(self)?;
        check_rank2(other)?;
        let (m, k) = (self.shape().dims()[0], self.shape().dims()[1]);
        let (n, k2) = (other.shape().dims()[0], other.shape().dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch { expected: vec![k, n], actual: vec![n, k2] });
        }
        let mut bt = ws.take(k * n);
        transpose_into(other.data(), &mut bt, n, k);
        let mut out = vec![0.0f32; m * n];
        gemm(self.data(), &bt, &mut out, m, k, n, ws);
        ws.give(bt);
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for (j, &v) in self.data()[i * n..(i + 1) * n].iter().enumerate() {
                out[j * m + i] = v;
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Adds a length-`n` row vector to every row of an `m×n` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias` is not a rank-1
    /// tensor of length `n`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = self.clone();
        out.add_row_broadcast_inplace(bias)?;
        Ok(out)
    }

    /// In-place variant of [`Tensor::add_row_broadcast`]: adds the bias row
    /// to every row of `self` without allocating. This is the `add_bias`
    /// step of every dense/conv/LSTM forward pass, where the copy made by
    /// the allocating variant was pure overhead.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias` is not a rank-1
    /// tensor of length `n`.
    pub fn add_row_broadcast_inplace(&mut self, bias: &Tensor) -> Result<(), TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        if bias.shape().dims() != [n] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n],
                actual: bias.shape().dims().to_vec(),
            });
        }
        let out = self.data_mut();
        let b = bias.data();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] += b[j];
            }
        }
        Ok(())
    }

    /// Sums a rank-2 tensor over its rows, producing a length-`n` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn sum_rows(&self) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(&self.data()[i * n..(i + 1) * n]) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Index of the maximum element in each row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] on non-matrices and
    /// [`TensorError::Empty`] when a row has zero columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        if n == 0 {
            return Err(TensorError::Empty);
        }
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Numerically-stable row-wise softmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for j in 0..n {
                let e = (row[j] - max).exp();
                out[i * n + j] = e;
                denom += e;
            }
            for j in 0..n {
                out[i * n + j] /= denom;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

fn check_rank2(t: &Tensor) -> Result<(), TensorError> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.shape().rank() });
    }
    Ok(())
}

/// Validates a plain `(m×k)·(k×n)` product and returns `(m, k, n)`.
fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize), TensorError> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let (k2, n) = (b.shape().dims()[0], b.shape().dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch { expected: vec![k, n], actual: vec![k2, n] });
    }
    Ok((m, k, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = t(&[1.0; 6], &[2, 3]);
        let b = t(&[1.0; 4], &[2, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let a = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 100.0], &[2, 3]);
        let s = a.softmax_rows().unwrap();
        for i in 0..2 {
            let row = &s.data()[i * 3..(i + 1) * 3];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!(s.argmax_rows().unwrap(), vec![2, 2]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_per_row() {
        let a = t(&[0.0; 4], &[2, 2]);
        let bias = t(&[1.0, 2.0], &[2]);
        let r = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(r.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn sum_rows_collapses_first_axis() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum_rows().unwrap().data(), &[4.0, 6.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let g = t(&[2.0, 4.0], &[2]);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let x = t(&(0..12).map(|v| v as f32).collect::<Vec<_>>(), &[4, 3]); // k=4, m=3
        let y = t(&(0..8).map(|v| v as f32 * 0.5).collect::<Vec<_>>(), &[4, 2]); // k=4, n=2
        let fused = x.matmul_tn(&y).unwrap();
        let explicit = x.transpose().unwrap().matmul(&y).unwrap();
        assert_eq!(fused, explicit);

        let g = t(&(0..6).map(|v| v as f32 - 2.0).collect::<Vec<_>>(), &[3, 2]); // m=3, k=2
        let w = t(&(0..10).map(|v| v as f32 * 0.1).collect::<Vec<_>>(), &[5, 2]); // n=5, k=2
        let fused = g.matmul_nt(&w).unwrap();
        let explicit = g.matmul(&w.transpose().unwrap()).unwrap();
        assert_eq!(fused, explicit);

        // Inner-dimension mismatches surface as typed errors.
        assert!(x.matmul_tn(&g).is_err());
        assert!(g.matmul_nt(&x).is_err());
    }

    #[test]
    fn matmul_into_reuses_output_and_matches() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let mut ws = crate::Workspace::new();
        let mut out = Tensor::zeros(&[4]); // wrong shape, right element count
        a.matmul_into(&b, &mut out, &mut ws).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        // Second call reuses the same buffer.
        a.matmul_into(&b, &mut out, &mut ws).unwrap();
        assert_eq!(out.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn add_row_broadcast_inplace_matches_allocating_variant() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let bias = t(&[10.0, 20.0], &[2]);
        let mut inplace = a.clone();
        inplace.add_row_broadcast_inplace(&bias).unwrap();
        assert_eq!(inplace, a.add_row_broadcast(&bias).unwrap());
        let bad = t(&[1.0], &[1]);
        assert!(inplace.add_row_broadcast_inplace(&bad).is_err());
    }

    #[test]
    fn zip_with_rejects_shape_mismatch() {
        let a = t(&[1.0; 4], &[2, 2]);
        let b = t(&[1.0; 4], &[4]);
        assert!(a.add(&b).is_err());
    }
}
