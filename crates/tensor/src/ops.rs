//! Element-wise and linear-algebra operations on [`Tensor`].

use crate::{Tensor, TensorError};

impl Tensor {
    /// Element-wise sum of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        f: F,
    ) -> Result<Tensor, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: other.shape().dims().to_vec(),
            });
        }
        let data = self.data().iter().zip(other.data()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(data, self.shape().dims())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let data = self.data().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(data, self.shape().dims()).expect("same shape")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place AXPY update: `self += alpha * other`.
    ///
    /// This is the hot loop of SGD so it avoids allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                actual: other.shape().dims().to_vec(),
            });
        }
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Arithmetic mean of all elements.
    ///
    /// Returns `0.0` on an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Squared Euclidean norm of the flattened tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum()
    }

    /// Matrix product of two rank-2 tensors: `(m×k) · (k×n) = (m×n)`.
    ///
    /// Uses a cache-friendly i-k-j loop ordering.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when either operand is not rank 2
    /// and [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        if other.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: other.shape().rank() });
        }
        let (m, k) = (self.shape().dims()[0], self.shape().dims()[1]);
        let (k2, n) = (other.shape().dims()[0], other.shape().dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k, n],
                actual: vec![k2, n],
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aip * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for (j, &v) in self.data()[i * n..(i + 1) * n].iter().enumerate() {
                out[j * m + i] = v;
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Adds a length-`n` row vector to every row of an `m×n` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias` is not a rank-1
    /// tensor of length `n`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        if bias.shape().dims() != [n] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n],
                actual: bias.shape().dims().to_vec(),
            });
        }
        let mut out = self.data().to_vec();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] += bias.data()[j];
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Sums a rank-2 tensor over its rows, producing a length-`n` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn sum_rows(&self) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(&self.data()[i * n..(i + 1) * n]) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Index of the maximum element in each row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] on non-matrices and
    /// [`TensorError::Empty`] when a row has zero columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        if n == 0 {
            return Err(TensorError::Empty);
        }
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Numerically-stable row-wise softmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, n) = (self.shape().dims()[0], self.shape().dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for j in 0..n {
                let e = (row[j] - max).exp();
                out[i * n + j] = e;
                denom += e;
            }
            for j in 0..n {
                out[i * n + j] /= denom;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = t(&[1.0; 6], &[2, 3]);
        let b = t(&[1.0; 4], &[2, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let a = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 100.0], &[2, 3]);
        let s = a.softmax_rows().unwrap();
        for i in 0..2 {
            let row = &s.data()[i * 3..(i + 1) * 3];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!(s.argmax_rows().unwrap(), vec![2, 2]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_per_row() {
        let a = t(&[0.0; 4], &[2, 2]);
        let bias = t(&[1.0, 2.0], &[2]);
        let r = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(r.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn sum_rows_collapses_first_axis() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum_rows().unwrap().data(), &[4.0, 6.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let g = t(&[2.0, 4.0], &[2]);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn zip_with_rejects_shape_mismatch() {
        let a = t(&[1.0; 4], &[2, 2]);
        let b = t(&[1.0; 4], &[4]);
        assert!(a.add(&b).is_err());
    }
}
