//! im2col-based convolution: the standard GEMM lowering.
//!
//! The direct loops in [`crate::conv2d`] are simple and exact; for larger
//! batches the cache-friendly route is to unfold every receptive field into
//! a row of a matrix and run one matrix multiplication. Both paths are kept:
//! [`conv2d_gemm`] is bit-compatible with `conv2d` (same accumulation
//! order per output element up to float reassociation) and is what the
//! `Conv2d` layer uses for batches past a size threshold.

use crate::gemm::{gemm, transpose_into};
use crate::{workspace, Tensor, TensorError, Workspace};

/// Validates im2col operands and returns `(n, c, h, w)`.
fn im2col_dims(
    input: &Tensor,
    kh: usize,
    kw: usize,
) -> Result<(usize, usize, usize, usize), TensorError> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.shape().rank() });
    }
    let d = input.shape().dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    if kh == 0 || kw == 0 || kh > h || kw > w {
        return Err(TensorError::ShapeMismatch { expected: vec![h, w], actual: vec![kh, kw] });
    }
    Ok((n, c, h, w))
}

/// The unfold loop shared by [`im2col`] and [`conv2d_gemm_with`]: writes
/// every element of `out` (callers may pass recycled scratch).
#[allow(clippy::too_many_arguments)]
fn unfold_into(x: &[f32], n: usize, c: usize, h: usize, w: usize, kh: usize, kw: usize, out: &mut [f32]) {
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let cols = c * kh * kw;
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((b * oh + oy) * ow + ox) * cols;
                for ic in 0..c {
                    for ky in 0..kh {
                        let src = ((b * c + ic) * h + oy + ky) * w + ox;
                        let dst = row + (ic * kh + ky) * kw;
                        out[dst..dst + kw].copy_from_slice(&x[src..src + kw]);
                    }
                }
            }
        }
    }
}

/// Unfolds `[n, c, h, w]` into the im2col matrix
/// `[n·oh·ow, c·kh·kw]` for a valid stride-1 convolution with a `kh×kw`
/// kernel.
///
/// # Errors
///
/// Returns a rank/shape error when the input is not rank 4 or smaller than
/// the kernel.
pub fn im2col(input: &Tensor, kh: usize, kw: usize) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = im2col_dims(input, kh, kw)?;
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let cols = c * kh * kw;
    let mut out = vec![0.0f32; n * oh * ow * cols];
    unfold_into(input.data(), n, c, h, w, kh, kw, &mut out);
    Tensor::from_vec(out, &[n * oh * ow, cols])
}

/// [`im2col`] writing into a preallocated output tensor whose buffer is
/// grown (never shrunk) to fit. With a warmed buffer the call performs no
/// allocations; every element is overwritten.
///
/// # Errors
///
/// Same conditions as [`im2col`].
pub fn im2col_with(input: &Tensor, kh: usize, kw: usize, out: &mut Tensor) -> Result<(), TensorError> {
    let (n, c, h, w) = im2col_dims(input, kh, kw)?;
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let cols = c * kh * kw;
    out.reshape_in_place_for_kernel(&[n * oh * ow, cols]);
    unfold_into(input.data(), n, c, h, w, kh, kw, out.data_mut());
    Ok(())
}

/// Valid stride-1 convolution through the im2col + GEMM route. Produces the
/// same result as [`crate::conv2d`] up to floating-point reassociation,
/// drawing all scratch from this thread's shared [`Workspace`].
///
/// # Errors
///
/// Same conditions as [`crate::conv2d`].
pub fn conv2d_gemm(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Result<Tensor, TensorError> {
    workspace::with_thread_local(|ws| conv2d_gemm_with(input, weight, bias, ws))
}

/// [`conv2d_gemm`] drawing the im2col matrix, the packed kernel matrix and
/// the GEMM product from the caller's [`Workspace`]: in steady state the
/// only allocation is the returned output tensor.
///
/// # Errors
///
/// Same conditions as [`crate::conv2d`].
pub fn conv2d_gemm_with(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    ws: &mut Workspace,
) -> Result<Tensor, TensorError> {
    if weight.shape().rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: weight.shape().rank() });
    }
    let wd = weight.shape().dims();
    let (cout, cin, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let d = input.shape().dims();
    if input.shape().rank() != 4 || d[1] != cin {
        return Err(TensorError::ShapeMismatch {
            expected: vec![d[0], cin, d[2], d[3]],
            actual: d.to_vec(),
        });
    }
    if bias.shape().dims() != [cout] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![cout],
            actual: bias.shape().dims().to_vec(),
        });
    }
    let (n, h, w) = (d[0], d[2], d[3]);
    im2col_dims(input, kh, kw)?;
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let (rows, k) = (n * oh * ow, cin * kh * kw);

    // cols = im2col(input): [n·oh·ow, cin·kh·kw], recycled scratch.
    let mut cols = ws.take(rows * k);
    unfold_into(input.data(), n, cin, h, w, kh, kw, &mut cols);
    // wmat = weight.reshape([cout, k]).transpose(): [k, cout].
    let mut wmat = ws.take(k * cout);
    transpose_into(weight.data(), &mut wmat, cout, k);
    // prod = cols · wmat + bias: [n·oh·ow, cout].
    let mut prod = ws.take_zeroed(rows * cout);
    gemm(&cols, &wmat, &mut prod, rows, k, cout, ws);
    for row in prod.chunks_exact_mut(cout) {
        for (v, &bv) in row.iter_mut().zip(bias.data()) {
            *v += bv;
        }
    }
    // Rearrange [n·oh·ow, cout] → [n, cout, oh, ow].
    let mut out = vec![0.0f32; n * cout * oh * ow];
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let src = ((b * oh + oy) * ow + ox) * cout;
                for oc in 0..cout {
                    out[((b * cout + oc) * oh + oy) * ow + ox] = prod[src + oc];
                }
            }
        }
    }
    ws.give(cols);
    ws.give(wmat);
    ws.give(prod);
    Tensor::from_vec(out, &[n, cout, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn im2col_unfolds_known_windows() {
        // 1x1x3x3 input, 2x2 kernel → 4 windows of 4 values.
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let cols = im2col(&x, 2, 2).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 4]);
        assert_eq!(&cols.data()[..4], &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(&cols.data()[12..], &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn gemm_conv_matches_direct_conv() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[3, 2, 8, 8], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 2, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[4], 0.1, &mut rng);
        let direct = conv2d(&x, &w, &b).unwrap();
        let gemm = conv2d_gemm(&x, &w, &b).unwrap();
        assert_eq!(direct.shape(), gemm.shape());
        for (a, g) in direct.data().iter().zip(gemm.data()) {
            assert!((a - g).abs() < 1e-4, "{a} vs {g}");
        }
    }

    #[test]
    fn gemm_conv_validates_shapes_like_direct() {
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let w = Tensor::ones(&[3, 1, 2, 2]); // wrong in-channels
        let b = Tensor::zeros(&[3]);
        assert!(conv2d_gemm(&x, &w, &b).is_err());
        let w = Tensor::ones(&[3, 2, 2, 2]);
        let bad_bias = Tensor::zeros(&[2]);
        assert!(conv2d_gemm(&x, &w, &bad_bias).is_err());
        assert!(im2col(&x, 9, 9).is_err());
    }

    #[test]
    fn single_pixel_kernel_is_a_channel_mix() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[2, 3, 1, 1], 1.0, &mut rng);
        let b = Tensor::zeros(&[2]);
        let direct = conv2d(&x, &w, &b).unwrap();
        let gemm = conv2d_gemm(&x, &w, &b).unwrap();
        for (a, g) in direct.data().iter().zip(gemm.data()) {
            assert!((a - g).abs() < 1e-4);
        }
    }
}
