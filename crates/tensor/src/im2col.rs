//! im2col-based convolution: the standard GEMM lowering.
//!
//! The direct loops in [`crate::conv2d`] are simple and exact; for larger
//! batches the cache-friendly route is to unfold every receptive field into
//! a row of a matrix and run one matrix multiplication. Both paths are kept:
//! [`conv2d_gemm`] is bit-compatible with `conv2d` (same accumulation
//! order per output element up to float reassociation) and is what the
//! `Conv2d` layer uses for batches past a size threshold.

use crate::{Tensor, TensorError};

/// Unfolds `[n, c, h, w]` into the im2col matrix
/// `[n·oh·ow, c·kh·kw]` for a valid stride-1 convolution with a `kh×kw`
/// kernel.
///
/// # Errors
///
/// Returns a rank/shape error when the input is not rank 4 or smaller than
/// the kernel.
pub fn im2col(input: &Tensor, kh: usize, kw: usize) -> Result<Tensor, TensorError> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.shape().rank() });
    }
    let d = input.shape().dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    if kh == 0 || kw == 0 || kh > h || kw > w {
        return Err(TensorError::ShapeMismatch { expected: vec![h, w], actual: vec![kh, kw] });
    }
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let cols = c * kh * kw;
    let mut out = vec![0.0f32; n * oh * ow * cols];
    let x = input.data();
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((b * oh + oy) * ow + ox) * cols;
                for ic in 0..c {
                    for ky in 0..kh {
                        let src = ((b * c + ic) * h + oy + ky) * w + ox;
                        let dst = row + (ic * kh + ky) * kw;
                        out[dst..dst + kw].copy_from_slice(&x[src..src + kw]);
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n * oh * ow, cols])
}

/// Valid stride-1 convolution through the im2col + GEMM route. Produces the
/// same result as [`crate::conv2d`] up to floating-point reassociation.
///
/// # Errors
///
/// Same conditions as [`crate::conv2d`].
pub fn conv2d_gemm(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Result<Tensor, TensorError> {
    if weight.shape().rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: weight.shape().rank() });
    }
    let wd = weight.shape().dims();
    let (cout, cin, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let d = input.shape().dims();
    if input.shape().rank() != 4 || d[1] != cin {
        return Err(TensorError::ShapeMismatch {
            expected: vec![d[0], cin, d[2], d[3]],
            actual: d.to_vec(),
        });
    }
    if bias.shape().dims() != [cout] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![cout],
            actual: bias.shape().dims().to_vec(),
        });
    }
    let (n, h, w) = (d[0], d[2], d[3]);
    let cols = im2col(input, kh, kw)?; // [n·oh·ow, cin·kh·kw]
    let wmat = weight.reshape(&[cout, cin * kh * kw])?.transpose()?; // [cin·kh·kw, cout]
    let prod = cols.matmul(&wmat)?.add_row_broadcast(bias)?; // [n·oh·ow, cout]
    // Rearrange [n·oh·ow, cout] → [n, cout, oh, ow].
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let mut out = vec![0.0f32; n * cout * oh * ow];
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let src = ((b * oh + oy) * ow + ox) * cout;
                for oc in 0..cout {
                    out[((b * cout + oc) * oh + oy) * ow + ox] = prod.data()[src + oc];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, cout, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn im2col_unfolds_known_windows() {
        // 1x1x3x3 input, 2x2 kernel → 4 windows of 4 values.
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let cols = im2col(&x, 2, 2).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 4]);
        assert_eq!(&cols.data()[..4], &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(&cols.data()[12..], &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn gemm_conv_matches_direct_conv() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[3, 2, 8, 8], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 2, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[4], 0.1, &mut rng);
        let direct = conv2d(&x, &w, &b).unwrap();
        let gemm = conv2d_gemm(&x, &w, &b).unwrap();
        assert_eq!(direct.shape(), gemm.shape());
        for (a, g) in direct.data().iter().zip(gemm.data()) {
            assert!((a - g).abs() < 1e-4, "{a} vs {g}");
        }
    }

    #[test]
    fn gemm_conv_validates_shapes_like_direct() {
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let w = Tensor::ones(&[3, 1, 2, 2]); // wrong in-channels
        let b = Tensor::zeros(&[3]);
        assert!(conv2d_gemm(&x, &w, &b).is_err());
        let w = Tensor::ones(&[3, 2, 2, 2]);
        let bad_bias = Tensor::zeros(&[2]);
        assert!(conv2d_gemm(&x, &w, &bad_bias).is_err());
        assert!(im2col(&x, 9, 9).is_err());
    }

    #[test]
    fn single_pixel_kernel_is_a_channel_mix() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[2, 3, 1, 1], 1.0, &mut rng);
        let b = Tensor::zeros(&[2]);
        let direct = conv2d(&x, &w, &b).unwrap();
        let gemm = conv2d_gemm(&x, &w, &b).unwrap();
        for (a, g) in direct.data().iter().zip(gemm.data()) {
            assert!((a - g).abs() < 1e-4);
        }
    }
}
