use std::error::Error;
use std::fmt;

/// Error type returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that had to agree did not.
    ShapeMismatch {
        /// Shape expected by the operation.
        expected: Vec<usize>,
        /// Shape actually supplied.
        actual: Vec<usize>,
    },
    /// Requested element count does not match the supplied shape.
    SizeMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements supplied.
        actual: usize,
    },
    /// Operation required a tensor of a specific rank.
    RankMismatch {
        /// Rank expected by the operation.
        expected: usize,
        /// Rank actually supplied.
        actual: usize,
    },
    /// Index out of bounds for a given axis.
    IndexOutOfBounds {
        /// Axis on which the access happened.
        axis: usize,
        /// Offending index.
        index: usize,
        /// Length of that axis.
        len: usize,
    },
    /// The operation is not defined on an empty tensor.
    Empty,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            TensorError::SizeMismatch { expected, actual } => {
                write!(f, "size mismatch: shape implies {expected} elements, got {actual}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected rank {expected}, got rank {actual}")
            }
            TensorError::IndexOutOfBounds { axis, index, len } => {
                write!(f, "index {index} out of bounds on axis {axis} of length {len}")
            }
            TensorError::Empty => write!(f, "operation not defined on an empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::ShapeMismatch { expected: vec![2, 2], actual: vec![3] };
        let text = err.to_string();
        assert!(text.contains("shape mismatch"));
        assert!(text.contains("[2, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
