//! Dense `f32` tensor math substrate for the PipeTune reproduction.
//!
//! The paper trains its workloads on BigDL/TensorFlow; this crate provides the
//! minimal-but-real linear-algebra core the `pipetune-dnn` framework is built
//! on: shape-checked dense tensors, matrix multiplication, 2-D
//! convolution/pooling primitives and seeded random initialisation.
//!
//! Everything is deterministic: all random constructors take an explicit RNG
//! so experiments can be reproduced bit-for-bit.
//!
//! # Example
//!
//! ```
//! use pipetune_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), pipetune_tensor::TensorError>(())
//! ```

mod conv;
mod error;
mod gemm;
mod im2col;
mod ops;
mod shape;
mod tensor;
pub mod workspace;

pub use conv::{avg_pool2d, conv2d, conv2d_backward, max_pool2d, max_pool2d_backward, Conv2dGrads};
pub use error::TensorError;
pub use im2col::{conv2d_gemm, conv2d_gemm_with, im2col, im2col_with};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;
