//! IDX file parsing — the format real MNIST/Fashion-MNIST ship in.
//!
//! The synthetic generators stand in for the datasets in this offline
//! reproduction, but a downstream user with `train-images-idx3-ubyte` on
//! disk can load the real thing through [`dataset_from_idx`]. Format per
//! Yann LeCun's spec: a 4-byte magic `[0, 0, dtype, ndims]`, `ndims`
//! big-endian `u32` dimensions, then row-major payload.

use std::path::Path;

use pipetune_dnn::{Dataset, DnnError, Features};
use pipetune_tensor::Tensor;

/// A parsed IDX payload: dimensions plus flat `f32` data (u8 payloads are
/// scaled to `[0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct IdxArray {
    /// Dimension sizes, outermost first.
    pub dims: Vec<usize>,
    /// Flattened values (ubyte payloads are scaled to `[0, 1]`).
    pub data: Vec<f32>,
    /// IDX element-type byte (0x08 = ubyte, 0x0D = float, ...).
    pub dtype: u8,
}

fn corrupt(reason: impl Into<String>) -> DnnError {
    DnnError::InvalidDataset { reason: reason.into() }
}

/// Parses IDX bytes.
///
/// Supports the unsigned-byte (0x08), signed-byte (0x09), int (0x0C) and
/// float (0x0D) element types; ubyte values are scaled by 1/255.
///
/// # Errors
///
/// Returns [`DnnError::InvalidDataset`] on truncated input, bad magic,
/// unsupported element types or size mismatches.
pub fn parse_idx(bytes: &[u8]) -> Result<IdxArray, DnnError> {
    if bytes.len() < 4 {
        return Err(corrupt("idx file shorter than its magic"));
    }
    if bytes[0] != 0 || bytes[1] != 0 {
        return Err(corrupt("bad idx magic"));
    }
    let dtype = bytes[2];
    let ndims = bytes[3] as usize;
    let header_len = 4 + 4 * ndims;
    if bytes.len() < header_len {
        return Err(corrupt("idx header truncated"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for d in 0..ndims {
        let off = 4 + 4 * d;
        let dim = u32::from_be_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        dims.push(dim as usize);
    }
    let count: usize = dims.iter().product();
    let payload = &bytes[header_len..];
    let data = match dtype {
        0x08 => {
            if payload.len() != count {
                return Err(corrupt(format!(
                    "expected {count} ubyte elements, found {}",
                    payload.len()
                )));
            }
            payload.iter().map(|&b| f32::from(b) / 255.0).collect()
        }
        0x09 => {
            if payload.len() != count {
                return Err(corrupt("sbyte payload size mismatch"));
            }
            payload.iter().map(|&b| f32::from(b as i8)).collect()
        }
        0x0C => {
            if payload.len() != count * 4 {
                return Err(corrupt("int payload size mismatch"));
            }
            payload
                .chunks_exact(4)
                .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]) as f32)
                .collect()
        }
        0x0D => {
            if payload.len() != count * 4 {
                return Err(corrupt("float payload size mismatch"));
            }
            payload
                .chunks_exact(4)
                .map(|c| f32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        }
        other => return Err(corrupt(format!("unsupported idx element type 0x{other:02x}"))),
    };
    Ok(IdxArray { dims, data, dtype })
}

/// Loads and parses one IDX file.
///
/// # Errors
///
/// Returns [`DnnError::InvalidDataset`] on I/O failures or malformed
/// content.
pub fn load_idx(path: &Path) -> Result<IdxArray, DnnError> {
    let bytes = std::fs::read(path)
        .map_err(|e| corrupt(format!("cannot read {}: {e}", path.display())))?;
    parse_idx(&bytes)
}

/// Builds a [`Dataset`] from an IDX image file (`[n, h, w]` ubyte) and an
/// IDX label file (`[n]` ubyte) — the real MNIST layout.
///
/// # Errors
///
/// Returns [`DnnError::InvalidDataset`] when the files disagree on the
/// example count, the images are not rank 3, or labels exceed `classes`.
pub fn dataset_from_idx(
    images_path: &Path,
    labels_path: &Path,
    classes: usize,
) -> Result<Dataset, DnnError> {
    let images = load_idx(images_path)?;
    let labels = load_idx(labels_path)?;
    dataset_from_arrays(images, labels, classes)
}

/// In-memory variant of [`dataset_from_idx`] (used by tests and loaders
/// that fetch bytes elsewhere).
///
/// # Errors
///
/// Same conditions as [`dataset_from_idx`].
pub fn dataset_from_arrays(
    images: IdxArray,
    labels: IdxArray,
    classes: usize,
) -> Result<Dataset, DnnError> {
    if images.dims.len() != 3 {
        return Err(corrupt(format!("images must be rank 3, got {:?}", images.dims)));
    }
    if labels.dims.len() != 1 {
        return Err(corrupt(format!("labels must be rank 1, got {:?}", labels.dims)));
    }
    let (n, h, w) = (images.dims[0], images.dims[1], images.dims[2]);
    if labels.dims[0] != n {
        return Err(corrupt(format!("{n} images but {} labels", labels.dims[0])));
    }
    let tensor = Tensor::from_vec(images.data, &[n, 1, h, w])?;
    // Label files store class ids; undo the unit scaling ubyte images get.
    let scale = if labels.dtype == 0x08 { 255.0 } else { 1.0 };
    let labels: Vec<usize> =
        labels.data.iter().map(|&v| (v * scale).round() as usize).collect();
    Dataset::new(Features::Images(tensor), labels, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds IDX bytes for a ubyte array.
    fn idx_ubyte(dims: &[u32], payload: &[u8]) -> Vec<u8> {
        let mut out = vec![0, 0, 0x08, dims.len() as u8];
        for d in dims {
            out.extend_from_slice(&d.to_be_bytes());
        }
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn parses_ubyte_images_scaled_to_unit() {
        let bytes = idx_ubyte(&[2, 2, 2], &[0, 255, 128, 0, 1, 2, 3, 4]);
        let arr = parse_idx(&bytes).unwrap();
        assert_eq!(arr.dims, vec![2, 2, 2]);
        assert_eq!(arr.data[1], 1.0);
        assert!((arr.data[2] - 128.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn parses_float_and_int_payloads() {
        let mut bytes = vec![0, 0, 0x0D, 1, 0, 0, 0, 2];
        bytes.extend_from_slice(&1.5f32.to_be_bytes());
        bytes.extend_from_slice(&(-2.0f32).to_be_bytes());
        let arr = parse_idx(&bytes).unwrap();
        assert_eq!(arr.data, vec![1.5, -2.0]);

        let mut bytes = vec![0, 0, 0x0C, 1, 0, 0, 0, 1];
        bytes.extend_from_slice(&(-7i32).to_be_bytes());
        assert_eq!(parse_idx(&bytes).unwrap().data, vec![-7.0]);
    }

    #[test]
    fn rejects_malformed_headers_and_payloads() {
        assert!(parse_idx(&[]).is_err());
        assert!(parse_idx(&[1, 2, 3, 4]).is_err()); // bad magic
        assert!(parse_idx(&[0, 0, 0x08, 1, 0, 0]).is_err()); // truncated dims
        assert!(parse_idx(&idx_ubyte(&[4], &[1, 2, 3])).is_err()); // short payload
        assert!(parse_idx(&[0, 0, 0x42, 0]).is_err()); // unknown dtype
    }

    #[test]
    fn builds_a_trainable_dataset_from_idx_pairs() {
        let images = parse_idx(&idx_ubyte(&[3, 2, 2], &[10; 12])).unwrap();
        let labels = parse_idx(&idx_ubyte(&[3], &[0, 1, 0])).unwrap();
        let data = dataset_from_arrays(images, labels, 2).unwrap();
        assert_eq!(data.len(), 3);
        assert_eq!(data.num_classes(), 2);
        assert_eq!(data.labels(), &[0, 1, 0]);
    }

    #[test]
    fn count_mismatch_and_bad_labels_are_rejected() {
        let images = parse_idx(&idx_ubyte(&[2, 2, 2], &[0; 8])).unwrap();
        let labels = parse_idx(&idx_ubyte(&[3], &[0, 1, 0])).unwrap();
        assert!(dataset_from_arrays(images.clone(), labels, 2).is_err());
        let bad_labels = parse_idx(&idx_ubyte(&[2], &[0, 9])).unwrap();
        assert!(dataset_from_arrays(images, bad_labels, 2).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pipetune_idx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("images.idx");
        std::fs::write(&path, idx_ubyte(&[1, 2, 2], &[1, 2, 3, 4])).unwrap();
        let arr = load_idx(&path).unwrap();
        assert_eq!(arr.dims, vec![1, 2, 2]);
        std::fs::remove_file(&path).ok();
        assert!(load_idx(&dir.join("missing.idx")).is_err());
    }
}
