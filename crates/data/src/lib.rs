//! Seeded synthetic dataset generators standing in for the paper's datasets.
//!
//! The paper evaluates on MNIST, Fashion-MNIST and News20 (Table 3). Those
//! archives cannot be downloaded in this environment, so this crate generates
//! *structurally equivalent* synthetic datasets:
//!
//! * [`mnist_like`] — 10-class images built from smooth per-class prototypes
//!   plus pixel noise and random shifts (digit-like: low spatial frequency).
//! * [`fashion_like`] — same protocol with higher-frequency, texture-like
//!   prototypes and more intra-class variance (fashion is the harder task,
//!   exactly as in the real pair).
//! * [`news20_like`] — 20-class token sequences: a Zipfian background
//!   vocabulary shared by all classes plus a class-specific topic band,
//!   mirroring newsgroup text statistics.
//!
//! Class structure is sampled once from the seed and shared by the train and
//! test splits, so generalisation is real: a model must learn the prototypes
//! to score on the held-out split. Accuracy therefore responds genuinely to
//! batch size, learning rate, dropout, embedding size and epoch count — the
//! five hyperparameters PipeTune tunes.
//!
//! # Example
//!
//! ```
//! use pipetune_data::{mnist_like, ImageSpec};
//!
//! let spec = ImageSpec { train: 64, test: 16, ..ImageSpec::default() };
//! let (train, test) = mnist_like(&spec, 1)?;
//! assert_eq!(train.len(), 64);
//! assert_eq!(test.num_classes(), 10);
//! # Ok::<(), pipetune_dnn::DnnError>(())
//! ```

mod idx;

pub use idx::{dataset_from_arrays, dataset_from_idx, load_idx, parse_idx, IdxArray};

use pipetune_dnn::{Dataset, DnnError, Features};
use pipetune_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic image generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageSpec {
    /// Training examples to generate.
    pub train: usize,
    /// Test examples to generate.
    pub test: usize,
    /// Square image side length (must be LeNet-compatible, e.g. 16 or 28).
    pub size: usize,
    /// Number of classes.
    pub classes: usize,
    /// Standard deviation of additive pixel noise.
    pub noise: f32,
}

impl Default for ImageSpec {
    fn default() -> Self {
        // Scaled-down MNIST: full 60k@28x28 would make hundreds of tuning
        // trials take hours; 16x16 keeps LeNet real but fast. Recorded as a
        // substitution in DESIGN.md.
        ImageSpec { train: 512, test: 128, size: 16, classes: 10, noise: 0.55 }
    }
}

/// Configuration for the synthetic text generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextSpec {
    /// Training examples to generate.
    pub train: usize,
    /// Test examples to generate.
    pub test: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Fixed sequence length.
    pub seq_len: usize,
    /// Number of classes (News20 has 20).
    pub classes: usize,
    /// Probability that a token is drawn from the class topic band rather
    /// than the shared background.
    pub topicality: f32,
}

impl Default for TextSpec {
    fn default() -> Self {
        TextSpec { train: 400, test: 100, vocab: 400, seq_len: 24, classes: 20, topicality: 0.6 }
    }
}

/// Smooth per-class prototype: sum of a few random low-frequency cosine bumps.
fn smooth_prototype(size: usize, rng: &mut StdRng, max_freq: f32) -> Vec<f32> {
    let mut proto = vec![0.0f32; size * size];
    let waves = 4;
    for _ in 0..waves {
        let fx = rng.gen_range(0.5..max_freq);
        let fy = rng.gen_range(0.5..max_freq);
        let px = rng.gen_range(0.0..std::f32::consts::TAU);
        let py = rng.gen_range(0.0..std::f32::consts::TAU);
        let amp = rng.gen_range(0.4f32..1.0);
        for y in 0..size {
            for x in 0..size {
                let v = (fx * x as f32 / size as f32 * std::f32::consts::TAU + px).cos()
                    * (fy * y as f32 / size as f32 * std::f32::consts::TAU + py).cos();
                proto[y * size + x] += amp * v;
            }
        }
    }
    proto
}

fn render_images(
    spec: &ImageSpec,
    protos: &[Vec<f32>],
    n: usize,
    rng: &mut StdRng,
) -> Result<Dataset, DnnError> {
    let s = spec.size;
    let mut data = Vec::with_capacity(n * s * s);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % spec.classes;
        let proto = &protos[class];
        let (dx, dy) = (rng.gen_range(-1i32..=1), rng.gen_range(-1i32..=1));
        for y in 0..s as i32 {
            for x in 0..s as i32 {
                let sy = (y + dy).rem_euclid(s as i32) as usize;
                let sx = (x + dx).rem_euclid(s as i32) as usize;
                let noise: f32 = {
                    // Cheap Gaussian-ish noise: sum of 2 uniforms, centred.
                    (rng.gen::<f32>() + rng.gen::<f32>() - 1.0) * spec.noise * 1.7
                };
                data.push(proto[sy * s + sx] + noise);
            }
        }
        labels.push(class);
    }
    let t = Tensor::from_vec(data, &[n, 1, s, s])?;
    Dataset::new(Features::Images(t), labels, spec.classes)
}

fn image_pair(spec: &ImageSpec, seed: u64, max_freq: f32) -> Result<(Dataset, Dataset), DnnError> {
    if spec.classes == 0 || spec.train == 0 || spec.test == 0 {
        return Err(DnnError::InvalidDataset { reason: "spec requires nonzero sizes".into() });
    }
    let mut proto_rng = StdRng::seed_from_u64(seed);
    let protos: Vec<Vec<f32>> =
        (0..spec.classes).map(|_| smooth_prototype(spec.size, &mut proto_rng, max_freq)).collect();
    let mut train_rng = StdRng::seed_from_u64(seed ^ 0x7261_6e64);
    let mut test_rng = StdRng::seed_from_u64(seed ^ 0x7465_7374);
    let train = render_images(spec, &protos, spec.train, &mut train_rng)?;
    let test = render_images(spec, &protos, spec.test, &mut test_rng)?;
    Ok((train, test))
}

/// Generates an MNIST-like train/test pair: smooth, low-frequency class
/// prototypes (digits are blobs).
///
/// # Errors
///
/// Returns [`DnnError::InvalidDataset`] for zero-sized specs.
pub fn mnist_like(spec: &ImageSpec, seed: u64) -> Result<(Dataset, Dataset), DnnError> {
    image_pair(spec, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1), 3.5)
}

/// Generates a Fashion-MNIST-like train/test pair: higher-frequency,
/// texture-like prototypes, making it the harder task of the pair (as in the
/// real datasets).
///
/// # Errors
///
/// Returns [`DnnError::InvalidDataset`] for zero-sized specs.
pub fn fashion_like(spec: &ImageSpec, seed: u64) -> Result<(Dataset, Dataset), DnnError> {
    let mut spec = *spec;
    // Fashion-MNIST is the harder sibling: texture-like prototypes *and*
    // stronger intra-class variation.
    spec.noise *= 1.6;
    image_pair(&spec, seed.wrapping_mul(0x517C_C1B7).wrapping_add(2), 6.0)
}

/// Generates a News20-like train/test token pair.
///
/// Tokens are drawn from a shared Zipfian background or (with probability
/// `topicality`) from a class-specific topic band of the vocabulary.
///
/// # Errors
///
/// Returns [`DnnError::InvalidDataset`] when the vocabulary is smaller than
/// the class count or sizes are zero.
pub fn news20_like(spec: &TextSpec, seed: u64) -> Result<(Dataset, Dataset), DnnError> {
    if spec.vocab < spec.classes * 2 {
        return Err(DnnError::InvalidDataset {
            reason: format!("vocab {} too small for {} classes", spec.vocab, spec.classes),
        });
    }
    if spec.classes == 0 || spec.train == 0 || spec.test == 0 || spec.seq_len == 0 {
        return Err(DnnError::InvalidDataset { reason: "spec requires nonzero sizes".into() });
    }
    let band = spec.vocab / (2 * spec.classes); // topic bands fill half the vocab
    let background_start = spec.classes * band;
    let gen_split = |n: usize, rng: &mut StdRng| -> Result<Dataset, DnnError> {
        let mut seqs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.classes;
            let seq: Vec<u32> = (0..spec.seq_len)
                .map(|_| {
                    if rng.gen::<f32>() < spec.topicality {
                        (class * band + rng.gen_range(0..band)) as u32
                    } else {
                        // Zipf-ish background: quadratic skew toward low ids.
                        let u: f32 = rng.gen();
                        let r = (u * u * (spec.vocab - background_start) as f32) as usize;
                        (background_start + r.min(spec.vocab - background_start - 1)) as u32
                    }
                })
                .collect();
            seqs.push(seq);
            labels.push(class);
        }
        Dataset::new(Features::Tokens(seqs), labels, spec.classes)
    };
    let mut train_rng = StdRng::seed_from_u64(seed ^ 0x6e65_7773);
    let mut test_rng = StdRng::seed_from_u64(seed ^ 0x3230_3230);
    Ok((gen_split(spec.train, &mut train_rng)?, gen_split(spec.test, &mut test_rng)?))
}

/// Paper metadata for a workload's dataset (Table 3), reported verbatim in
/// experiment output next to our scaled sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetMeta {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Size in MB reported by the paper.
    pub datasize_mb: u32,
    /// Training files reported by the paper.
    pub train_files: u32,
    /// Test files reported by the paper.
    pub test_files: u32,
}

/// Table 3 rows for the datasets this crate synthesises.
pub const DATASET_META: &[DatasetMeta] = &[
    DatasetMeta { name: "MNIST", datasize_mb: 12, train_files: 60_000, test_files: 10_000 },
    DatasetMeta { name: "Fashion-MNIST", datasize_mb: 31, train_files: 60_000, test_files: 10_000 },
    DatasetMeta { name: "News20", datasize_mb: 15, train_files: 11_307, test_files: 7_538 },
    DatasetMeta { name: "Rodinia", datasize_mb: 26, train_files: 1_650, test_files: 7_538 },
];

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune_dnn::{LeNet5, Model, TextCnn, TrainConfig};

    #[test]
    fn mnist_like_is_deterministic_per_seed() {
        let spec = ImageSpec { train: 8, test: 4, ..ImageSpec::default() };
        let (a, _) = mnist_like(&spec, 5).unwrap();
        let (b, _) = mnist_like(&spec, 5).unwrap();
        let (c, _) = mnist_like(&spec, 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn splits_have_requested_sizes_and_classes() {
        let spec = ImageSpec { train: 20, test: 10, classes: 10, ..ImageSpec::default() };
        let (train, test) = fashion_like(&spec, 1).unwrap();
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(train.num_classes(), 10);
        // All 10 classes appear (round-robin labelling).
        let mut seen = [false; 10];
        for &l in train.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn news20_like_respects_vocab_bounds() {
        let spec = TextSpec { train: 40, test: 10, ..TextSpec::default() };
        let (train, _) = news20_like(&spec, 3).unwrap();
        if let Features::Tokens(seqs) = train.features() {
            assert!(seqs.iter().flatten().all(|&t| (t as usize) < spec.vocab));
        } else {
            panic!("expected token features");
        }
    }

    #[test]
    fn news20_rejects_tiny_vocab() {
        let spec = TextSpec { vocab: 10, classes: 20, ..TextSpec::default() };
        assert!(news20_like(&spec, 0).is_err());
    }

    #[test]
    fn lenet_generalizes_on_mnist_like() {
        let spec = ImageSpec { train: 200, test: 80, ..ImageSpec::default() };
        let (train, test) = mnist_like(&spec, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = LeNet5::with_input_size(16, 10, 0.0, &mut rng).unwrap();
        let cfg = TrainConfig { batch_size: 32, learning_rate: 0.02, ..TrainConfig::default() };
        for _ in 0..8 {
            model.train_epoch(&train, &cfg, &mut rng).unwrap();
        }
        let acc = model.evaluate(&test).unwrap();
        assert!(acc > 0.5, "held-out accuracy {acc} should beat 0.1 chance comfortably");
    }

    #[test]
    fn textcnn_generalizes_on_news20_like() {
        let spec = TextSpec { train: 200, test: 80, ..TextSpec::default() };
        let (train, test) = news20_like(&spec, 12).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut model = TextCnn::new(spec.vocab, spec.seq_len, 32, 16, 20, 0.0, &mut rng).unwrap();
        let cfg = TrainConfig { batch_size: 32, learning_rate: 0.15, ..TrainConfig::default() };
        for _ in 0..10 {
            model.train_epoch(&train, &cfg, &mut rng).unwrap();
        }
        let acc = model.evaluate(&test).unwrap();
        assert!(acc > 0.4, "held-out accuracy {acc} should beat 0.05 chance comfortably");
    }

    #[test]
    fn fashion_is_harder_than_mnist() {
        // Same budget, same model: fashion-like accuracy should not exceed
        // mnist-like by a large margin (typically it is lower).
        let spec = ImageSpec { train: 200, test: 80, ..ImageSpec::default() };
        let (mtrain, mtest) = mnist_like(&spec, 21).unwrap();
        let (ftrain, ftest) = fashion_like(&spec, 21).unwrap();
        let cfg = TrainConfig { batch_size: 32, learning_rate: 0.02, ..TrainConfig::default() };
        let mut rng = StdRng::seed_from_u64(21);
        let mut m1 = LeNet5::with_input_size(16, 10, 0.0, &mut rng).unwrap();
        let mut m2 = m1.clone();
        for _ in 0..6 {
            m1.train_epoch(&mtrain, &cfg, &mut rng).unwrap();
            m2.train_epoch(&ftrain, &cfg, &mut rng).unwrap();
        }
        let acc_m = m1.evaluate(&mtest).unwrap();
        let acc_f = m2.evaluate(&ftest).unwrap();
        assert!(acc_m + 0.15 >= acc_f, "mnist {acc_m} vs fashion {acc_f}");
    }

    #[test]
    fn table3_meta_is_complete() {
        assert_eq!(DATASET_META.len(), 4);
        assert_eq!(DATASET_META[0].train_files, 60_000);
    }
}
