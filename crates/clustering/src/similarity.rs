//! Pluggable similarity functions (the ground-truth decision of §5.6).

use serde::{Deserialize, Serialize};

use crate::{DbscanLabel, DbscanModel, KMeansModel};

/// Outcome of a similarity check for a new job profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityVerdict {
    /// Cluster the profile is nearest to.
    pub cluster: usize,
    /// Squared distance to that cluster's centroid.
    pub distance_sq: f64,
    /// Normalised score: `distance² / (threshold × mean-inertia)`; below 1.0
    /// means confident.
    pub score: f64,
    /// Whether the known configuration for `cluster` may be reused (the
    /// paper's "score within confidence level", Algorithm 1 line 9).
    pub confident: bool,
}

/// A similarity function over profile feature vectors.
///
/// The paper makes this component pluggable ("our design allows the
/// similarity function to be pluggable", §5.4); PipeTune's middleware only
/// depends on this trait.
pub trait Similarity {
    /// Judges how similar `features` is to the historical profile clusters.
    fn judge(&self, features: &[f64]) -> SimilarityVerdict;

    /// Number of historical clusters.
    fn num_clusters(&self) -> usize;
}

/// The default similarity function: k-means distance vs. model inertia.
///
/// A new profile is *confident* when its squared distance to the nearest
/// centroid is at most `threshold_factor ×` the model's mean per-point
/// inertia — i.e. the new point looks like a typical member of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansSimilarity {
    model: KMeansModel,
    threshold_factor: f64,
}

impl KMeansSimilarity {
    /// Wraps a fitted model with the confidence threshold.
    ///
    /// The paper does not publish its factor; 2.0 accepts points up to twice
    /// the average member distance and is swept in the threshold-sensitivity
    /// ablation.
    pub fn new(model: KMeansModel, threshold_factor: f64) -> Self {
        KMeansSimilarity { model, threshold_factor: threshold_factor.max(0.0) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &KMeansModel {
        &self.model
    }

    /// The configured threshold factor.
    pub fn threshold_factor(&self) -> f64 {
        self.threshold_factor
    }
}

impl Similarity for KMeansSimilarity {
    fn judge(&self, features: &[f64]) -> SimilarityVerdict {
        let (cluster, distance_sq) = self.model.predict(features);
        let yardstick = self.threshold_factor * self.model.variance_estimate();
        let score = if yardstick > 0.0 { distance_sq / yardstick } else { f64::INFINITY };
        SimilarityVerdict { cluster, distance_sq, score, confident: score <= 1.0 }
    }

    fn num_clusters(&self) -> usize {
        self.model.centroids().len()
    }
}

/// Alternative similarity function: nearest historical *point* within an
/// absolute radius. Used by the pluggable-similarity ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NearestNeighborSimilarity {
    points: Vec<Vec<f64>>,
    labels: Vec<usize>,
    radius_sq: f64,
}

impl NearestNeighborSimilarity {
    /// Builds from labelled historical feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if `points` and `labels` lengths differ.
    pub fn new(points: Vec<Vec<f64>>, labels: Vec<usize>, radius: f64) -> Self {
        assert_eq!(points.len(), labels.len(), "one label per point");
        NearestNeighborSimilarity { points, labels, radius_sq: radius * radius }
    }
}

impl Similarity for NearestNeighborSimilarity {
    fn judge(&self, features: &[f64]) -> SimilarityVerdict {
        let mut best = (0usize, f64::INFINITY);
        for (p, &l) in self.points.iter().zip(&self.labels) {
            let d: f64 = p.iter().zip(features).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best.1 {
                best = (l, d);
            }
        }
        let score = if self.radius_sq > 0.0 { best.1 / self.radius_sq } else { f64::INFINITY };
        SimilarityVerdict {
            cluster: best.0,
            distance_sq: best.1,
            score,
            confident: score <= 1.0,
        }
    }

    fn num_clusters(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// Density-based alternative: a fitted [`DbscanModel`] gates confidence.
///
/// A new profile is confident exactly when DBSCAN would classify it into a
/// cluster (it lies within `eps` of a core point); density noise is a miss.
/// One of the scikit-learn alternatives §5.4 says can replace k-means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbscanSimilarity {
    model: DbscanModel,
}

impl DbscanSimilarity {
    /// Wraps a fitted DBSCAN model.
    pub fn new(model: DbscanModel) -> Self {
        DbscanSimilarity { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &DbscanModel {
        &self.model
    }
}

impl Similarity for DbscanSimilarity {
    fn judge(&self, features: &[f64]) -> SimilarityVerdict {
        let (label, distance_sq) = self.model.predict(features);
        match label {
            DbscanLabel::Cluster(cluster) => SimilarityVerdict {
                cluster,
                distance_sq,
                score: 0.0,
                confident: true,
            },
            DbscanLabel::Noise => SimilarityVerdict {
                cluster: 0,
                distance_sq,
                score: f64::INFINITY,
                confident: false,
            },
        }
    }

    fn num_clusters(&self) -> usize {
        self.model.num_clusters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dbscan, KMeans};

    fn fitted() -> KMeansSimilarity {
        let mut data = Vec::new();
        for i in 0..10 {
            let j = f64::from(i) * 0.05;
            data.push(vec![0.0 + j, 0.0]);
            data.push(vec![10.0 + j, 10.0]);
        }
        let model = KMeans::new(2).fit(&data, 1).unwrap();
        KMeansSimilarity::new(model, 2.0)
    }

    #[test]
    fn member_like_points_are_confident() {
        let sim = fitted();
        let v = sim.judge(&[0.1, 0.05]);
        assert!(v.confident, "score {}", v.score);
    }

    #[test]
    fn outliers_are_rejected() {
        let sim = fitted();
        let v = sim.judge(&[5.0, 5.0]);
        assert!(!v.confident, "score {}", v.score);
        assert!(v.score > 1.0);
    }

    #[test]
    fn clusters_are_distinguished() {
        let sim = fitted();
        let a = sim.judge(&[0.0, 0.0]).cluster;
        let b = sim.judge(&[10.0, 10.0]).cluster;
        assert_ne!(a, b);
        assert_eq!(sim.num_clusters(), 2);
    }

    #[test]
    fn zero_threshold_never_confident() {
        let sim = KMeansSimilarity::new(fitted().model().clone(), 0.0);
        assert!(!sim.judge(&[0.0, 0.0]).confident);
    }

    #[test]
    fn dbscan_similarity_gates_on_density() {
        let mut data = Vec::new();
        for i in 0..8 {
            let j = f64::from(i) * 0.05;
            data.push(vec![0.0 + j, 0.0]);
            data.push(vec![10.0 + j, 10.0]);
        }
        let model = Dbscan::new(0.5, 3).fit(&data).unwrap();
        let sim = DbscanSimilarity::new(model);
        assert_eq!(sim.num_clusters(), 2);
        let near = sim.judge(&[0.1, 0.05]);
        assert!(near.confident);
        let far = sim.judge(&[5.0, 5.0]);
        assert!(!far.confident);
        assert_ne!(sim.judge(&[0.0, 0.0]).cluster, sim.judge(&[10.0, 10.0]).cluster);
    }

    #[test]
    fn nearest_neighbor_alternative_behaves() {
        let sim = NearestNeighborSimilarity::new(
            vec![vec![0.0, 0.0], vec![10.0, 10.0]],
            vec![0, 1],
            1.0,
        );
        assert!(sim.judge(&[0.1, 0.1]).confident);
        assert!(!sim.judge(&[5.0, 5.0]).confident);
        assert_eq!(sim.judge(&[9.5, 9.9]).cluster, 1);
        assert_eq!(sim.num_clusters(), 2);
    }
}
