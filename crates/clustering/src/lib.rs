//! Clustering and similarity functions for PipeTune's ground-truth phase.
//!
//! The paper's ground truth (§5.4) clusters per-epoch hardware profiles with
//! k-means (k = 2, one cluster per workload family) via scikit-learn, and
//! decides whether a new job is "similar enough" by comparing its distance to
//! the nearest centroid against the model's inertia (§5.6). This crate
//! implements both from scratch:
//!
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding;
//! * [`KMeansModel`] — fitted centroids, inertia, assignment;
//! * [`Similarity`] — the pluggable interface the paper calls the
//!   "similarity function", with [`KMeansSimilarity`] as the default
//!   implementation and [`NearestNeighborSimilarity`] as an alternative for
//!   ablations.
//!
//! # Example
//!
//! ```
//! use pipetune_clustering::KMeans;
//!
//! let data = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
//!     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
//! ];
//! let model = KMeans::new(2).fit(&data, 42)?;
//! let (c0, _) = model.predict(&data[0]);
//! let (c1, _) = model.predict(&data[3]);
//! assert_ne!(c0, c1);
//! # Ok::<(), pipetune_clustering::ClusteringError>(())
//! ```

mod dbscan;
mod kmeans;
mod silhouette;
mod similarity;

pub use dbscan::{Dbscan, DbscanLabel, DbscanModel};
pub use kmeans::{ClusteringError, KMeans, KMeansModel};
pub use silhouette::{select_k, silhouette_score};
pub use similarity::{
    DbscanSimilarity, KMeansSimilarity, NearestNeighborSimilarity, Similarity, SimilarityVerdict,
};
