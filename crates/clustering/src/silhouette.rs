//! Silhouette analysis for choosing `k`.
//!
//! The paper fixes `k = 2` and leaves "extensions to other values of k …
//! for future work" (§5.4). The silhouette coefficient is the standard tool
//! for that choice: for each point, `(b − a) / max(a, b)` where `a` is the
//! mean distance to its own cluster and `b` the mean distance to the nearest
//! other cluster.

use crate::ClusteringError;

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Mean silhouette coefficient of a labelled dataset, in `[-1, 1]`
/// (higher = better-separated clustering).
///
/// Singleton clusters contribute 0 for their point (scikit-learn's
/// convention).
///
/// # Errors
///
/// Returns [`ClusteringError`] when inputs are empty/ragged, label counts
/// disagree, or fewer than two clusters are present.
pub fn silhouette_score(data: &[Vec<f64>], labels: &[usize]) -> Result<f64, ClusteringError> {
    if data.is_empty() {
        return Err(ClusteringError::TooFewPoints { k: 2, points: 0 });
    }
    if data.len() != labels.len() {
        return Err(ClusteringError::BadDimensions);
    }
    let dim = data[0].len();
    if dim == 0 || data.iter().any(|p| p.len() != dim) {
        return Err(ClusteringError::BadDimensions);
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return Err(ClusteringError::ZeroK);
    }
    let mut total = 0.0f64;
    for (i, p) in data.iter().enumerate() {
        let own = labels[i];
        if sizes[own] <= 1 {
            continue; // contributes 0
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; k];
        for (j, q) in data.iter().enumerate() {
            if i != j {
                sums[labels[j]] += dist(p, q);
            }
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Ok(total / data.len() as f64)
}

/// Fits k-means for every `k` in `candidates` and returns
/// `(k, silhouette)` pairs plus the best `k` — the future-work k-selection
/// loop, ready made.
///
/// # Errors
///
/// Propagates fitting and scoring errors; `candidates` must be non-empty.
pub fn select_k(
    data: &[Vec<f64>],
    candidates: &[usize],
    seed: u64,
) -> Result<(usize, Vec<(usize, f64)>), ClusteringError> {
    if candidates.is_empty() {
        return Err(ClusteringError::ZeroK);
    }
    let mut scores = Vec::with_capacity(candidates.len());
    for &k in candidates {
        let model = crate::KMeans::new(k).fit(data, seed)?;
        let score = silhouette_score(data, model.labels())?;
        scores.push((k, score));
    }
    let best = scores
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|&(k, _)| k)
        .expect("non-empty candidates");
    Ok((best, scores))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(k: usize, per: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..k {
            for i in 0..per {
                data.push(vec![c as f64 * 20.0 + i as f64 * 0.1, 0.0]);
                labels.push(c);
            }
        }
        (data, labels)
    }

    #[test]
    fn well_separated_blobs_score_near_one() {
        let (data, labels) = blobs(2, 8);
        let s = silhouette_score(&data, &labels).unwrap();
        assert!(s > 0.95, "score {s}");
    }

    #[test]
    fn shuffled_labels_score_poorly() {
        let (data, mut labels) = blobs(2, 8);
        let quarter = labels.len() / 4;
        labels.rotate_right(quarter); // wrong assignments
        let s = silhouette_score(&data, &labels).unwrap();
        assert!(s < 0.5, "score {s}");
    }

    #[test]
    fn select_k_recovers_the_true_cluster_count() {
        let (data, _) = blobs(3, 8);
        let (best, scores) = select_k(&data, &[2, 3, 4, 5], 7).unwrap();
        assert_eq!(best, 3, "scores {scores:?}");
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(silhouette_score(&[], &[]).is_err());
        let (data, _) = blobs(1, 4);
        assert!(silhouette_score(&data, &[0, 0, 0, 0]).is_err()); // one cluster
        assert!(silhouette_score(&data, &[0, 1]).is_err()); // length mismatch
        assert!(select_k(&data, &[], 1).is_err());
    }

    #[test]
    fn singleton_clusters_do_not_poison_the_score() {
        let (mut data, mut labels) = blobs(2, 6);
        data.push(vec![1000.0, 1000.0]);
        labels.push(2); // a singleton third cluster
        let s = silhouette_score(&data, &labels).unwrap();
        assert!(s.is_finite() && s > 0.5);
    }
}
