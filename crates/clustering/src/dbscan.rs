//! DBSCAN density-based clustering.
//!
//! The paper's ground-truth module sits on scikit-learn and "the exhaustive
//! list of supported models are then inherited by PipeTune and could be
//! easily used as alternative similarity functions", naming DBSCAN among
//! them (§5.4). This is that alternative, from scratch.

use serde::{Deserialize, Serialize};

use crate::ClusteringError;

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Point classification produced by [`Dbscan::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbscanLabel {
    /// Member of the given cluster (0-based).
    Cluster(usize),
    /// Density noise: fewer than `min_points` neighbours and not reachable
    /// from any core point.
    Noise,
}

impl DbscanLabel {
    /// The cluster id, if any.
    pub fn cluster(&self) -> Option<usize> {
        match self {
            DbscanLabel::Cluster(c) => Some(*c),
            DbscanLabel::Noise => None,
        }
    }
}

/// DBSCAN configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dbscan {
    /// Neighbourhood radius (Euclidean).
    pub eps: f64,
    /// Minimum neighbours (including self) for a core point.
    pub min_points: usize,
}

impl Dbscan {
    /// Creates a configuration.
    pub fn new(eps: f64, min_points: usize) -> Self {
        Dbscan { eps, min_points: min_points.max(1) }
    }

    /// Runs DBSCAN over `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusteringError::BadDimensions`] on inconsistent or
    /// zero-dimensional points and [`ClusteringError::TooFewPoints`] on an
    /// empty dataset.
    pub fn fit(&self, data: &[Vec<f64>]) -> Result<DbscanModel, ClusteringError> {
        if data.is_empty() {
            return Err(ClusteringError::TooFewPoints { k: 1, points: 0 });
        }
        let dim = data[0].len();
        if dim == 0 || data.iter().any(|p| p.len() != dim) {
            return Err(ClusteringError::BadDimensions);
        }
        let eps_sq = self.eps * self.eps;
        let n = data.len();
        // Neighbour lists (O(n²); profile datasets are hundreds of points).
        let neighbours: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                (0..n).filter(|&j| sq_dist(&data[i], &data[j]) <= eps_sq).collect()
            })
            .collect();
        let core: Vec<bool> = neighbours.iter().map(|nb| nb.len() >= self.min_points).collect();

        let mut labels = vec![None::<DbscanLabel>; n];
        let mut next_cluster = 0usize;
        for i in 0..n {
            if labels[i].is_some() || !core[i] {
                continue;
            }
            // Grow a new cluster from this unvisited core point.
            let cluster = next_cluster;
            next_cluster += 1;
            let mut stack = vec![i];
            labels[i] = Some(DbscanLabel::Cluster(cluster));
            while let Some(p) = stack.pop() {
                if !core[p] {
                    continue;
                }
                for &q in &neighbours[p] {
                    match labels[q] {
                        None | Some(DbscanLabel::Noise) => {
                            let was_noise = labels[q] == Some(DbscanLabel::Noise);
                            labels[q] = Some(DbscanLabel::Cluster(cluster));
                            if !was_noise {
                                stack.push(q);
                            }
                        }
                        Some(DbscanLabel::Cluster(_)) => {}
                    }
                }
            }
        }
        let labels: Vec<DbscanLabel> =
            labels.into_iter().map(|l| l.unwrap_or(DbscanLabel::Noise)).collect();
        Ok(DbscanModel {
            points: data.to_vec(),
            labels,
            core,
            eps: self.eps,
            num_clusters: next_cluster,
        })
    }
}

/// A fitted DBSCAN model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbscanModel {
    points: Vec<Vec<f64>>,
    labels: Vec<DbscanLabel>,
    core: Vec<bool>,
    eps: f64,
    num_clusters: usize,
}

impl DbscanModel {
    /// Per-point labels, in input order.
    pub fn labels(&self) -> &[DbscanLabel] {
        &self.labels
    }

    /// Number of clusters discovered.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| **l == DbscanLabel::Noise).count()
    }

    /// Classifies a new point: the cluster of the nearest *core* point if it
    /// lies within `eps`, otherwise noise. Returns the squared distance to
    /// that nearest core point alongside.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with the training data.
    pub fn predict(&self, point: &[f64]) -> (DbscanLabel, f64) {
        assert_eq!(point.len(), self.points[0].len(), "dimension mismatch");
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.points.iter().enumerate() {
            if !self.core[i] {
                continue;
            }
            let d = sq_dist(p, point);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, d)) if d <= self.eps * self.eps => (self.labels[i], d),
            Some((_, d)) => (DbscanLabel::Noise, d),
            None => (DbscanLabel::Noise, f64::INFINITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for i in 0..10 {
            let j = f64::from(i) * 0.05;
            data.push(vec![0.0 + j, 0.0]);
            data.push(vec![10.0 + j, 10.0]);
        }
        data.push(vec![100.0, -50.0]); // an outlier
        data
    }

    #[test]
    fn finds_two_clusters_and_flags_noise() {
        let model = Dbscan::new(1.0, 3).fit(&blobs()).unwrap();
        assert_eq!(model.num_clusters(), 2);
        assert_eq!(model.noise_count(), 1);
        assert_eq!(model.labels().last().unwrap().cluster(), None);
    }

    #[test]
    fn members_of_one_blob_share_a_label() {
        let model = Dbscan::new(1.0, 3).fit(&blobs()).unwrap();
        let first = model.labels()[0];
        assert!(model.labels().iter().step_by(2).take(10).all(|l| *l == first));
    }

    #[test]
    fn predict_assigns_nearby_points_and_rejects_far_ones() {
        let model = Dbscan::new(1.0, 3).fit(&blobs()).unwrap();
        let (l, d) = model.predict(&[0.2, 0.1]);
        assert!(l.cluster().is_some());
        assert!(d < 1.0);
        let (l, _) = model.predict(&[50.0, 50.0]);
        assert_eq!(l, DbscanLabel::Noise);
    }

    #[test]
    fn tiny_eps_makes_everything_noise() {
        let model = Dbscan::new(1e-6, 3).fit(&blobs()).unwrap();
        assert_eq!(model.num_clusters(), 0);
        assert_eq!(model.noise_count(), blobs().len());
    }

    #[test]
    fn huge_eps_makes_one_cluster() {
        let model = Dbscan::new(1e6, 2).fit(&blobs()).unwrap();
        assert_eq!(model.num_clusters(), 1);
        assert_eq!(model.noise_count(), 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(Dbscan::new(1.0, 2).fit(&[]), Err(ClusteringError::TooFewPoints { .. })));
        assert!(matches!(
            Dbscan::new(1.0, 2).fit(&[vec![1.0], vec![1.0, 2.0]]),
            Err(ClusteringError::BadDimensions)
        ));
    }

    #[test]
    fn border_points_join_a_cluster_not_noise() {
        // A chain: core points in the middle, a border point at the end.
        let data = vec![
            vec![0.0],
            vec![0.5],
            vec![1.0],
            vec![1.5],
            vec![2.4], // border: within eps of 1.5 but only 2 neighbours
        ];
        let model = Dbscan::new(0.9, 3).fit(&data).unwrap();
        assert_eq!(model.num_clusters(), 1);
        assert!(model.labels()[4].cluster().is_some(), "border point should join");
    }
}
