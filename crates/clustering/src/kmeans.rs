//! Lloyd's k-means with k-means++ seeding.

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Error type for clustering operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusteringError {
    /// Not enough data points for the requested `k`.
    TooFewPoints {
        /// Requested cluster count.
        k: usize,
        /// Points available.
        points: usize,
    },
    /// Points have inconsistent dimensionality (or zero dimensions).
    BadDimensions,
    /// `k` must be at least 1.
    ZeroK,
}

impl fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusteringError::TooFewPoints { k, points } => {
                write!(f, "cannot fit {k} clusters to {points} points")
            }
            ClusteringError::BadDimensions => write!(f, "points have inconsistent dimensions"),
            ClusteringError::ZeroK => write!(f, "k must be at least 1"),
        }
    }
}

impl Error for ClusteringError {}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means fitting configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Number of clusters (the paper uses k = 2: one per workload family).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on centroid movement (squared distance).
    pub tol: f64,
    /// Independent k-means++ restarts; the lowest-inertia fit wins
    /// (scikit-learn's `n_init`, which the paper's prototype relies on).
    pub n_init: usize,
}

impl KMeans {
    /// Creates a configuration with standard iteration/tolerance defaults.
    pub fn new(k: usize) -> Self {
        KMeans { k, max_iters: 100, tol: 1e-9, n_init: 10 }
    }

    /// Fits the model: `n_init` k-means++ restarts derived from `seed`, best
    /// inertia wins.
    ///
    /// # Errors
    ///
    /// Returns [`ClusteringError`] when `k` is zero, data is smaller than
    /// `k`, or dimensions are inconsistent.
    pub fn fit(&self, data: &[Vec<f64>], seed: u64) -> Result<KMeansModel, ClusteringError> {
        let mut best: Option<KMeansModel> = None;
        for restart in 0..self.n_init.max(1) as u64 {
            let model = self.fit_once(data, seed.wrapping_add(restart.wrapping_mul(0x9E37)))?;
            if best.as_ref().is_none_or(|b| model.inertia() < b.inertia()) {
                best = Some(model);
            }
        }
        Ok(best.expect("at least one restart"))
    }

    /// One k-means++ + Lloyd run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KMeans::fit`].
    fn fit_once(&self, data: &[Vec<f64>], seed: u64) -> Result<KMeansModel, ClusteringError> {
        if self.k == 0 {
            return Err(ClusteringError::ZeroK);
        }
        if data.len() < self.k {
            return Err(ClusteringError::TooFewPoints { k: self.k, points: data.len() });
        }
        let dim = data[0].len();
        if dim == 0 || data.iter().any(|p| p.len() != dim) {
            return Err(ClusteringError::BadDimensions);
        }
        let mut rng = StdRng::seed_from_u64(seed);

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(self.k);
        centroids.push(data[rng.gen_range(0..data.len())].clone());
        while centroids.len() < self.k {
            let d2: Vec<f64> = data
                .iter()
                .map(|p| {
                    centroids.iter().map(|c| sq_dist(p, c)).fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                // All mass on existing centroids (duplicate points): pick any.
                rng.gen_range(0..data.len())
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut idx = 0;
                for (i, &w) in d2.iter().enumerate() {
                    target -= w;
                    if target <= 0.0 {
                        idx = i;
                        break;
                    }
                }
                idx
            };
            centroids.push(data[next].clone());
        }

        // Lloyd iterations.
        let mut labels = vec![0usize; data.len()];
        for _ in 0..self.max_iters {
            // Assignment.
            for (i, p) in data.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, cen) in centroids.iter().enumerate() {
                    let d = sq_dist(p, cen);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                labels[i] = best;
            }
            // Update.
            let mut sums = vec![vec![0.0f64; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            for (p, &l) in data.iter().zip(&labels) {
                counts[l] += 1;
                for (s, &v) in sums[l].iter_mut().zip(p) {
                    *s += v;
                }
            }
            let mut movement = 0.0f64;
            for c in 0..self.k {
                if counts[c] == 0 {
                    // Empty cluster: re-seed on the farthest point.
                    let far = data
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            sq_dist(a, &centroids[c])
                                .partial_cmp(&sq_dist(b, &centroids[c]))
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    movement += sq_dist(&centroids[c], &data[far]);
                    centroids[c] = data[far].clone();
                    continue;
                }
                let new: Vec<f64> =
                    sums[c].iter().map(|&s| s / counts[c] as f64).collect();
                movement += sq_dist(&centroids[c], &new);
                centroids[c] = new;
            }
            if movement < self.tol {
                break;
            }
        }

        let inertia: f64 =
            data.iter().zip(&labels).map(|(p, &l)| sq_dist(p, &centroids[l])).sum();
        Ok(KMeansModel { centroids, labels, inertia, n_points: data.len() })
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansModel {
    centroids: Vec<Vec<f64>>,
    labels: Vec<usize>,
    inertia: f64,
    n_points: usize,
}

impl KMeansModel {
    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Training-point assignments, in input order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sum of squared distances of training points to their centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Mean squared distance per training point — the reliability yardstick
    /// the paper compares new-point distances against (§5.6).
    pub fn mean_inertia(&self) -> f64 {
        if self.n_points == 0 {
            0.0
        } else {
            self.inertia / self.n_points as f64
        }
    }

    /// Unbiased within-cluster variance estimate, `inertia / (n − k)`.
    ///
    /// With few points per cluster the raw mean inertia badly underestimates
    /// the spread a *new* member will show (a 2-point cluster's members sit
    /// at half their separation from the centroid), so similarity thresholds
    /// should be anchored on this estimate instead.
    pub fn variance_estimate(&self) -> f64 {
        let dof = self.n_points.saturating_sub(self.centroids.len());
        if dof == 0 {
            self.mean_inertia()
        } else {
            self.inertia / dof as f64
        }
    }

    /// Nearest centroid and *squared* distance for a new point.
    ///
    /// # Panics
    ///
    /// Panics if `point` has a different dimensionality than the training
    /// data.
    pub fn predict(&self, point: &[f64]) -> (usize, f64) {
        assert_eq!(
            point.len(),
            self.centroids[0].len(),
            "query dimensionality must match training data"
        );
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, cen) in self.centroids.iter().enumerate() {
            let d = sq_dist(point, cen);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        (best, best_d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_data() -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.01;
            data.push(vec![0.0 + j, 0.0 - j]);
            data.push(vec![10.0 + j, 10.0 - j]);
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blob_data();
        let model = KMeans::new(2).fit(&data, 1).unwrap();
        // Even indices (blob A) share a label; odd indices share the other.
        let a = model.labels()[0];
        let b = model.labels()[1];
        assert_ne!(a, b);
        assert!(model.labels().iter().step_by(2).all(|&l| l == a));
        assert!(model.labels().iter().skip(1).step_by(2).all(|&l| l == b));
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = two_blob_data();
        let i1 = KMeans::new(1).fit(&data, 1).unwrap().inertia();
        let i2 = KMeans::new(2).fit(&data, 1).unwrap().inertia();
        let i4 = KMeans::new(4).fit(&data, 1).unwrap().inertia();
        assert!(i1 > i2, "{i1} !> {i2}");
        assert!(i2 >= i4, "{i2} !>= {i4}");
    }

    #[test]
    fn every_point_is_nearest_to_its_centroid() {
        // Core k-means invariant after convergence.
        let data = two_blob_data();
        let model = KMeans::new(2).fit(&data, 3).unwrap();
        for (p, &l) in data.iter().zip(model.labels()) {
            let (nearest, _) = model.predict(p);
            assert_eq!(nearest, l);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = two_blob_data();
        let a = KMeans::new(2).fit(&data, 9).unwrap();
        let b = KMeans::new(2).fit(&data, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(matches!(KMeans::new(0).fit(&[vec![1.0]], 0), Err(ClusteringError::ZeroK)));
        assert!(matches!(
            KMeans::new(3).fit(&[vec![1.0]], 0),
            Err(ClusteringError::TooFewPoints { .. })
        ));
        assert!(matches!(
            KMeans::new(1).fit(&[vec![1.0], vec![1.0, 2.0]], 0),
            Err(ClusteringError::BadDimensions)
        ));
    }

    #[test]
    fn survives_duplicate_points() {
        let data = vec![vec![1.0, 1.0]; 10];
        let model = KMeans::new(2).fit(&data, 5).unwrap();
        assert!(model.inertia() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let data = two_blob_data();
        let model = KMeans::new(2).fit(&data, 1).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: KMeansModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model);
    }
}
