//! Simulated time and a deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A point in simulated time, stored as integer microseconds so it is `Ord`
/// and hashable (no float-comparison pitfalls in the event queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from (non-negative, finite) seconds.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime(0);
        }
        SimTime((secs * 1e6).round() as u64)
    }

    /// Microseconds since time zero.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds since time zero.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of a duration expressed as another `SimTime`.
    pub fn plus(&self, d: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Saturating difference `self − earlier`.
    pub fn minus(&self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

/// A deterministic discrete-event queue.
///
/// Events fire in time order; ties break by insertion order (FIFO), which
/// keeps multi-job simulations reproducible.
///
/// # Example
///
/// ```
/// use pipetune_cluster::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(20), "late");
/// q.push(SimTime::from_micros(10), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<T>)>>,
    seq: u64,
}

/// Wrapper that gives the payload a total order without requiring `T: Ord`
/// (the sequence number always breaks ties before the payload is compared).
#[derive(Debug, Clone)]
struct EventSlot<T>(T);

impl<T> PartialEq for EventSlot<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for EventSlot<T> {}
impl<T> PartialOrd for EventSlot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for EventSlot<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        self.heap.push(Reverse((time, self.seq, EventSlot(payload))));
        self.seq += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse((t, _, EventSlot(p)))| (t, p))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_round_trips_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn simtime_clamps_bad_inputs() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        q.push(t, "a");
        q.push(t, "b");
        q.push(t, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(30);
        assert_eq!(a.minus(b), SimTime::ZERO);
        assert_eq!(a.plus(b).as_micros(), 40);
    }
}
