//! Deterministic fault injection for the simulated cluster.
//!
//! Shared DL clusters lose nodes, host stragglers and preempt low-priority
//! work; a tuning middleware that assumes every epoch completes would abort
//! on the first hiccup. This module provides the *schedule* side of the
//! fault-tolerance story: a seeded [`FaultPlan`] that decides — as a pure
//! function of `(plan seed, trial id, epoch, attempt)` — whether a fault
//! strikes a given epoch execution, which kind, and how severe it is.
//!
//! Determinism is load-bearing: the executor runs trials on an arbitrary
//! number of OS threads, and the replay contract (`DESIGN.md` §6.1) demands
//! byte-identical results for every worker count. Fault decisions therefore
//! never consult a stateful RNG; they hash their coordinates with a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) finaliser, so any
//! thread asking about the same `(trial, epoch, attempt)` gets the same
//! answer, in any order, any number of times.
//!
//! The recovery side (checkpoints, retries, re-probing) lives in the
//! middleware crate; [`RetryPolicy`] and [`FaultReport`] are defined here so
//! the simulator, the runner and the benchmark harness agree on the
//! vocabulary.

use serde::{Deserialize, Serialize};

/// One injected fault, with its deterministically drawn severity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node executing the trial dies mid-epoch: the epoch's work is
    /// lost (`wasted_fraction` of it had already run) and the trial must
    /// restore its last checkpoint and retry.
    NodeCrash {
        /// Fraction of the epoch that had completed when the node died.
        wasted_fraction: f64,
    },
    /// The node is slow this epoch (co-located noisy neighbour, thermal
    /// throttling): the epoch completes but takes `slowdown` times longer.
    Straggler {
        /// Duration multiplier, `> 1`.
        slowdown: f64,
    },
    /// The PMU counter read fails transiently: training is unaffected but
    /// the epoch's profile/probe measurement is lost.
    CounterRead,
    /// The trial is preempted by higher-priority work and resumes after
    /// `suspend_secs` of simulated time; no work is lost.
    Preemption {
        /// Simulated seconds the trial sits suspended.
        suspend_secs: f64,
    },
}

/// A seeded, deterministic schedule of faults at epoch granularity.
///
/// All probabilities are per epoch *attempt*; severities are drawn from the
/// configured ranges. The empty plan ([`FaultPlan::none`]) injects nothing
/// and is the default everywhere, so fault-free runs are bit-identical to
/// builds that predate fault injection.
///
/// ```
/// use pipetune_cluster::FaultPlan;
///
/// let plan = FaultPlan::mixed(7);
/// assert!(!plan.is_empty());
/// // Fault decisions are pure functions of (trial, epoch, attempt) — the
/// // same query always returns the same answer, on any thread, in any
/// // order, which is what keeps faulty runs replayable.
/// assert_eq!(plan.at_epoch(3, 1, 0), plan.at_epoch(3, 1, 0));
/// // The empty plan never injects anything.
/// assert_eq!(FaultPlan::none().at_epoch(3, 1, 0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed decorrelating this plan from every other stochastic component.
    pub seed: u64,
    /// Per-attempt probability of a [`FaultKind::NodeCrash`].
    pub crash_prob: f64,
    /// Per-attempt probability of a [`FaultKind::Straggler`].
    pub straggler_prob: f64,
    /// Straggler slowdown range (min, max), factors `>= 1`.
    pub straggler_slowdown: (f64, f64),
    /// Per-attempt probability of a [`FaultKind::CounterRead`].
    pub counter_read_prob: f64,
    /// Per-attempt probability of a [`FaultKind::Preemption`].
    pub preempt_prob: f64,
    /// Preemption suspension range (min, max), simulated seconds.
    pub preempt_secs: (f64, f64),
    /// Per-round probability that a simulated executor slot is a straggler
    /// for that scheduler round (drives slot re-assignment).
    pub slot_straggler_prob: f64,
    /// Speed of a straggling slot relative to a healthy one, in `(0, 1]`.
    pub slot_speed_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, ever. Runs under it are bit-identical to
    /// runs without fault injection at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crash_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: (1.5, 4.0),
            counter_read_prob: 0.0,
            preempt_prob: 0.0,
            preempt_secs: (20.0, 120.0),
            slot_straggler_prob: 0.0,
            slot_speed_factor: 0.5,
        }
    }

    /// A mixed plan with every fault class enabled at moderate rates —
    /// the default schedule for fault-tolerance experiments.
    pub fn mixed(seed: u64) -> Self {
        FaultPlan {
            seed,
            crash_prob: 0.08,
            straggler_prob: 0.10,
            counter_read_prob: 0.10,
            preempt_prob: 0.05,
            slot_straggler_prob: 0.15,
            ..Self::none()
        }
    }

    /// Node crashes only.
    pub fn crashes(seed: u64, prob: f64) -> Self {
        FaultPlan { seed, crash_prob: prob.clamp(0.0, 1.0), ..Self::none() }
    }

    /// Stragglers only (epoch-level slowdowns plus slot-level slow
    /// executors); never loses work, so accuracies are untouched.
    pub fn stragglers(seed: u64, prob: f64) -> Self {
        FaultPlan {
            seed,
            straggler_prob: prob.clamp(0.0, 1.0),
            slot_straggler_prob: (prob * 0.5).clamp(0.0, 1.0),
            ..Self::none()
        }
    }

    /// `true` when the plan can never inject anything (the guard the hot
    /// path uses to keep fault-free runs byte-identical to pre-fault
    /// builds).
    pub fn is_empty(&self) -> bool {
        self.crash_prob <= 0.0
            && self.straggler_prob <= 0.0
            && self.counter_read_prob <= 0.0
            && self.preempt_prob <= 0.0
            && self.slot_straggler_prob <= 0.0
    }

    /// The fault (if any) striking attempt `attempt` of epoch `epoch` of
    /// trial `trial`. Pure function of `(self, trial, epoch, attempt)`;
    /// classes are checked in severity order (crash ≻ preemption ≻ counter
    /// read ≻ straggler) with decorrelated draws, so at most one fault
    /// strikes per attempt.
    pub fn at_epoch(&self, trial: u64, epoch: u32, attempt: u32) -> Option<FaultKind> {
        if self.is_empty() {
            return None;
        }
        let key = |tag: u64| self.unit(tag, trial, u64::from(epoch), u64::from(attempt));
        if key(0xC8A5) < self.crash_prob {
            return Some(FaultKind::NodeCrash {
                wasted_fraction: lerp(0.1, 0.9, key(0xC8A6)),
            });
        }
        if key(0x9EE1) < self.preempt_prob {
            let (lo, hi) = self.preempt_secs;
            return Some(FaultKind::Preemption { suspend_secs: lerp(lo.max(0.0), hi.max(0.0), key(0x9EE2)) });
        }
        if key(0xC047) < self.counter_read_prob {
            return Some(FaultKind::CounterRead);
        }
        if key(0x57A6) < self.straggler_prob {
            let (lo, hi) = self.straggler_slowdown;
            return Some(FaultKind::Straggler { slowdown: lerp(lo.max(1.0), hi.max(1.0), key(0x57A7)) });
        }
        None
    }

    /// Relative speed of simulated slot `slot` during scheduler round
    /// `round`: `1.0` for a healthy slot, [`FaultPlan::slot_speed_factor`]
    /// for a straggling one. Pure function of `(self, round, slot)`.
    pub fn slot_speed(&self, round: u64, slot: usize) -> f64 {
        if self.slot_straggler_prob <= 0.0 {
            return 1.0;
        }
        if self.unit(0x5107, round, slot as u64, 0) < self.slot_straggler_prob {
            self.slot_speed_factor.clamp(1e-3, 1.0)
        } else {
            1.0
        }
    }

    /// Uniform draw in `[0, 1)` from hashed coordinates (no RNG state).
    fn unit(&self, tag: u64, a: u64, b: u64, c: u64) -> f64 {
        hash_unit(self.seed, tag, a, b, c)
    }
}

/// Uniform draw in `[0, 1)` from hashed coordinates (no RNG state) —
/// the shared primitive behind [`FaultPlan`] and [`ServiceFaultPlan`]
/// draws.
fn hash_unit(seed: u64, tag: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut x = seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = splitmix64(x.wrapping_add(a));
    x = splitmix64(x.wrapping_add(b));
    x = splitmix64(x.wrapping_add(c));
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64 finaliser: a high-quality 64-bit mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Linear interpolation of `u ∈ [0, 1)` into `[lo, hi]`.
fn lerp(lo: f64, hi: f64, u: f64) -> f64 {
    if hi <= lo {
        lo
    } else {
        lo + (hi - lo) * u
    }
}

/// Bounded retry with exponential backoff in *simulated* time.
///
/// A crashed epoch attempt is retried after
/// `base_backoff_secs × factor^attempt` simulated seconds, up to
/// `max_attempts` attempts total; exhaustion abandons the trial
/// (`PipeTuneError::RetriesExhausted` upstream).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts allowed per epoch (first try included). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, simulated seconds.
    pub base_backoff_secs: f64,
    /// Multiplier applied per further retry.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_backoff_secs: 5.0, backoff_factor: 2.0 }
    }
}

impl RetryPolicy {
    /// Simulated seconds to wait after failed attempt number `attempt`
    /// (0-based).
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        self.base_backoff_secs.max(0.0) * self.backoff_factor.max(1.0).powi(attempt as i32)
    }
}

/// Node churn decided at one churn tick of a [`ServiceFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// A node leaves the shared pool, taking its slots with it.
    Leave,
    /// A previously departed node rejoins the pool.
    Join,
}

impl ChurnKind {
    /// Stable lower-snake name used in telemetry attributes.
    pub fn name(self) -> &'static str {
        match self {
            ChurnKind::Leave => "leave",
            ChurnKind::Join => "join",
        }
    }
}

/// A seeded, deterministic schedule of *service-level* faults: node churn
/// against the shared slot pool and whole-job crashes with checkpointed
/// resubmission. The trial-level sibling is [`FaultPlan`]; this plan is
/// consumed by the multi-job tuning service (`pipetune-service`), which
/// also enforces deadlines — the third leg of the service fault story —
/// from its own configuration.
///
/// Determinism mirrors [`FaultPlan`]: every decision is a pure function
/// of hashed coordinates `(seed, event kind, job, epoch)` — churn draws
/// key on the tick index, crash draws on `(job, attempt)` — so schedules
/// replay identically for any worker count and any scheduling policy.
///
/// ```
/// use pipetune_cluster::ServiceFaultPlan;
///
/// let plan = ServiceFaultPlan::mixed(7);
/// assert!(!plan.is_empty());
/// // Pure functions of their coordinates: same query, same answer.
/// assert_eq!(plan.churn_at(3), plan.churn_at(3));
/// assert_eq!(plan.crash_at(1, 0), plan.crash_at(1, 0));
/// // The empty plan never injects anything.
/// assert_eq!(ServiceFaultPlan::none().churn_at(3), None);
/// assert_eq!(ServiceFaultPlan::none().crash_at(1, 0), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceFaultPlan {
    /// Seed decorrelating this plan from every other stochastic component.
    pub seed: u64,
    /// Spacing of churn *ticks* on the service clock, simulated seconds:
    /// tick `k` happens at `k × churn_interval_secs` (`k ≥ 1`) and draws
    /// at most one churn event.
    pub churn_interval_secs: f64,
    /// Per-tick probability that a node leaves the pool.
    pub node_leave_prob: f64,
    /// Per-tick probability that a departed node rejoins (checked only
    /// when no leave fired at the same tick).
    pub node_join_prob: f64,
    /// Parallel trial slots one churned node carries.
    pub node_slots: usize,
    /// Pool floor: leaves never shrink capacity below this many slots.
    pub min_slots: usize,
    /// Per-attempt probability that an admitted job's run crashes
    /// mid-service and must be resubmitted.
    pub crash_prob: f64,
    /// Where within an attempt's remaining service the crash strikes,
    /// as a fraction range `(min, max) ⊂ [0, 1]`.
    pub crash_fraction: (f64, f64),
    /// Resubmission budget and backoff (simulated time) for crashed jobs.
    pub resubmit: RetryPolicy,
}

impl Default for ServiceFaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl ServiceFaultPlan {
    /// The empty plan: no churn, no job crashes, ever. Service runs under
    /// it are bit-identical to runs without service-level fault injection
    /// at all.
    pub fn none() -> Self {
        ServiceFaultPlan {
            seed: 0,
            churn_interval_secs: 4000.0,
            node_leave_prob: 0.0,
            node_join_prob: 0.0,
            node_slots: 1,
            min_slots: 1,
            crash_prob: 0.0,
            crash_fraction: (0.15, 0.85),
            resubmit: RetryPolicy { max_attempts: 3, base_backoff_secs: 600.0, backoff_factor: 2.0 },
        }
    }

    /// A mixed plan with churn and job crashes at moderate rates — the
    /// default schedule for service-level chaos experiments. Timescales
    /// suit tuning-job service times in the thousands of simulated
    /// seconds.
    pub fn mixed(seed: u64) -> Self {
        ServiceFaultPlan {
            seed,
            node_leave_prob: 0.30,
            node_join_prob: 0.45,
            crash_prob: 0.20,
            ..Self::none()
        }
    }

    /// Node churn only: jobs never crash, but the pool breathes.
    pub fn churn(seed: u64, leave_prob: f64) -> Self {
        ServiceFaultPlan {
            seed,
            node_leave_prob: leave_prob.clamp(0.0, 1.0),
            node_join_prob: (leave_prob * 1.5).clamp(0.0, 1.0),
            ..Self::none()
        }
    }

    /// Job crashes only: the pool stays static.
    pub fn job_crashes(seed: u64, prob: f64) -> Self {
        ServiceFaultPlan { seed, crash_prob: prob.clamp(0.0, 1.0), ..Self::none() }
    }

    /// `true` when the plan can never inject anything (the guard the
    /// service driver uses to keep fault-free runs byte-identical to
    /// pre-fault builds).
    pub fn is_empty(&self) -> bool {
        !self.has_churn() && self.crash_prob <= 0.0
    }

    /// `true` when churn ticks can ever fire.
    pub fn has_churn(&self) -> bool {
        self.node_leave_prob > 0.0 || self.node_join_prob > 0.0
    }

    /// The churn event (if any) drawn at tick `tick`. Pure function of
    /// `(self, tick)`; leave is checked before join, so at most one node
    /// moves per tick. The caller applies state constraints (a leave
    /// that would breach [`ServiceFaultPlan::min_slots`], or a join with
    /// no node away, is simply skipped).
    pub fn churn_at(&self, tick: u64) -> Option<ChurnKind> {
        if hash_unit(self.seed, 0x1EA7, 0, tick, 0) < self.node_leave_prob {
            return Some(ChurnKind::Leave);
        }
        if hash_unit(self.seed, 0x901A, 0, tick, 0) < self.node_join_prob {
            return Some(ChurnKind::Join);
        }
        None
    }

    /// Whether service attempt `attempt` (0-based) of job `job` crashes,
    /// and if so at which fraction of the attempt's remaining service.
    /// Pure function of `(self, job, attempt)` — notably *not* of the
    /// scheduling policy or of time — so a job's crash/resume chain is
    /// policy-invariant.
    pub fn crash_at(&self, job: u64, attempt: u32) -> Option<f64> {
        if self.crash_prob <= 0.0 {
            return None;
        }
        if hash_unit(self.seed, 0x5C8A, job, u64::from(attempt), 0) < self.crash_prob {
            let (lo, hi) = self.crash_fraction;
            let u = hash_unit(self.seed, 0x5C8B, job, u64::from(attempt), 0);
            Some(lerp(lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0), u))
        } else {
            None
        }
    }
}

/// Service-level fault accounting: what a [`ServiceFaultPlan`] (plus
/// deadline enforcement) actually did to one service run.
///
/// Kept separate from the per-trial [`FaultReport`] so the invariant
/// "the service's trial-level report is exactly the merge of its jobs'
/// reports" survives service-level injection.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceFaultReport {
    /// Nodes that left the pool.
    pub node_leaves: u64,
    /// Nodes that rejoined the pool.
    pub node_joins: u64,
    /// Churn events that actually changed the lease layout (elastic
    /// repartitions).
    pub repartitions: u64,
    /// Job-level crashes injected.
    pub job_crashes: u64,
    /// Crashed jobs resubmitted from their last checkpoint.
    pub resubmissions: u64,
    /// Jobs shed for exceeding their deadline.
    pub jobs_shed: u64,
    /// Jobs abandoned after exhausting the resubmission budget.
    pub jobs_abandoned: u64,
    /// Simulated service-seconds destroyed by crashes (work past the
    /// last checkpoint, redone on resubmission).
    pub lost_service_secs: f64,
    /// Simulated seconds crashed jobs sat in resubmission backoff.
    pub backoff_secs: f64,
}

impl ServiceFaultReport {
    /// `true` when nothing was injected, shed or lost.
    pub fn is_clean(&self) -> bool {
        *self == ServiceFaultReport::default()
    }

    /// Adds `other`'s counters into `self` (callers merge in a
    /// deterministic order, as with [`FaultReport::merge`]).
    pub fn merge(&mut self, other: &ServiceFaultReport) {
        self.node_leaves += other.node_leaves;
        self.node_joins += other.node_joins;
        self.repartitions += other.repartitions;
        self.job_crashes += other.job_crashes;
        self.resubmissions += other.resubmissions;
        self.jobs_shed += other.jobs_shed;
        self.jobs_abandoned += other.jobs_abandoned;
        self.lost_service_secs += other.lost_service_secs;
        self.backoff_secs += other.backoff_secs;
    }
}

/// Fault-tolerance accounting for one trial, job or experiment.
///
/// Counters add across trials (see [`FaultReport::merge`]); the runner
/// aggregates per-trial deltas in scheduler-request order so the merged
/// report is byte-identical for every worker count.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Faults injected, all classes.
    pub injected: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Epoch- and slot-level stragglers injected.
    pub stragglers: u64,
    /// Transient counter-read failures injected.
    pub counter_faults: u64,
    /// Preemptions injected.
    pub preemptions: u64,
    /// Retry attempts performed (crash retries and lost-measurement
    /// re-probes/re-profiles).
    pub retried: u64,
    /// Faults the trial fully recovered from.
    pub recovered: u64,
    /// Trials abandoned after exhausting the retry budget.
    pub abandoned: u64,
    /// Simulated epoch-seconds destroyed by faults (lost partial epochs,
    /// straggler inflation, slot-straggler makespan inflation).
    pub wasted_epoch_secs: f64,
    /// Simulated seconds spent on recovery mechanics (backoff waits,
    /// preemption suspensions).
    pub recovery_overhead_secs: f64,
}

impl FaultReport {
    /// `true` when nothing was injected or lost.
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Adds `other`'s counters into `self` (order-sensitive only through
    /// float addition, which callers keep deterministic by merging in
    /// request order).
    pub fn merge(&mut self, other: &FaultReport) {
        self.injected += other.injected;
        self.crashes += other.crashes;
        self.stragglers += other.stragglers;
        self.counter_faults += other.counter_faults;
        self.preemptions += other.preemptions;
        self.retried += other.retried;
        self.recovered += other.recovered;
        self.abandoned += other.abandoned;
        self.wasted_epoch_secs += other.wasted_epoch_secs;
        self.recovery_overhead_secs += other.recovery_overhead_secs;
    }

    /// The counters accumulated since `earlier` was snapshotted from the
    /// same report (used to attribute per-rung deltas to one trial).
    pub fn delta_since(&self, earlier: &FaultReport) -> FaultReport {
        FaultReport {
            injected: self.injected - earlier.injected,
            crashes: self.crashes - earlier.crashes,
            stragglers: self.stragglers - earlier.stragglers,
            counter_faults: self.counter_faults - earlier.counter_faults,
            preemptions: self.preemptions - earlier.preemptions,
            retried: self.retried - earlier.retried,
            recovered: self.recovered - earlier.recovered,
            abandoned: self.abandoned - earlier.abandoned,
            wasted_epoch_secs: self.wasted_epoch_secs - earlier.wasted_epoch_secs,
            recovery_overhead_secs: self.recovery_overhead_secs
                - earlier.recovery_overhead_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        for trial in 0..50 {
            for epoch in 1..20 {
                assert_eq!(p.at_epoch(trial, epoch, 0), None);
            }
        }
        assert_eq!(p.slot_speed(3, 1), 1.0);
    }

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let p = FaultPlan::mixed(42);
        for trial in 0..20 {
            for epoch in 1..10 {
                for attempt in 0..3 {
                    let a = p.at_epoch(trial, epoch, attempt);
                    let b = p.at_epoch(trial, epoch, attempt);
                    assert_eq!(a, b, "same coordinates, same answer");
                }
            }
        }
        assert_eq!(p.slot_speed(7, 2), p.slot_speed(7, 2));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::mixed(1);
        let b = FaultPlan::mixed(2);
        let schedule = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..40).map(|t| p.at_epoch(t, 1, 0)).collect()
        };
        assert_ne!(schedule(&a), schedule(&b));
    }

    #[test]
    fn certain_crash_probability_always_crashes() {
        let p = FaultPlan::crashes(9, 1.0);
        for attempt in 0..10 {
            match p.at_epoch(3, 1, attempt) {
                Some(FaultKind::NodeCrash { wasted_fraction }) => {
                    assert!((0.1..0.9).contains(&wasted_fraction) || wasted_fraction == 0.9);
                }
                other => panic!("expected crash, got {other:?}"),
            }
        }
    }

    #[test]
    fn injection_rate_tracks_probability() {
        let p = FaultPlan::crashes(1234, 0.25);
        let n = 4000;
        let hits = (0..n).filter(|&t| p.at_epoch(t, 1, 0).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn straggler_plan_only_produces_stragglers() {
        let p = FaultPlan::stragglers(5, 0.5);
        for trial in 0..200 {
            match p.at_epoch(trial, 2, 0) {
                None => {}
                Some(FaultKind::Straggler { slowdown }) => assert!(slowdown >= 1.0),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn slot_speeds_mark_some_slots_slow() {
        let p = FaultPlan { slot_straggler_prob: 0.5, ..FaultPlan::none() };
        let speeds: Vec<f64> = (0..100).map(|r| p.slot_speed(r, 0)).collect();
        assert!(speeds.iter().any(|&s| s < 1.0));
        assert!(speeds.contains(&1.0));
    }

    #[test]
    fn backoff_grows_exponentially_and_clamps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_secs(0), 5.0);
        assert_eq!(r.backoff_secs(1), 10.0);
        assert_eq!(r.backoff_secs(2), 20.0);
        let degenerate = RetryPolicy { max_attempts: 0, base_backoff_secs: -1.0, backoff_factor: 0.5 };
        assert_eq!(degenerate.backoff_secs(3), 0.0);
    }

    #[test]
    fn service_plan_empty_never_injects() {
        let p = ServiceFaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.has_churn());
        for tick in 0..100 {
            assert_eq!(p.churn_at(tick), None);
        }
        for job in 0..20 {
            for attempt in 0..5 {
                assert_eq!(p.crash_at(job, attempt), None);
            }
        }
    }

    #[test]
    fn service_plan_draws_are_pure_functions_of_coordinates() {
        let p = ServiceFaultPlan::mixed(42);
        for tick in 0..50 {
            assert_eq!(p.churn_at(tick), p.churn_at(tick));
        }
        for job in 0..10 {
            for attempt in 0..4 {
                assert_eq!(p.crash_at(job, attempt), p.crash_at(job, attempt));
            }
        }
        // Different seeds give different schedules.
        let other = ServiceFaultPlan::mixed(43);
        let schedule = |p: &ServiceFaultPlan| -> Vec<Option<ChurnKind>> {
            (0..64).map(|t| p.churn_at(t)).collect()
        };
        assert_ne!(schedule(&p), schedule(&other));
    }

    #[test]
    fn service_plan_rates_track_probabilities() {
        let p = ServiceFaultPlan::mixed(9);
        let n = 4000u64;
        let leaves =
            (0..n).filter(|&t| p.churn_at(t) == Some(ChurnKind::Leave)).count() as f64 / n as f64;
        assert!((leaves - p.node_leave_prob).abs() < 0.03, "leave rate {leaves}");
        let crashes = (0..n).filter(|&j| p.crash_at(j, 0).is_some()).count() as f64 / n as f64;
        assert!((crashes - p.crash_prob).abs() < 0.03, "crash rate {crashes}");
        for j in 0..200 {
            if let Some(frac) = p.crash_at(j, 0) {
                assert!((0.0..=1.0).contains(&frac), "crash fraction {frac}");
            }
        }
    }

    #[test]
    fn certain_job_crash_probability_always_crashes() {
        let p = ServiceFaultPlan::job_crashes(5, 1.0);
        assert!(!p.is_empty());
        assert!(!p.has_churn());
        for attempt in 0..6 {
            assert!(p.crash_at(2, attempt).is_some());
        }
        assert!(ServiceFaultPlan::churn(5, 0.5).has_churn());
    }

    #[test]
    fn service_report_merges_and_detects_dirt() {
        let mut a = ServiceFaultReport {
            node_leaves: 2,
            job_crashes: 1,
            lost_service_secs: 12.5,
            ..ServiceFaultReport::default()
        };
        let b = ServiceFaultReport {
            node_joins: 1,
            resubmissions: 1,
            jobs_shed: 3,
            backoff_secs: 600.0,
            ..ServiceFaultReport::default()
        };
        a.merge(&b);
        assert_eq!(a.node_leaves, 2);
        assert_eq!(a.node_joins, 1);
        assert_eq!(a.jobs_shed, 3);
        assert_eq!(a.backoff_secs, 600.0);
        assert!(!a.is_clean());
        assert!(ServiceFaultReport::default().is_clean());
        assert_eq!(ChurnKind::Leave.name(), "leave");
        assert_eq!(ChurnKind::Join.name(), "join");
    }

    #[test]
    fn report_merge_and_delta_round_trip() {
        let mut a = FaultReport { injected: 2, crashes: 1, wasted_epoch_secs: 3.5, ..FaultReport::default() };
        let b = FaultReport { injected: 1, retried: 4, recovery_overhead_secs: 2.0, ..FaultReport::default() };
        let before = a;
        a.merge(&b);
        assert_eq!(a.injected, 3);
        assert_eq!(a.retried, 4);
        assert_eq!(a.delta_since(&before), b);
        assert!(!a.is_clean());
        assert!(FaultReport::default().is_clean());
    }
}
