//! Cluster topology and resource accounting.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SystemConfig;

/// Identifier of a node within a [`ClusterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// One physical node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Cores available on the node.
    pub cores: u32,
    /// Memory available on the node, GiB.
    pub memory_gb: u32,
}

/// The cluster inventory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Node inventory; index is the [`NodeId`].
    pub nodes: Vec<Node>,
}

impl ClusterSpec {
    /// The paper's distributed testbed: 4 Intel E3 nodes, 32 logical cores
    /// and 64 GiB each (§7.1.1).
    pub fn paper_distributed() -> Self {
        ClusterSpec { nodes: vec![Node { cores: 32, memory_gb: 64 }; 4] }
    }

    /// The paper's single-node Type-III testbed: one Intel E5 node with 8
    /// cores and 24 GiB (§7.1.1).
    pub fn paper_single_node() -> Self {
        ClusterSpec { nodes: vec![Node { cores: 8, memory_gb: 24 }] }
    }

    /// Total cores across the cluster.
    pub fn total_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores).sum()
    }
}

/// Error type for allocation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No node can satisfy the request even when idle.
    RequestTooLarge {
        /// The request that cannot fit anywhere.
        request: SystemConfig,
    },
    /// The given allocation id is unknown (double release).
    UnknownAllocation {
        /// The offending id.
        id: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::RequestTooLarge { request } => {
                write!(f, "request {request} exceeds every node's capacity")
            }
            ClusterError::UnknownAllocation { id } => write!(f, "unknown allocation id {id}"),
        }
    }
}

impl Error for ClusterError {}

/// A live resource grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Unique grant id (used for release).
    pub id: u64,
    /// Node the grant landed on.
    pub node: NodeId,
    /// Resources granted.
    pub config: SystemConfig,
}

/// Core/memory accountant with oversubscription.
///
/// PipeTune trials always get *placed* (the paper pins co-located jobs to the
/// same cores in Fig. 5 and §7.4); what changes under load is the
/// **contention factor**: the ratio of cores demanded to cores present on a
/// node, which the [`crate::CostModel`] turns into slowdown.
#[derive(Debug, Clone)]
pub struct Allocator {
    spec: ClusterSpec,
    allocated_cores: Vec<u64>,
    allocated_memory: Vec<u64>,
    grants: HashMap<u64, Allocation>,
    next_id: u64,
}

impl Allocator {
    /// Creates an allocator for a cluster.
    pub fn new(spec: ClusterSpec) -> Self {
        let n = spec.nodes.len();
        Allocator {
            spec,
            allocated_cores: vec![0; n],
            allocated_memory: vec![0; n],
            grants: HashMap::new(),
            next_id: 0,
        }
    }

    /// The cluster inventory.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Places a request on the least-loaded node (by core oversubscription
    /// ratio), allowing oversubscription.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::RequestTooLarge`] when no node could satisfy
    /// the request even when idle (the request exceeds physical capacity).
    pub fn allocate(&mut self, request: SystemConfig) -> Result<Allocation, ClusterError> {
        let fits_somewhere = self
            .spec
            .nodes
            .iter()
            .any(|n| request.cores <= n.cores && request.memory_gb <= n.memory_gb);
        if !fits_somewhere {
            return Err(ClusterError::RequestTooLarge { request });
        }
        // Least-loaded eligible node.
        let node = (0..self.spec.nodes.len())
            .filter(|&i| {
                request.cores <= self.spec.nodes[i].cores
                    && request.memory_gb <= self.spec.nodes[i].memory_gb
            })
            .min_by(|&a, &b| {
                self.load(NodeId(a))
                    .partial_cmp(&self.load(NodeId(b)))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("fits_somewhere guarantees a candidate");
        self.allocated_cores[node] += u64::from(request.cores);
        self.allocated_memory[node] += u64::from(request.memory_gb);
        let grant = Allocation { id: self.next_id, node: NodeId(node), config: request };
        self.grants.insert(grant.id, grant);
        self.next_id += 1;
        Ok(grant)
    }

    /// Releases a grant.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownAllocation`] on double release.
    pub fn release(&mut self, id: u64) -> Result<(), ClusterError> {
        let grant = self.grants.remove(&id).ok_or(ClusterError::UnknownAllocation { id })?;
        let n = grant.node.0;
        self.allocated_cores[n] -= u64::from(grant.config.cores);
        self.allocated_memory[n] -= u64::from(grant.config.memory_gb);
        Ok(())
    }

    /// Core demand / capacity ratio for a node (0.0 = idle).
    pub fn load(&self, node: NodeId) -> f64 {
        let cap = self.spec.nodes[node.0].cores.max(1) as f64;
        self.allocated_cores[node.0] as f64 / cap
    }

    /// Contention factor ≥ 1.0 used by the cost model: demand/capacity
    /// clamped below at 1 (an undersubscribed node runs at full speed).
    pub fn contention(&self, node: NodeId) -> f64 {
        self.load(node).max(1.0)
    }

    /// Number of live grants.
    pub fn live_grants(&self) -> usize {
        self.grants.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> Allocator {
        Allocator::new(ClusterSpec { nodes: vec![Node { cores: 8, memory_gb: 16 }; 2] })
    }

    #[test]
    fn allocation_balances_across_nodes() {
        let mut a = small_cluster();
        let g1 = a.allocate(SystemConfig::new(4, 4)).unwrap();
        let g2 = a.allocate(SystemConfig::new(4, 4)).unwrap();
        assert_ne!(g1.node, g2.node, "second grant should go to the idle node");
    }

    #[test]
    fn oversubscription_raises_contention() {
        let mut a = Allocator::new(ClusterSpec { nodes: vec![Node { cores: 8, memory_gb: 16 }] });
        let node = NodeId(0);
        assert_eq!(a.contention(node), 1.0);
        for _ in 0..3 {
            a.allocate(SystemConfig::new(8, 4)).unwrap();
        }
        assert_eq!(a.contention(node), 3.0);
    }

    #[test]
    fn release_restores_capacity_and_rejects_double_free() {
        let mut a = small_cluster();
        let g = a.allocate(SystemConfig::new(8, 8)).unwrap();
        assert_eq!(a.live_grants(), 1);
        a.release(g.id).unwrap();
        assert_eq!(a.live_grants(), 0);
        assert_eq!(a.load(g.node), 0.0);
        assert!(matches!(a.release(g.id), Err(ClusterError::UnknownAllocation { .. })));
    }

    #[test]
    fn impossible_request_is_rejected() {
        let mut a = small_cluster();
        let err = a.allocate(SystemConfig::new(64, 4)).unwrap_err();
        assert!(matches!(err, ClusterError::RequestTooLarge { .. }));
    }

    #[test]
    fn paper_specs_match_section_7() {
        assert_eq!(ClusterSpec::paper_distributed().nodes.len(), 4);
        assert_eq!(ClusterSpec::paper_single_node().nodes[0].memory_gb, 24);
        assert_eq!(ClusterSpec::paper_distributed().total_cores(), 128);
    }
}
