//! Telemetry adapters for the cluster simulator: canonical metric names
//! for fault and slot accounting, and helpers that record them into a
//! [`MetricsRegistry`].
//!
//! The simulator itself stays pure (fault decisions are stateless hashes);
//! the executor calls these helpers at merge points, so recording order —
//! and therefore every exported byte — is deterministic.

use pipetune_telemetry::{AttrValue, Attrs, MetricsRegistry, RATIO_BUCKETS};

use crate::faults::{FaultKind, FaultReport};

pipetune_telemetry::metric_names! {
    /// Counter: faults injected, all classes (`FaultReport::injected`).
    pub const FAULTS_INJECTED = "faults.injected";
    /// Counter: node crashes injected.
    pub const FAULTS_CRASHES = "faults.crashes";
    /// Counter: epoch- and slot-level stragglers injected.
    pub const FAULTS_STRAGGLERS = "faults.stragglers";
    /// Counter: transient counter-read failures injected.
    pub const FAULTS_COUNTER_READS = "faults.counter_reads";
    /// Counter: preemptions injected.
    pub const FAULTS_PREEMPTIONS = "faults.preemptions";
    /// Counter: retry attempts performed (crash retries, re-probes).
    pub const FAULTS_RETRIED = "faults.retried";
    /// Counter: faults fully recovered from.
    pub const FAULTS_RECOVERED = "faults.recovered";
    /// Counter: trials abandoned after exhausting the retry budget.
    pub const FAULTS_ABANDONED = "faults.abandoned";
    /// Gauge: simulated epoch-seconds destroyed by faults.
    pub const FAULTS_WASTED_SECS = "faults.wasted_epoch_secs";
    /// Gauge: simulated seconds spent on recovery mechanics.
    pub const FAULTS_RECOVERY_SECS = "faults.recovery_overhead_secs";
    /// Histogram: per-round simulated executor slot speed (1.0 = healthy).
    pub const SLOT_SPEED = "slots.speed";
    /// Counter: slot-straggler rounds (at least one slow slot).
    pub const SLOT_STRAGGLER_ROUNDS = "slots.straggler_rounds";
}

/// Records a fault report's counters into `metrics` under the canonical
/// names above. Pass a *delta* report (e.g.
/// [`FaultReport::delta_since`]) to avoid double counting across merges.
pub fn record_fault_report(report: &FaultReport, metrics: &mut MetricsRegistry) {
    if report.is_clean() {
        return;
    }
    metrics.counter_add(FAULTS_INJECTED, report.injected);
    metrics.counter_add(FAULTS_CRASHES, report.crashes);
    metrics.counter_add(FAULTS_STRAGGLERS, report.stragglers);
    metrics.counter_add(FAULTS_COUNTER_READS, report.counter_faults);
    metrics.counter_add(FAULTS_PREEMPTIONS, report.preemptions);
    metrics.counter_add(FAULTS_RETRIED, report.retried);
    metrics.counter_add(FAULTS_RECOVERED, report.recovered);
    metrics.counter_add(FAULTS_ABANDONED, report.abandoned);
}

/// Records a scheduler round's simulated slot speeds: one [`SLOT_SPEED`]
/// observation per slot, plus a [`SLOT_STRAGGLER_ROUNDS`] tick when any
/// slot ran below nominal speed.
pub fn record_slot_speeds(speeds: &[f64], metrics: &mut MetricsRegistry) {
    for &speed in speeds {
        metrics.observe(SLOT_SPEED, RATIO_BUCKETS, speed);
    }
    if speeds.iter().any(|&s| s < 1.0) {
        metrics.counter_add(SLOT_STRAGGLER_ROUNDS, 1);
    }
}

/// Stable lower-snake label for a fault kind (trace `fault` events).
pub fn fault_kind_label(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::NodeCrash { .. } => "node_crash",
        FaultKind::Straggler { .. } => "straggler",
        FaultKind::CounterRead => "counter_read",
        FaultKind::Preemption { .. } => "preemption",
    }
}

/// Trace attributes describing a fault kind (label plus its severity
/// parameter, when it has one).
pub fn fault_attrs(kind: &FaultKind) -> Attrs {
    let mut attrs: Attrs = vec![("fault", AttrValue::Str(fault_kind_label(kind).into()))];
    match kind {
        FaultKind::NodeCrash { wasted_fraction } => {
            attrs.push(("wasted_fraction", AttrValue::F64(*wasted_fraction)));
        }
        FaultKind::Straggler { slowdown } => {
            attrs.push(("slowdown", AttrValue::F64(*slowdown)));
        }
        FaultKind::Preemption { suspend_secs } => {
            attrs.push(("suspend_secs", AttrValue::F64(*suspend_secs)));
        }
        FaultKind::CounterRead => {}
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_records_nothing() {
        let mut m = MetricsRegistry::new();
        record_fault_report(&FaultReport::default(), &mut m);
        assert!(m.is_empty());
    }

    #[test]
    fn report_counters_land_under_canonical_names() {
        let report = FaultReport {
            injected: 5,
            crashes: 2,
            stragglers: 1,
            counter_faults: 1,
            preemptions: 1,
            retried: 2,
            recovered: 4,
            abandoned: 1,
            wasted_epoch_secs: 10.0,
            recovery_overhead_secs: 3.0,
        };
        let mut m = MetricsRegistry::new();
        record_fault_report(&report, &mut m);
        assert_eq!(m.counter(FAULTS_INJECTED), 5);
        assert_eq!(m.counter(FAULTS_CRASHES), 2);
        assert_eq!(m.counter(FAULTS_ABANDONED), 1);
    }

    #[test]
    fn slot_speeds_count_straggler_rounds() {
        let mut m = MetricsRegistry::new();
        record_slot_speeds(&[1.0, 1.0], &mut m);
        assert_eq!(m.counter(SLOT_STRAGGLER_ROUNDS), 0);
        record_slot_speeds(&[1.0, 0.5], &mut m);
        assert_eq!(m.counter(SLOT_STRAGGLER_ROUNDS), 1);
        assert_eq!(m.histogram(SLOT_SPEED).unwrap().count(), 4);
    }

    #[test]
    fn fault_attrs_carry_kind_and_severity() {
        let attrs = fault_attrs(&FaultKind::Straggler { slowdown: 2.5 });
        assert_eq!(attrs[0].1, AttrValue::Str("straggler".into()));
        assert_eq!(attrs[1], ("slowdown", AttrValue::F64(2.5)));
        assert_eq!(fault_kind_label(&FaultKind::CounterRead), "counter_read");
    }
}
