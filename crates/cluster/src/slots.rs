//! Slot-pool accounting for multi-job tuning services.
//!
//! A tuning service partitions the cluster's parallel trial slots across
//! concurrently admitted jobs. [`SlotPool`] is the bookkeeping side of that
//! partitioning: leases are granted against a fixed capacity and can never
//! oversubscribe it, so a scheduler bug that hands out more slots than the
//! cluster has surfaces as a typed error instead of silently corrupted
//! wall-clock accounting. The property suite (`tests/service_props.rs`)
//! asserts the no-oversubscription invariant at every event time of a
//! service run.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from [`SlotPool`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPoolError {
    /// A lease asked for more slots than are currently free.
    Exhausted {
        /// Slots requested.
        requested: usize,
        /// Slots still free.
        available: usize,
    },
    /// A lease asked for zero slots (a job always occupies at least one).
    EmptyLease,
    /// A release named a lease id that is not outstanding.
    UnknownLease {
        /// The dangling lease id.
        lease: u64,
    },
    /// A resize asked for less capacity than is currently leased out;
    /// callers must shrink or release leases first.
    ShrinkBelowInUse {
        /// Capacity requested.
        requested: usize,
        /// Slots currently leased out.
        in_use: usize,
    },
}

impl fmt::Display for SlotPoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotPoolError::Exhausted { requested, available } => {
                write!(f, "requested {requested} slot(s) but only {available} free")
            }
            SlotPoolError::EmptyLease => write!(f, "a lease must cover at least one slot"),
            SlotPoolError::UnknownLease { lease } => {
                write!(f, "lease {lease} is not outstanding")
            }
            SlotPoolError::ShrinkBelowInUse { requested, in_use } => {
                write!(f, "cannot shrink capacity to {requested} with {in_use} slot(s) leased")
            }
        }
    }
}

impl Error for SlotPoolError {}

/// A fixed pool of parallel trial slots with leased-out accounting.
///
/// # Example
///
/// ```
/// use pipetune_cluster::SlotPool;
///
/// let mut pool = SlotPool::new(4);
/// let a = pool.lease(3).unwrap();
/// assert_eq!(pool.available(), 1);
/// assert!(pool.lease(2).is_err(), "no oversubscription");
/// assert_eq!(pool.release(a), Ok(3));
/// assert_eq!(pool.available(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SlotPool {
    capacity: usize,
    leases: BTreeMap<u64, usize>,
    next_lease: u64,
    in_use: usize,
}

impl SlotPool {
    /// A pool with `capacity` slots, all free.
    pub fn new(capacity: usize) -> Self {
        SlotPool { capacity, leases: BTreeMap::new(), next_lease: 0, in_use: 0 }
    }

    /// Total slots, leased or not.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently leased out.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Slots currently free.
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    /// Outstanding lease count.
    pub fn leases(&self) -> usize {
        self.leases.len()
    }

    /// Leases `slots` slots, returning the lease id to release later.
    ///
    /// # Errors
    ///
    /// [`SlotPoolError::EmptyLease`] for zero slots,
    /// [`SlotPoolError::Exhausted`] when fewer than `slots` are free —
    /// a pool never oversubscribes.
    pub fn lease(&mut self, slots: usize) -> Result<u64, SlotPoolError> {
        if slots == 0 {
            return Err(SlotPoolError::EmptyLease);
        }
        let available = self.available();
        if slots > available {
            return Err(SlotPoolError::Exhausted { requested: slots, available });
        }
        let lease = self.next_lease;
        self.next_lease += 1;
        self.leases.insert(lease, slots);
        self.in_use += slots;
        Ok(lease)
    }

    /// Releases a lease, returning how many slots it covered.
    ///
    /// # Errors
    ///
    /// [`SlotPoolError::UnknownLease`] when `lease` is not outstanding.
    pub fn release(&mut self, lease: u64) -> Result<usize, SlotPoolError> {
        match self.leases.remove(&lease) {
            Some(slots) => {
                self.in_use -= slots;
                Ok(slots)
            }
            None => Err(SlotPoolError::UnknownLease { lease }),
        }
    }

    /// Resizes the pool to `capacity` total slots — the elastic-membership
    /// hook for node churn: a leaving node shrinks the pool, a rejoining
    /// one grows it. Outstanding leases are untouched.
    ///
    /// # Errors
    ///
    /// [`SlotPoolError::ShrinkBelowInUse`] when `capacity` is below the
    /// currently leased total — a pool never oversubscribes, so callers
    /// must release (or shrink) leases *before* taking capacity away.
    pub fn resize(&mut self, capacity: usize) -> Result<(), SlotPoolError> {
        if capacity < self.in_use {
            return Err(SlotPoolError::ShrinkBelowInUse { requested: capacity, in_use: self.in_use });
        }
        self.capacity = capacity;
        Ok(())
    }

    /// Splits `capacity` slots into `parts` near-equal partitions (the
    /// first `capacity % parts` partitions get one extra slot). Every
    /// partition gets at least one slot even when `parts > capacity`, so
    /// a job can always run — the pool accounting is what then caps how
    /// many partitions are simultaneously leased.
    ///
    /// Returns an empty vector for zero parts.
    pub fn partition(capacity: usize, parts: usize) -> Vec<usize> {
        if parts == 0 {
            return Vec::new();
        }
        let base = capacity / parts;
        let extra = capacity % parts;
        (0..parts).map(|i| (base + usize::from(i < extra)).max(1)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_account_and_release() {
        let mut pool = SlotPool::new(4);
        let a = pool.lease(1).unwrap();
        let b = pool.lease(3).unwrap();
        assert_eq!(pool.in_use(), 4);
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.leases(), 2);
        assert_eq!(pool.release(a), Ok(1));
        assert_eq!(pool.release(b), Ok(3));
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn oversubscription_and_bad_releases_are_typed_errors() {
        let mut pool = SlotPool::new(2);
        assert_eq!(pool.lease(0), Err(SlotPoolError::EmptyLease));
        let a = pool.lease(2).unwrap();
        assert_eq!(pool.lease(1), Err(SlotPoolError::Exhausted { requested: 1, available: 0 }));
        assert_eq!(pool.release(a + 1), Err(SlotPoolError::UnknownLease { lease: a + 1 }));
        assert_eq!(pool.release(a), Ok(2));
        assert_eq!(pool.release(a), Err(SlotPoolError::UnknownLease { lease: a }));
    }

    #[test]
    fn lease_ids_are_never_reused() {
        let mut pool = SlotPool::new(1);
        let a = pool.lease(1).unwrap();
        pool.release(a).unwrap();
        let b = pool.lease(1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn partition_splits_near_equally_with_a_floor_of_one() {
        assert_eq!(SlotPool::partition(4, 2), vec![2, 2]);
        assert_eq!(SlotPool::partition(5, 2), vec![3, 2]);
        assert_eq!(SlotPool::partition(4, 3), vec![2, 1, 1]);
        assert_eq!(SlotPool::partition(2, 4), vec![1, 1, 1, 1]);
        assert_eq!(SlotPool::partition(4, 0), Vec::<usize>::new());
    }

    #[test]
    fn resize_grows_freely_but_never_strands_leases() {
        let mut pool = SlotPool::new(4);
        let a = pool.lease(3).unwrap();
        // Growing is always fine.
        pool.resize(6).unwrap();
        assert_eq!(pool.capacity(), 6);
        assert_eq!(pool.available(), 3);
        // Shrinking below the leased total is a typed error...
        assert_eq!(
            pool.resize(2),
            Err(SlotPoolError::ShrinkBelowInUse { requested: 2, in_use: 3 })
        );
        assert_eq!(pool.capacity(), 6, "failed resize leaves the pool untouched");
        // ...but shrinking to exactly the leased total works.
        pool.resize(3).unwrap();
        assert_eq!(pool.available(), 0);
        pool.release(a).unwrap();
        pool.resize(1).unwrap();
        assert_eq!(pool.capacity(), 1);
    }

    #[test]
    fn errors_display_their_context() {
        let text = SlotPoolError::Exhausted { requested: 3, available: 1 }.to_string();
        assert!(text.contains('3') && text.contains('1'), "{text}");
        assert!(SlotPoolError::UnknownLease { lease: 9 }.to_string().contains('9'));
        let shrink = SlotPoolError::ShrinkBelowInUse { requested: 2, in_use: 5 }.to_string();
        assert!(shrink.contains('2') && shrink.contains('5'), "{shrink}");
    }
}
