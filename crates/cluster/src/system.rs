//! System parameters: the configurable resources PipeTune tunes (§3.2).

use serde::{Deserialize, Serialize};

/// One system configuration: the paper restricts its evaluation to CPU cores
/// and memory (§7.1.4), with the note that the same mechanism extends to
/// frequency/voltage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemConfig {
    /// CPU cores allocated to the trial.
    pub cores: u32,
    /// Memory allocated to the trial, in GiB.
    pub memory_gb: u32,
    /// CPU frequency in MHz. The paper evaluates cores and memory only but
    /// notes "the same mechanisms can be applied to any other parameter of
    /// interest (e.g., CPU frequency, CPU voltage)" (§7.1.4); this field is
    /// that extension. [`SystemConfig::NOMINAL_FREQ_MHZ`] means "no DVFS".
    #[serde(default = "nominal_freq")]
    pub freq_mhz: u32,
}

fn nominal_freq() -> u32 {
    SystemConfig::NOMINAL_FREQ_MHZ
}

impl SystemConfig {
    /// Nominal (non-scaled) core frequency, MHz.
    pub const NOMINAL_FREQ_MHZ: u32 = 3500;

    /// A configuration at nominal frequency.
    pub fn new(cores: u32, memory_gb: u32) -> Self {
        SystemConfig { cores, memory_gb, freq_mhz: Self::NOMINAL_FREQ_MHZ }
    }

    /// The paper's default trial configuration before tuning.
    pub fn default_trial() -> Self {
        SystemConfig::new(4, 4)
    }

    /// Frequency relative to nominal (1.0 = no scaling).
    pub fn freq_ratio(&self) -> f64 {
        f64::from(self.freq_mhz.max(1)) / f64::from(Self::NOMINAL_FREQ_MHZ)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::default_trial()
    }
}

impl std::fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}c/{}GB", self.cores, self.memory_gb)?;
        if self.freq_mhz != Self::NOMINAL_FREQ_MHZ {
            write!(f, "@{:.1}GHz", f64::from(self.freq_mhz) / 1000.0)?;
        }
        Ok(())
    }
}

/// The discrete search space of system configurations.
///
/// The paper's cluster allows cores ∈ {4, 8, 16} and memory ∈ {4, 8, 16, 32}
/// GiB (§7.2); probing walks this grid one epoch per configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemSpace {
    /// Candidate core counts.
    pub cores: Vec<u32>,
    /// Candidate memory sizes in GiB.
    pub memory_gb: Vec<u32>,
    /// Candidate CPU frequencies in MHz (a single nominal entry disables
    /// DVFS tuning, the paper's configuration).
    #[serde(default = "nominal_freq_space")]
    pub freq_mhz: Vec<u32>,
}

fn nominal_freq_space() -> Vec<u32> {
    vec![SystemConfig::NOMINAL_FREQ_MHZ]
}

impl Default for SystemSpace {
    fn default() -> Self {
        SystemSpace {
            cores: vec![4, 8, 16],
            memory_gb: vec![4, 8, 16, 32],
            freq_mhz: nominal_freq_space(),
        }
    }
}

impl SystemSpace {
    /// Every configuration in the grid, row-major (cores outer, then
    /// memory, then frequency).
    pub fn configurations(&self) -> Vec<SystemConfig> {
        let mut out = Vec::with_capacity(self.len());
        for &c in &self.cores {
            for &m in &self.memory_gb {
                for &f in &self.freq_mhz {
                    out.push(SystemConfig { cores: c, memory_gb: m, freq_mhz: f });
                }
            }
        }
        out
    }

    /// Number of configurations in the grid.
    pub fn len(&self) -> usize {
        self.cores.len() * self.memory_gb.len() * self.freq_mhz.len().max(1)
    }

    /// Returns `true` when the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when `cfg` is a member of the grid.
    pub fn contains(&self, cfg: &SystemConfig) -> bool {
        self.cores.contains(&cfg.cores)
            && self.memory_gb.contains(&cfg.memory_gb)
            && self.freq_mhz.contains(&cfg.freq_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_matches_paper_grid() {
        let space = SystemSpace::default();
        assert_eq!(space.len(), 12);
        assert!(space.contains(&SystemConfig::new(16, 32)));
        assert!(!space.contains(&SystemConfig::new(2, 32)));
    }

    #[test]
    fn configurations_enumerates_full_grid() {
        let space = SystemSpace { cores: vec![1, 2], memory_gb: vec![4], ..SystemSpace::default() };
        assert_eq!(
            space.configurations(),
            vec![SystemConfig::new(1, 4), SystemConfig::new(2, 4)]
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SystemConfig::new(8, 16).to_string(), "8c/16GB");
    }
}
