//! Epoch-duration cost model.
//!
//! Encodes the mechanism of §3.2: synchronous mini-batch SGD splits each
//! batch across `N` cores and synchronises model parameters every iteration.
//! More cores buy compute throughput (with imperfect parallel efficiency)
//! but pay a per-iteration synchronisation cost that *grows with the core
//! count* — so configurations with many iterations per epoch (small batches)
//! slow down on more cores while large batches speed up. This is Fig. 3b's
//! crossover and the reason system parameters are worth tuning per trial.

use serde::{Deserialize, Serialize};

use crate::SystemConfig;

/// The work one epoch performs, in system-independent units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkUnits {
    /// Floating-point operations per epoch.
    pub flops: f64,
    /// Parameter-synchronisation points per epoch (≈ examples / batch size).
    pub iterations: u64,
    /// Bytes the job needs resident (dataset cache + activations + runtime).
    pub working_set_bytes: f64,
    /// Bytes of memory traffic per flop; higher values depress the
    /// effective compute rate (memory-bound workloads).
    pub memory_intensity: f64,
}

impl WorkUnits {
    /// Validates ranges (non-negative, finite).
    pub fn is_valid(&self) -> bool {
        self.flops.is_finite()
            && self.flops >= 0.0
            && self.working_set_bytes.is_finite()
            && self.working_set_bytes >= 0.0
            && self.memory_intensity.is_finite()
            && self.memory_intensity >= 0.0
    }
}

/// Calibrated epoch-duration model.
///
/// `duration = init + (compute + sync) × mem_penalty × contention`, where
///
/// * `compute = flops / (rate(memory_intensity) × cores^alpha)`
/// * `sync = iterations × (sync_base + sync_per_core × cores)`
/// * `mem_penalty = 1 + overflow_penalty × max(0, ws/mem − 1)`
///
/// # Example
///
/// ```
/// use pipetune_cluster::{CostModel, SystemConfig, WorkUnits};
///
/// let model = CostModel::default();
/// let work = WorkUnits {
///     flops: 6e11,
///     iterations: 60_000 / 64,
///     working_set_bytes: 2e9,
///     memory_intensity: 0.5,
/// };
/// let slow = model.epoch_duration(&work, &SystemConfig::new(8, 8), 1.0);
/// let fast = model.epoch_duration(&work, &SystemConfig::new(1, 8), 1.0);
/// // Small batch (many iterations): more cores are *slower* (Fig. 3b).
/// assert!(slow > fast);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-core peak throughput in flops/s.
    pub core_flops_per_sec: f64,
    /// Parallel-efficiency exponent: effective cores = cores^alpha.
    pub parallel_alpha: f64,
    /// Fixed synchronisation cost per iteration, seconds.
    pub sync_base_secs: f64,
    /// Additional synchronisation cost per iteration per core, seconds.
    pub sync_per_core_secs: f64,
    /// Slowdown multiplier per unit of working-set overflow.
    pub overflow_penalty: f64,
    /// Fixed per-epoch overhead (task scheduling, data loading), seconds.
    pub init_secs: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so LeNet/MNIST-scale work reproduces the sign and rough
        // magnitude of Fig. 3b (batch 64 ≈ +45 % at 8 cores, batch 1024
        // ≈ −50 %, crossover between).
        CostModel {
            core_flops_per_sec: 5e9,
            parallel_alpha: 0.5,
            sync_base_secs: 0.005,
            sync_per_core_secs: 0.025,
            overflow_penalty: 1.5,
            init_secs: 1.0,
        }
    }
}

impl CostModel {
    /// Simulated duration of one epoch, in seconds.
    ///
    /// `contention ≥ 1` multiplies the busy time (1.0 = dedicated cores; 2.0
    /// = two jobs pinned to the same cores, as in Fig. 5).
    ///
    /// Invalid work units or a zero-core configuration yield `f64::INFINITY`
    /// rather than panicking, so schedulers can treat them as unplaceable.
    pub fn epoch_duration(&self, work: &WorkUnits, sys: &SystemConfig, contention: f64) -> f64 {
        if !work.is_valid() || sys.cores == 0 || sys.memory_gb == 0 {
            return f64::INFINITY;
        }
        let eff_cores = (sys.cores as f64).powf(self.parallel_alpha);
        // Compute throughput scales linearly with the DVFS frequency ratio.
        let rate =
            self.core_flops_per_sec * sys.freq_ratio() / (1.0 + 0.3 * work.memory_intensity);
        let compute = work.flops / (rate * eff_cores);
        let sync = work.iterations as f64
            * (self.sync_base_secs + self.sync_per_core_secs * sys.cores as f64);
        let overflow =
            (work.working_set_bytes / (sys.memory_gb as f64 * 1e9) - 1.0).max(0.0);
        let mem_penalty = 1.0 + self.overflow_penalty * overflow;
        self.init_secs + (compute + sync) * mem_penalty * contention.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lenet_work(batch: u64) -> WorkUnits {
        WorkUnits {
            flops: 6e11,
            iterations: 60_000 / batch,
            working_set_bytes: 2e9,
            memory_intensity: 0.5,
        }
    }

    fn dur(batch: u64, cores: u32) -> f64 {
        CostModel::default().epoch_duration(
            &lenet_work(batch),
            &SystemConfig::new(cores, 8),
            1.0,
        )
    }

    #[test]
    fn small_batch_slows_down_with_cores_fig3b() {
        // Paper Fig. 3b: batch 64 gets *slower* with more cores.
        assert!(dur(64, 8) > dur(64, 1));
        let pct = (dur(64, 8) - dur(64, 1)) / dur(64, 1) * 100.0;
        assert!((20.0..80.0).contains(&pct), "batch-64 slowdown {pct:.0}% out of band");
    }

    #[test]
    fn large_batch_speeds_up_with_cores_fig3b() {
        assert!(dur(1024, 8) < dur(1024, 1));
        let pct = (dur(1024, 1) - dur(1024, 8)) / dur(1024, 1) * 100.0;
        assert!((25.0..80.0).contains(&pct), "batch-1024 speedup {pct:.0}% out of band");
    }

    #[test]
    fn crossover_sits_between_batch_sizes() {
        // Medium batch: smaller effect magnitude than either extreme.
        let small = (dur(64, 8) - dur(64, 1)) / dur(64, 1);
        let medium = (dur(256, 8) - dur(256, 1)) / dur(256, 1);
        let large = (dur(1024, 8) - dur(1024, 1)) / dur(1024, 1);
        assert!(small > medium && medium > large, "{small} {medium} {large}");
    }

    #[test]
    fn memory_overflow_penalises_duration() {
        let model = CostModel::default();
        let mut work = lenet_work(256);
        work.working_set_bytes = 20e9; // 20 GB working set
        let tight = model.epoch_duration(&work, &SystemConfig::new(8, 4), 1.0);
        let roomy = model.epoch_duration(&work, &SystemConfig::new(8, 32), 1.0);
        assert!(tight > roomy * 1.5, "tight {tight} roomy {roomy}");
    }

    #[test]
    fn contention_scales_busy_time() {
        let model = CostModel::default();
        let work = lenet_work(256);
        let alone = model.epoch_duration(&work, &SystemConfig::default(), 1.0);
        let shared = model.epoch_duration(&work, &SystemConfig::default(), 2.0);
        assert!(shared > alone * 1.8);
    }

    #[test]
    fn invalid_inputs_are_unplaceable_not_panics() {
        let model = CostModel::default();
        let work = lenet_work(64);
        assert!(model
            .epoch_duration(&work, &SystemConfig::new(0, 8), 1.0)
            .is_infinite());
        let bad = WorkUnits { flops: f64::NAN, ..work };
        assert!(model.epoch_duration(&bad, &SystemConfig::default(), 1.0).is_infinite());
    }

    #[test]
    fn lower_frequency_slows_compute_but_not_sync() {
        let model = CostModel::default();
        let work = lenet_work(1024); // compute-dominated
        let full = SystemConfig::new(8, 32);
        let half = SystemConfig { freq_mhz: SystemConfig::NOMINAL_FREQ_MHZ / 2, ..full };
        let d_full = model.epoch_duration(&work, &full, 1.0);
        let d_half = model.epoch_duration(&work, &half, 1.0);
        assert!(d_half > d_full * 1.3, "{d_half} vs {d_full}");
    }

    #[test]
    fn memory_intensity_depresses_throughput() {
        let model = CostModel::default();
        let lean = WorkUnits { memory_intensity: 0.1, ..lenet_work(1024) };
        let heavy = WorkUnits { memory_intensity: 4.0, ..lenet_work(1024) };
        let sys = SystemConfig::new(8, 32);
        assert!(model.epoch_duration(&heavy, &sys, 1.0) > model.epoch_duration(&lean, &sys, 1.0));
    }
}
