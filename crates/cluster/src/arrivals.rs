//! Poisson job-arrival process for the multi-tenancy experiments (§7.4):
//! "jobs arrive randomly with the interarrival times being exponentially
//! distributed".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SimTime;

/// Generator of exponentially distributed interarrival times.
///
/// # Example
///
/// ```
/// use pipetune_cluster::PoissonArrivals;
///
/// let mut arrivals = PoissonArrivals::new(0.01, 7); // one job every ~100 s
/// let times = arrivals.take_arrivals(3);
/// assert_eq!(times.len(), 3);
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
    rng: StdRng,
    now: SimTime,
}

impl PoissonArrivals {
    /// Creates a process with mean arrival rate `rate_per_sec` (jobs/second).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        PoissonArrivals { rate_per_sec, rng: StdRng::seed_from_u64(seed), now: SimTime::ZERO }
    }

    /// Samples the next absolute arrival time.
    pub fn next_arrival(&mut self) -> SimTime {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = -u.ln() / self.rate_per_sec;
        self.now = self.now.plus(SimTime::from_secs_f64(gap));
        self.now
    }

    /// Samples the next `n` absolute arrival times (non-decreasing).
    pub fn take_arrivals(&mut self, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_gap_matches_rate() {
        let mut p = PoissonArrivals::new(0.1, 3); // mean gap 10 s
        let times = p.take_arrivals(2000);
        let total = times.last().unwrap().as_secs_f64();
        let mean = total / 2000.0;
        assert!((mean - 10.0).abs() < 1.0, "mean gap {mean}");
    }

    #[test]
    fn arrivals_are_monotone_and_deterministic() {
        let mut a = PoissonArrivals::new(1.0, 9);
        let mut b = PoissonArrivals::new(1.0, 9);
        let ta = a.take_arrivals(50);
        let tb = b.take_arrivals(50);
        assert_eq!(ta, tb);
        assert!(ta.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0, 1);
    }
}
