//! Deterministic discrete-event simulator of a CPU deep-learning cluster.
//!
//! The paper evaluates on 4 Intel E3 nodes (8 cores, 64 GiB each) plus a
//! single-node E5 testbed. This crate simulates that infrastructure so the
//! reproduction can measure *time* and *placement* effects without the
//! hardware:
//!
//! * [`SimTime`] / [`EventQueue`] — a microsecond-resolution event engine.
//! * [`SystemConfig`] — the system parameters PipeTune tunes (cores, memory).
//! * [`CostModel`] — epoch duration as a function of work and system
//!   configuration. It encodes the mechanism the paper describes in §3.2:
//!   synchronous mini-batch SGD pays a per-iteration synchronisation cost
//!   that grows with core count, so *small* batches slow down on more cores
//!   while large batches speed up (Fig. 3b's crossover).
//! * [`ClusterSpec`] / [`Allocator`] — node inventory and core/memory
//!   accounting with oversubscription-driven contention (Fig. 5, §7.4).
//! * [`PoissonArrivals`] — exponential interarrival job traces for the
//!   multi-tenancy experiments (§7.4).
//! * [`SlotPool`] — leased-slot accounting a multi-job tuning service
//!   partitions the cluster's parallel trial slots with (never
//!   oversubscribing; see `docs/multitenancy.md`).
//! * [`FaultPlan`] / [`FaultReport`] / [`RetryPolicy`] — seeded,
//!   deterministic fault schedules (node crashes, stragglers, counter-read
//!   failures, preemptions) and the recovery accounting vocabulary.
//! * [`ServiceFaultPlan`] / [`ServiceFaultReport`] — the service-level
//!   siblings: node churn against the shared [`SlotPool`] and whole-job
//!   crashes with checkpointed resubmission (see `docs/faults.md`
//!   §"Service-level faults").
//!
//! Everything is deterministic under a seed; times are simulated, never wall
//! clock.

#![warn(missing_docs)]

mod arrivals;
mod cost;
mod faults;
pub mod observe;
mod sim;
mod slots;
mod system;
mod topology;

pub use arrivals::PoissonArrivals;
pub use cost::{CostModel, WorkUnits};
pub use faults::{
    ChurnKind, FaultKind, FaultPlan, FaultReport, RetryPolicy, ServiceFaultPlan,
    ServiceFaultReport,
};
pub use sim::{EventQueue, SimTime};
pub use slots::{SlotPool, SlotPoolError};
pub use system::{SystemConfig, SystemSpace};
pub use topology::{Allocation, Allocator, ClusterError, ClusterSpec, Node, NodeId};
