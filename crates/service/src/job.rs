//! Job submissions and the per-job records a service run produces.

use pipetune::{TuningOutcome, WorkloadSpec};

/// One tuning-job submission: when it arrives and what it tunes.
///
/// Arrival times are simulated seconds on the service's arrival clock
/// (the stream typically comes from
/// [`pipetune_cluster::PoissonArrivals`]).
#[derive(Debug, Clone, Copy)]
pub struct JobSubmission {
    /// Arrival time, simulated seconds (finite, non-negative).
    pub arrival_secs: f64,
    /// The workload this job tunes.
    pub spec: WorkloadSpec,
}

impl JobSubmission {
    /// A submission of `spec` arriving at `arrival_secs`.
    pub fn new(arrival_secs: f64, spec: WorkloadSpec) -> Self {
        JobSubmission { arrival_secs, spec }
    }
}

/// How a submitted job left the service — every submission resolves to
/// exactly one of these (the chaos suite's no-lost-jobs invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed,
    /// Admission control turned the job away at arrival; it never ran.
    Rejected,
    /// The job exceeded its deadline and was drained from the system
    /// (SLO-driven shedding).
    Shed,
    /// The job crashed and exhausted its resubmission budget.
    Abandoned,
}

impl JobOutcome {
    /// Stable lower-snake name used in telemetry attributes and reports.
    pub fn name(self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Rejected => "rejected",
            JobOutcome::Shed => "shed",
            JobOutcome::Abandoned => "abandoned",
        }
    }
}

/// What happened to one submitted job, in submission order.
///
/// Rejected jobs (`admitted = false`) never ran: their `service_secs`,
/// `start_secs`, `completion_secs`, `response_secs` and `queue_secs` are
/// `NaN`, `slots` is 0 and `outcome` is `None`. Shed and abandoned jobs
/// were admitted (their run's `outcome` is kept) but never completed:
/// `completion_secs` and `response_secs` are `NaN` and `drained_secs`
/// holds the instant they left the system.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Index of the job in the submission stream.
    pub job: usize,
    /// Workload name.
    pub workload: &'static str,
    /// Arrival time on the service clock, seconds.
    pub arrival_secs: f64,
    /// Whether admission control let the job in.
    pub admitted: bool,
    /// How the job left the system.
    pub status: JobOutcome,
    /// Service attempts started (1 for a crash-free run, more after
    /// resubmissions, 0 when rejected).
    pub attempts: u32,
    /// Parallel trial slots the job's tuning run was scheduled onto.
    pub slots: usize,
    /// Dedicated service demand: the job's full tuning run duration,
    /// seconds.
    pub service_secs: f64,
    /// First instant the job held capacity, service clock.
    pub start_secs: f64,
    /// Completion instant, service clock.
    pub completion_secs: f64,
    /// `completion − arrival`: what a tenant experiences.
    pub response_secs: f64,
    /// `start − arrival`: time spent waiting for capacity.
    pub queue_secs: f64,
    /// Instant a shed or abandoned job was drained from the system,
    /// service clock (`NaN` otherwise).
    pub drained_secs: f64,
    /// Service-seconds this job lost to crashes (work past its last
    /// checkpoint, redone on resubmission).
    pub lost_service_secs: f64,
    /// Simulated seconds this job sat in resubmission backoff.
    pub backoff_secs: f64,
    /// The full tuning outcome of the job's PipeTune run.
    pub outcome: Option<TuningOutcome>,
}

impl JobRecord {
    /// A record for a job that admission control turned away.
    pub(crate) fn rejected(job: usize, workload: &'static str, arrival_secs: f64) -> Self {
        JobRecord {
            job,
            workload,
            arrival_secs,
            admitted: false,
            status: JobOutcome::Rejected,
            attempts: 0,
            slots: 0,
            service_secs: f64::NAN,
            start_secs: f64::NAN,
            completion_secs: f64::NAN,
            response_secs: f64::NAN,
            queue_secs: f64::NAN,
            drained_secs: f64::NAN,
            lost_service_secs: 0.0,
            backoff_secs: 0.0,
            outcome: None,
        }
    }
}
