//! Multi-job tuning service: a shared-cluster scheduler running
//! concurrent PipeTune jobs.
//!
//! The paper evaluates PipeTune under multi-tenancy (§7.4) with analytic
//! queueing models over measured tuning times. This crate closes the loop:
//! a deterministic, event-driven service that accepts a stream of
//! tuning-job submissions (e.g. from
//! [`pipetune_cluster::PoissonArrivals`]), applies [`AdmissionControl`],
//! schedules the shared cluster under a pluggable [`SchedulingPolicy`]
//! (FIFO, processor sharing, shortest-remaining-service), partitions the
//! cluster's parallel-slot pool across admitted jobs via
//! [`pipetune_cluster::SlotPool`], and runs every admitted job as a full
//! PipeTune tuning run on the real multi-threaded trial executor.
//!
//! On top of the clean scheduling path the service injects
//! *service-level* faults from a [`pipetune_cluster::ServiceFaultPlan`]:
//! node churn that elastically resizes and repartitions the slot pool,
//! deterministic mid-service job crashes with checkpointed resubmission,
//! and deadline (SLO) enforcement that sheds late jobs into typed
//! [`JobOutcome`]s. See the `service` module docs and `docs/faults.md`
//! §"Service-level faults".
//!
//! Two cross-checks pin the scheduler's arithmetic:
//!
//! - the FIFO and processor-sharing policies reproduce the analytic
//!   `pipetune::simulate_fifo` / `pipetune::simulate_processor_sharing`
//!   completion times within 1e-9 seconds for identical job streams, and
//! - all outputs (job outcomes, fault reports, telemetry traces, the
//!   [`ServiceOutcome`] itself) are byte-identical across
//!   `ExperimentEnv::workers` counts, clean or under fault injection —
//!   the repo-wide determinism contract (`tests/service_determinism.rs`
//!   and the chaos sweep in `tests/service_chaos.rs`).
//!
//! See `docs/multitenancy.md` for the design narrative.
//!
//! # Example
//!
//! ```
//! use pipetune::{ExperimentEnv, TunerOptions, WorkloadSpec};
//! use pipetune_service::{JobSubmission, SchedulingPolicy, ServiceConfig, TuningService};
//!
//! let service = TuningService::new(
//!     ServiceConfig::default().with_policy(SchedulingPolicy::ProcessorSharing),
//! );
//! let outcome = service.run(
//!     &ExperimentEnv::distributed(41).with_workers(1),
//!     &[JobSubmission::new(0.0, WorkloadSpec::lenet_mnist())],
//!     &TunerOptions::fast(),
//! )?;
//! assert_eq!(outcome.jobs.len(), 1);
//! assert!(outcome.mean_response_secs > 0.0);
//! # Ok::<(), pipetune::PipeTuneError>(())
//! ```

#![warn(missing_docs)]

mod engine;
mod job;
pub mod observe;
mod policy;
mod service;

pub use engine::{Completion, EngineEvent, PolicyEngine, Removed, Trip};
pub use job::{JobOutcome, JobRecord, JobSubmission};
pub use policy::{AdmissionControl, SchedulingPolicy};
pub use service::{job_seed, ServiceConfig, ServiceOutcome, SlotSample, TuningService};
