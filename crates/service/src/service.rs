//! The tuning service driver: arrivals in, scheduled PipeTune runs out.
//!
//! [`TuningService::run`] processes a submission stream in arrival order.
//! Each admitted job is executed as a *real* tuning run (the full
//! multi-threaded trial executor) against a derived environment — its own
//! sub-seed, its slice of the cluster's parallel-slot pool, and a
//! telemetry handle scoped under its `job` span — and the run's wall-clock
//! duration becomes the job's service demand in the exact fluid-model
//! [`PolicyEngine`]. The engine then decides *when* on the shared cluster
//! that demand is served, per the configured [`SchedulingPolicy`].
//!
//! # Service-level faults
//!
//! On top of the per-trial fault injection inside each job's run
//! (`ExperimentEnv::fault_plan`), the driver injects *service-level*
//! faults from a [`ServiceFaultPlan`]:
//!
//! * **Node churn** — at deterministic churn ticks, nodes leave or rejoin
//!   the shared [`SlotPool`]; the pool is resized and the lease layout
//!   elastically repartitioned under every policy (never rounding a live
//!   job's slice to zero slots).
//! * **Job crashes** — a crashing job is removed mid-service at a drawn
//!   point, rolled back to its tuning run's last checkpoint mark
//!   (`TuningOutcome::checkpoint_marks`, i.e. the executor's
//!   `TrialCheckpoint` cadence) and resubmitted after bounded exponential
//!   backoff in simulated time; exhaustion yields
//!   [`JobOutcome::Abandoned`].
//! * **Deadlines** — a job exceeding [`ServiceConfig::deadline_secs`]
//!   drains cleanly into [`JobOutcome::Shed`] without poisoning the rest
//!   of the stream.
//!
//! The driver is a single event loop merging engine events (completions,
//! crash trips) with external events; sources due at the same instant
//! dispatch in the fixed order churn ≻ deadline ≻ resubmission ≻ arrival.
//! With an empty plan and no deadline every fault branch is dead and the
//! loop degenerates to the pre-fault per-arrival sequence, keeping clean
//! runs byte-identical to pre-fault builds.
//!
//! Determinism: the driver is single-threaded; per-job seeds derive only
//! from the master seed and the submission index, and every fault draw is
//! a pure function of plan-seed coordinates. Every job outcome, both
//! fault reports, the telemetry trace and the final [`ServiceOutcome`]
//! are therefore byte-identical for any `ExperimentEnv::workers` count —
//! the workers only parallelise *inside* a job's run, which already
//! honours the repo-wide determinism contract. Because churn draws key on
//! the tick index and crash draws on `(job, attempt)`, the capacity seen
//! at any arrival and each job's crash/resume chain are additionally
//! *policy-invariant*, so survivors tune identically under every policy.

use std::collections::BTreeMap;

use pipetune::{
    EpochCacheConfig, EpochCacheHandle, ExperimentEnv, PipeTune, PipeTuneError, TunerOptions,
};
use pipetune_cluster::{
    ChurnKind, FaultReport, ServiceFaultPlan, ServiceFaultReport, SlotPool, SlotPoolError,
};
use pipetune_telemetry::{
    EventKind, SpanId, SpanKind, TelemetryHandle, COUNT_BUCKETS, DURATION_BUCKETS_SECS,
};

use crate::engine::{Completion, EngineEvent, PolicyEngine, Trip};
use crate::job::{JobOutcome, JobRecord, JobSubmission};
use crate::observe;
use crate::policy::{AdmissionControl, SchedulingPolicy};

/// Key under which processor sharing's single ensemble lease is tracked
/// (PS co-locates every active job on the whole pool, so slot accounting
/// carries one capacity-wide lease rather than per-job slices).
const ENSEMBLE: usize = usize::MAX;

/// How the service schedules, admits, bounds and fault-tests jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Cluster-sharing discipline.
    pub policy: SchedulingPolicy,
    /// Admission control applied to each arrival.
    pub admission: AdmissionControl,
    /// Concurrent dedicated partitions (FIFO / shortest-remaining) or the
    /// processor-sharing capacity multiplier. Must be at least 1
    /// (validated at run time); capped to the pool capacity, and under
    /// node churn re-capped as the capacity moves. Each partition gets
    /// `capacity / servers` trial slots, floored at one.
    pub servers: usize,
    /// Reuse one PipeTune ground truth across the whole stream (the §7.4
    /// amortisation: later tenants skip probing for families seen
    /// earlier). When false every job tunes cold.
    pub share_ground_truth: bool,
    /// Per-job opt-in for the epoch-reuse cache: each admitted job runs
    /// with its own [`EpochCacheConfig`]-sized cache, so repeated
    /// hyperparameter prefixes inside one tuning run resume instead of
    /// retraining. `None` (the default) keeps every run byte-identical to
    /// cache-less builds.
    pub epoch_cache: Option<EpochCacheConfig>,
    /// Share one epoch cache across the whole stream (mirroring
    /// [`ServiceConfig::share_ground_truth`]). The cache key carries
    /// each trial's full identity (per-job seed, RNG stream, tuner
    /// policy), so a later job adopts prefixes exactly when it *replays*
    /// an earlier one — a crash/resubmit rerun under its original
    /// per-job seed, or a repeated identical submission — and jobs under
    /// distinct seeds share the store but never each other's state.
    /// Requires [`ServiceConfig::epoch_cache`] to be set; jobs are
    /// executed in admission order by a single-threaded driver, so
    /// sharing stays deterministic.
    pub share_epoch_cache: bool,
    /// Per-job relative deadline (SLO), seconds after arrival: a job
    /// still unfinished then is shed ([`JobOutcome::Shed`]). `None`
    /// disables deadline enforcement.
    pub deadline_secs: Option<f64>,
    /// Service-level fault schedule (node churn, job crashes). The empty
    /// plan keeps runs byte-identical to pre-fault builds.
    pub faults: ServiceFaultPlan,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            policy: SchedulingPolicy::Fifo,
            admission: AdmissionControl::unbounded(),
            servers: 1,
            share_ground_truth: true,
            epoch_cache: None,
            share_epoch_cache: false,
            deadline_secs: None,
            faults: ServiceFaultPlan::none(),
        }
    }
}

impl ServiceConfig {
    /// Replaces the scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the admission controller.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionControl) -> Self {
        self.admission = admission;
        self
    }

    /// Replaces the server count (validated at run time: must be ≥ 1).
    #[must_use]
    pub fn with_servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Enables the epoch-reuse cache with the given knobs; each job gets
    /// its own cache unless [`ServiceConfig::with_shared_epoch_cache`]
    /// also turns on cross-job sharing.
    #[must_use]
    pub fn with_epoch_cache(mut self, config: EpochCacheConfig) -> Self {
        self.epoch_cache = Some(config);
        self
    }

    /// Shares one epoch cache across the whole stream (validated at run
    /// time: requires [`ServiceConfig::with_epoch_cache`]). Identity
    /// keying means only replayed jobs — crash/resubmit reruns or
    /// repeated identical submissions — resume each other's prefixes;
    /// see `docs/reuse.md` §"Cross-job sharing".
    ///
    /// ```
    /// use pipetune::EpochCacheConfig;
    /// use pipetune_service::ServiceConfig;
    ///
    /// let shared = ServiceConfig::default()
    ///     .with_epoch_cache(EpochCacheConfig::default())
    ///     .with_shared_epoch_cache(true);
    /// assert!(shared.validate().is_ok());
    ///
    /// // Sharing without a cache to share is a configuration error:
    /// let orphan = ServiceConfig::default().with_shared_epoch_cache(true);
    /// assert!(orphan.validate().is_err());
    /// ```
    #[must_use]
    pub fn with_shared_epoch_cache(mut self, share: bool) -> Self {
        self.share_epoch_cache = share;
        self
    }

    /// Sets the per-job deadline (validated at run time: must be finite
    /// and positive).
    #[must_use]
    pub fn with_deadline(mut self, deadline_secs: f64) -> Self {
        self.deadline_secs = Some(deadline_secs);
        self
    }

    /// Replaces the service-level fault schedule.
    #[must_use]
    pub fn with_service_faults(mut self, faults: ServiceFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Checks the configuration, returning a typed error instead of
    /// panicking (or silently clamping) on degenerate values.
    ///
    /// # Errors
    ///
    /// [`PipeTuneError::InvalidConfig`] for zero servers, a non-finite or
    /// non-positive deadline, out-of-range fault probabilities, a
    /// degenerate churn interval or node size, or an unusable
    /// resubmission policy.
    pub fn validate(&self) -> Result<(), PipeTuneError> {
        let bad = |reason: String| Err(PipeTuneError::InvalidConfig { reason });
        if self.servers == 0 {
            return bad("service servers must be at least 1".into());
        }
        if let Some(d) = self.deadline_secs {
            if !d.is_finite() || d <= 0.0 {
                return bad(format!("service deadline must be finite and positive, got {d}"));
            }
        }
        if let Some(cache) = &self.epoch_cache {
            cache.validate()?;
        } else if self.share_epoch_cache {
            return bad("share_epoch_cache requires an epoch cache (with_epoch_cache)".into());
        }
        let f = &self.faults;
        for (name, p) in [
            ("node_leave_prob", f.node_leave_prob),
            ("node_join_prob", f.node_join_prob),
            ("crash_prob", f.crash_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return bad(format!("service fault {name} must lie in [0, 1], got {p}"));
            }
        }
        if f.has_churn() {
            if !f.churn_interval_secs.is_finite() || f.churn_interval_secs <= 0.0 {
                return bad(format!(
                    "churn interval must be finite and positive, got {}",
                    f.churn_interval_secs
                ));
            }
            if f.node_slots == 0 {
                return bad("a churned node must carry at least one slot".into());
            }
            if f.min_slots == 0 {
                return bad("the churn pool floor must be at least one slot".into());
            }
        }
        if f.crash_prob > 0.0 {
            if f.resubmit.max_attempts == 0 {
                return bad("job crash resubmission needs at least one attempt".into());
            }
            if !f.resubmit.base_backoff_secs.is_finite() || f.resubmit.base_backoff_secs < 0.0 {
                return bad(format!(
                    "resubmission backoff must be finite and non-negative, got {}",
                    f.resubmit.base_backoff_secs
                ));
            }
            if !f.resubmit.backoff_factor.is_finite() {
                return bad("resubmission backoff factor must be finite".into());
            }
            let (lo, hi) = f.crash_fraction;
            if !lo.is_finite() || !hi.is_finite() {
                return bad("crash fraction bounds must be finite".into());
            }
        }
        Ok(())
    }
}

/// Slot-pool occupancy at one scheduling event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotSample {
    /// Event instant, service clock seconds.
    pub at_secs: f64,
    /// Unfinished admitted jobs (queued, in service or awaiting
    /// resubmission).
    pub active_jobs: usize,
    /// Jobs holding capacity at this instant.
    pub in_service_jobs: usize,
    /// Slots leased from the pool — never exceeds the pool capacity
    /// (asserted at every sample by the property suite).
    pub slots_in_use: usize,
    /// Pool capacity at this instant (moves under node churn; equals
    /// `ServiceOutcome::slot_capacity` on churn-free runs).
    pub capacity: usize,
}

/// Everything one service run produces.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Scheduling discipline the run used.
    pub policy: SchedulingPolicy,
    /// Effective server count after capping to the initial slot capacity.
    pub servers: usize,
    /// The shared pool's initial parallel trial slots
    /// (`env.parallel_slots`); churn moves the live capacity around this.
    pub slot_capacity: usize,
    /// Slots each job admitted at the initial capacity was given (jobs
    /// admitted after churn see the capacity current at their arrival;
    /// per-job values are in [`JobRecord::slots`]).
    pub slots_per_job: usize,
    /// Per-job records, in submission order (one per submission — every
    /// submission resolves to exactly one typed [`JobOutcome`]).
    pub jobs: Vec<JobRecord>,
    /// When the service went idle: the last completion, or the last
    /// shed/abandon under faults, service clock seconds (work
    /// conservation makes this policy-invariant for clean streams).
    /// Under churn the final churn tick observed while work was still
    /// live can round this up to the tick grid.
    pub makespan_secs: f64,
    /// Mean response time over *completed* jobs (0 when none completed).
    pub mean_response_secs: f64,
    /// Slot-pool occupancy after every scheduling event.
    pub timeline: Vec<SlotSample>,
    /// All jobs' trial-level fault reports merged in submission order —
    /// exactly the merge of the per-job reports, untouched by
    /// service-level injection.
    pub fault_report: FaultReport,
    /// Service-level fault accounting (churn, job crashes, shedding).
    /// Clean when the plan is empty and no deadline fired.
    pub service_fault_report: ServiceFaultReport,
}

/// The multi-job tuning service. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct TuningService {
    config: ServiceConfig,
}

/// The master seed an admitted job's environment is re-seeded with:
/// derived from the service environment's seed and the submission index
/// only, so a job's tuning outcome is independent of scheduling policy,
/// arrival times and its neighbours. Public so tests can reconstruct a
/// job's dedicated-cluster run and compare byte for byte.
pub fn job_seed(env: &ExperimentEnv, job: usize) -> u64 {
    env.subseed(0x0B10_0000 + job as u64)
}

/// A crashed job waiting out its resubmission backoff.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Resubmission instant, service clock seconds.
    at_secs: f64,
    /// Job id.
    job: usize,
    /// 0-based index of the attempt the resubmission will start.
    attempt: u32,
    /// Checkpointed progress the attempt resumes from, service-seconds.
    resume_secs: f64,
}

/// All mutable state of one service run, so event handlers stay methods
/// rather than 12-argument functions.
struct Driver {
    policy: SchedulingPolicy,
    servers_cfg: usize,
    faults: ServiceFaultPlan,
    deadline_secs: Option<f64>,
    telemetry: TelemetryHandle,
    service_span: SpanId,
    engine: PolicyEngine,
    pool: SlotPool,
    /// Outstanding leases: desired-map key → (lease id, slots covered).
    leases: BTreeMap<usize, (u64, usize)>,
    /// Live pool capacity (moves under churn).
    capacity: usize,
    /// Nodes currently away (bounds joins).
    nodes_away: usize,
    records: Vec<Option<JobRecord>>,
    spans: Vec<SpanId>,
    timeline: Vec<SlotSample>,
    service_report: ServiceFaultReport,
    /// Crashed jobs awaiting resubmission.
    pending: Vec<Pending>,
    /// Per-job absolute deadline, cleared at terminal states.
    deadline_at: Vec<Option<f64>>,
    /// Earliest start observed across a job's attempts.
    first_start: Vec<Option<f64>>,
    /// Service attempts started per job.
    attempts: Vec<u32>,
    /// Checkpointed progress before the current attempt, per job.
    done_before: Vec<f64>,
    /// Checkpoint marks of each admitted job's run (empty when crashes
    /// are disabled).
    marks: Vec<Vec<f64>>,
    /// Full service demand per admitted job.
    service_total: Vec<f64>,
}

impl Driver {
    /// Server count effective at the live capacity.
    fn eff_servers(&self) -> usize {
        self.servers_cfg.min(self.capacity).max(1)
    }

    /// Slots a partition gets at the live capacity — floored at one, so a
    /// single-slot pool still serves (the 1-slot regression case).
    fn slice(&self) -> usize {
        (self.capacity / self.eff_servers()).max(1)
    }

    /// Reconciles the slot pool with the engine's in-service set after a
    /// scheduling event at `at_secs`, then samples occupancy. Stale or
    /// resized leases release before the pool is resized and new leases
    /// are granted, so the pool can never oversubscribe even transiently.
    /// Returns how many lease operations were needed (0 ⇒ the layout was
    /// already current).
    fn sync(&mut self, at_secs: f64) -> Result<usize, PipeTuneError> {
        let (served, _) = self.engine.in_service();
        let slice = self.slice();
        let desired: BTreeMap<usize, usize> = match self.policy {
            SchedulingPolicy::ProcessorSharing if !served.is_empty() => {
                [(ENSEMBLE, self.capacity)].into()
            }
            SchedulingPolicy::ProcessorSharing => BTreeMap::new(),
            _ => served.iter().map(|&j| (j, slice)).collect(),
        };
        let mut ops = 0usize;
        let stale: Vec<usize> = self
            .leases
            .iter()
            .filter(|(key, (_, slots))| desired.get(key) != Some(slots))
            .map(|(key, _)| *key)
            .collect();
        for key in stale {
            let (lease, _) = self.leases.remove(&key).expect("stale key is outstanding");
            self.pool.release(lease).map_err(slot_bug)?;
            ops += 1;
        }
        if self.pool.capacity() != self.capacity {
            self.pool.resize(self.capacity).map_err(slot_bug)?;
        }
        for (&key, &slots) in &desired {
            if let std::collections::btree_map::Entry::Vacant(e) = self.leases.entry(key) {
                e.insert((self.pool.lease(slots).map_err(slot_bug)?, slots));
                ops += 1;
            }
        }
        self.timeline.push(SlotSample {
            at_secs,
            active_jobs: self.engine.active() + self.pending.len(),
            in_service_jobs: served.len(),
            slots_in_use: self.pool.in_use(),
            capacity: self.pool.capacity(),
        });
        self.telemetry.observe(observe::SLOTS_IN_USE, COUNT_BUCKETS, self.pool.in_use() as f64);
        Ok(ops)
    }

    /// Fills in a completed job's record and closes its span.
    fn settle(&mut self, c: &Completion) {
        let rec = self.records[c.job].as_mut().expect("completed job has a record");
        let start = match self.first_start[c.job] {
            Some(s) => s.min(c.start_secs),
            None => c.start_secs,
        };
        rec.start_secs = start;
        rec.completion_secs = c.at_secs;
        rec.response_secs = c.at_secs - rec.arrival_secs;
        rec.queue_secs = start - rec.arrival_secs;
        rec.status = JobOutcome::Completed;
        rec.attempts = self.attempts[c.job];
        self.deadline_at[c.job] = None;
        self.telemetry.counter_add(observe::JOBS_COMPLETED, 1);
        self.telemetry.observe(observe::RESPONSE_SECS, DURATION_BUCKETS_SECS, rec.response_secs);
        self.telemetry.observe(observe::QUEUE_SECS, DURATION_BUCKETS_SECS, rec.queue_secs);
        self.telemetry.close_span(self.spans[c.job], c.at_secs);
    }

    /// Handles a crash trip: rolls the job back to its last checkpoint
    /// mark and schedules a resubmission, or abandons it when the budget
    /// is spent.
    fn crash(&mut self, t: &Trip) {
        let job = t.job;
        let removed = self.engine.remove(job).expect("tripped job is active");
        self.note_start(job, removed.started);
        let progress = self.done_before[job] + t.attained_secs;
        let resume =
            self.marks[job].iter().copied().filter(|&m| m <= progress).fold(0.0, f64::max);
        let lost = progress - resume;
        self.service_report.job_crashes += 1;
        self.service_report.lost_service_secs += lost;
        self.telemetry.counter_add(observe::JOB_CRASHES, 1);
        self.telemetry.observe(observe::LOST_SERVICE_SECS, DURATION_BUCKETS_SECS, lost);
        let attempts = self.attempts[job];
        let rec = self.records[job].as_mut().expect("crashed job has a record");
        rec.lost_service_secs += lost;
        if attempts >= self.faults.resubmit.max_attempts.max(1) {
            rec.status = JobOutcome::Abandoned;
            rec.attempts = attempts;
            rec.drained_secs = t.at_secs;
            if let Some(s) = self.first_start[job] {
                rec.start_secs = s;
                rec.queue_secs = s - rec.arrival_secs;
            }
            self.deadline_at[job] = None;
            self.service_report.jobs_abandoned += 1;
            self.telemetry.counter_add(observe::JOBS_ABANDONED, 1);
            self.telemetry.event(
                self.spans[job],
                EventKind::Fault,
                t.at_secs,
                vec![
                    ("kind", "job_crash".into()),
                    ("attempt", attempts.into()),
                    ("lost_secs", lost.into()),
                    ("abandoned", true.into()),
                ],
            );
            self.telemetry.close_span(self.spans[job], t.at_secs);
        } else {
            let backoff = self.faults.resubmit.backoff_secs(attempts - 1);
            rec.backoff_secs += backoff;
            self.service_report.backoff_secs += backoff;
            self.telemetry.event(
                self.spans[job],
                EventKind::Fault,
                t.at_secs,
                vec![
                    ("kind", "job_crash".into()),
                    ("attempt", attempts.into()),
                    ("lost_secs", lost.into()),
                    ("backoff_secs", backoff.into()),
                ],
            );
            self.pending.push(Pending {
                at_secs: t.at_secs + backoff,
                job,
                attempt: attempts,
                resume_secs: resume,
            });
        }
    }

    /// Re-inserts a crashed job from its checkpoint.
    fn resubmit(&mut self, p: &Pending) {
        self.attempts[p.job] = p.attempt + 1;
        self.done_before[p.job] = p.resume_secs;
        let remaining = (self.service_total[p.job] - p.resume_secs).max(0.0);
        self.engine.insert(p.job, remaining);
        if let Some(frac) = self.faults.crash_at(p.job as u64, p.attempt) {
            self.engine.set_trip(p.job, frac * remaining);
        }
        self.service_report.resubmissions += 1;
        self.telemetry.counter_add(observe::RESUBMISSIONS, 1);
        self.telemetry.event(
            self.spans[p.job],
            EventKind::Retry,
            p.at_secs,
            vec![
                ("kind", "job_resubmit".into()),
                ("attempt", (p.attempt + 1).into()),
                ("resume_secs", p.resume_secs.into()),
            ],
        );
    }

    /// Sheds a job that exceeded its deadline, wherever it currently sits
    /// (in service, queued, or waiting out a resubmission backoff).
    fn shed(&mut self, job: usize, at_secs: f64) {
        if let Some(removed) = self.engine.remove(job) {
            self.note_start(job, removed.started);
        } else {
            self.pending.retain(|p| p.job != job);
        }
        let deadline = self.deadline_secs.unwrap_or(f64::NAN);
        let rec = self.records[job].as_mut().expect("shed job has a record");
        rec.status = JobOutcome::Shed;
        rec.attempts = self.attempts[job];
        rec.drained_secs = at_secs;
        if let Some(s) = self.first_start[job] {
            rec.start_secs = s;
            rec.queue_secs = s - rec.arrival_secs;
        }
        self.deadline_at[job] = None;
        self.service_report.jobs_shed += 1;
        self.telemetry.counter_add(observe::JOBS_SHED, 1);
        self.telemetry.event(
            self.spans[job],
            EventKind::Shed,
            at_secs,
            vec![("deadline_secs", deadline.into())],
        );
        self.telemetry.close_span(self.spans[job], at_secs);
    }

    /// Applies churn tick `tick` at `at_secs`: at most one node leaves or
    /// rejoins, constrained by the pool floor and by how many nodes are
    /// away. Draws that cannot apply are skipped without trace.
    fn churn(&mut self, tick: u64, at_secs: f64) -> Result<(), PipeTuneError> {
        let node_slots = self.faults.node_slots;
        match self.faults.churn_at(tick) {
            Some(ChurnKind::Leave)
                if self.capacity >= node_slots + self.faults.min_slots.max(1) =>
            {
                self.capacity -= node_slots;
                self.nodes_away += 1;
                self.service_report.node_leaves += 1;
                self.telemetry.counter_add(observe::NODE_LEAVES, 1);
                self.apply_churn(ChurnKind::Leave, at_secs)
            }
            Some(ChurnKind::Join) if self.nodes_away > 0 => {
                self.capacity += node_slots;
                self.nodes_away -= 1;
                self.service_report.node_joins += 1;
                self.telemetry.counter_add(observe::NODE_JOINS, 1);
                self.apply_churn(ChurnKind::Join, at_secs)
            }
            _ => Ok(()),
        }
    }

    /// Propagates an applied churn event: rescales the engine's server
    /// count, records the trace event, and elastically repartitions the
    /// lease layout.
    fn apply_churn(&mut self, kind: ChurnKind, at_secs: f64) -> Result<(), PipeTuneError> {
        self.engine.set_servers(self.eff_servers());
        self.telemetry.event(
            self.service_span,
            EventKind::Churn,
            at_secs,
            vec![
                ("churn", kind.name().into()),
                ("node_slots", self.faults.node_slots.into()),
                ("capacity_slots", self.capacity.into()),
            ],
        );
        self.telemetry.gauge_set(observe::CAPACITY_SLOTS, self.capacity as f64);
        if self.sync(at_secs)? > 0 {
            self.service_report.repartitions += 1;
        }
        Ok(())
    }

    /// Folds an attempt's start instant into the job's earliest start.
    fn note_start(&mut self, job: usize, started: Option<f64>) {
        if let Some(s) = started {
            self.first_start[job] = Some(self.first_start[job].map_or(s, |f| f.min(s)));
        }
    }
}

impl TuningService {
    /// A service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        TuningService { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Runs the submission stream to completion. Jobs are processed in
    /// `(arrival, index)` order; the returned records are in submission
    /// order, one per submission.
    ///
    /// # Errors
    ///
    /// [`PipeTuneError::InvalidConfig`] for an invalid configuration
    /// (see [`ServiceConfig::validate`]) or non-finite/negative arrival
    /// times; substrate errors propagate from the jobs' tuning runs.
    pub fn run(
        &self,
        env: &ExperimentEnv,
        submissions: &[JobSubmission],
        options: &TunerOptions,
    ) -> Result<ServiceOutcome, PipeTuneError> {
        self.config.validate()?;
        for (i, s) in submissions.iter().enumerate() {
            if !s.arrival_secs.is_finite() || s.arrival_secs < 0.0 {
                return Err(PipeTuneError::InvalidConfig {
                    reason: format!("submission {i} has an invalid arrival time"),
                });
            }
        }
        let capacity = env.parallel_slots.max(1);
        let servers = self.config.servers.min(capacity);
        let slots_per_job = (capacity / servers).max(1);
        let policy = self.config.policy;
        let faults = self.config.faults;
        let deadline = self.config.deadline_secs;

        let telemetry = env.telemetry.clone();
        let service_span = telemetry.open_span(
            SpanId::NONE,
            SpanKind::Service,
            format!("service {}", policy.name()),
            0.0,
            vec![
                ("policy", policy.name().into()),
                ("servers", servers.into()),
                ("slot_capacity", capacity.into()),
                ("slots_per_job", slots_per_job.into()),
            ],
        );

        let mut order: Vec<usize> = (0..submissions.len()).collect();
        order.sort_by(|&a, &b| {
            submissions[a]
                .arrival_secs
                .partial_cmp(&submissions[b].arrival_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        let n = submissions.len();
        let mut d = Driver {
            policy,
            servers_cfg: self.config.servers,
            faults,
            deadline_secs: deadline,
            telemetry: telemetry.clone(),
            service_span,
            engine: PolicyEngine::new(policy, servers),
            pool: SlotPool::new(capacity),
            leases: BTreeMap::new(),
            capacity,
            nodes_away: 0,
            records: (0..n).map(|_| None).collect(),
            spans: vec![SpanId::NONE; n],
            timeline: Vec::new(),
            service_report: ServiceFaultReport::default(),
            pending: Vec::new(),
            deadline_at: vec![None; n],
            first_start: vec![None; n],
            attempts: vec![0; n],
            done_before: vec![0.0; n],
            marks: vec![Vec::new(); n],
            service_total: vec![f64::NAN; n],
        };
        let mut fault_report = FaultReport::default();
        // The shared tuner carries its ground truth from job to job (cold
        // start: the stream itself builds it, as in §7.4).
        let mut shared_tuner = PipeTune::new(*options);
        // With sharing on, one cache handle serves the whole stream (jobs
        // run sequentially at admission, so cross-job flush order is the
        // admission order — deterministic). Without sharing each job gets
        // a fresh cache below.
        let shared_cache = match self.config.epoch_cache {
            Some(cfg) if self.config.share_epoch_cache => Some(EpochCacheHandle::with_config(cfg)),
            _ => None,
        };
        let mut arr_pos = 0usize;
        let mut next_tick: u64 = 1;

        loop {
            // Online monitoring: stream everything recorded since the last
            // dispatch step through the detectors. A no-op unless both the
            // telemetry and monitor handles are live, and scan granularity
            // never changes the timeline (the engine is cursor-based).
            env.monitor.scan(&telemetry);
            let t_arr = order
                .get(arr_pos)
                .map_or(f64::INFINITY, |&j| submissions[j].arrival_secs);
            let t_resub =
                d.pending.iter().map(|p| p.at_secs).fold(f64::INFINITY, f64::min);
            let t_dead = d.deadline_at.iter().flatten().copied().fold(f64::INFINITY, f64::min);
            // Churn ticks run while there is work anywhere in the system.
            // Crucially, ticks up to the last arrival fire under *every*
            // policy (arrivals are still pending), so the capacity a job
            // sees at admission — and hence its tuning outcome — is
            // policy-invariant.
            let work_pending =
                arr_pos < order.len() || !d.pending.is_empty() || d.engine.active() > 0;
            let t_churn = if faults.has_churn() && work_pending {
                next_tick as f64 * faults.churn_interval_secs
            } else {
                f64::INFINITY
            };
            let t_ext = t_arr.min(t_resub).min(t_dead).min(t_churn);

            // Engine events (completions and crash trips) strictly before
            // the external event. Any event invalidates the timestamps
            // computed above (a completion can clear the very deadline
            // `t_dead` came from; a trip stops the advance short), so the
            // loop recomputes its sources before dispatching externally.
            let events = d.engine.advance_events_to(t_ext);
            if !events.is_empty() {
                for ev in events {
                    match ev {
                        EngineEvent::Completed(c) => {
                            d.settle(&c);
                            d.sync(c.at_secs)?;
                        }
                        EngineEvent::Tripped(t) => {
                            d.crash(&t);
                            d.sync(t.at_secs)?;
                        }
                    }
                }
                continue;
            }
            if t_ext == f64::INFINITY {
                break;
            }
            // Sources due at the same instant dispatch one at a time in
            // the fixed order churn ≻ deadline ≻ resubmission ≻ arrival.
            if t_churn == t_ext {
                d.churn(next_tick, t_ext)?;
                next_tick += 1;
                continue;
            }
            if t_dead == t_ext {
                let job = d
                    .deadline_at
                    .iter()
                    .position(|&dl| dl == Some(t_ext))
                    .expect("a deadline is due");
                d.shed(job, t_ext);
                d.sync(t_ext)?;
                continue;
            }
            if t_resub == t_ext {
                let best = (0..d.pending.len())
                    .min_by(|&a, &b| {
                        let (pa, pb) = (&d.pending[a], &d.pending[b]);
                        pa.at_secs
                            .partial_cmp(&pb.at_secs)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(pa.job.cmp(&pb.job))
                    })
                    .expect("a resubmission is due");
                let p = d.pending.remove(best);
                d.resubmit(&p);
                d.sync(p.at_secs)?;
                continue;
            }
            // An arrival.
            let job = order[arr_pos];
            arr_pos += 1;
            let sub = &submissions[job];
            telemetry.counter_add(observe::JOBS_SUBMITTED, 1);
            let backlog = d.engine.active() + d.pending.len();
            let admitted = self.config.admission.admits(backlog);
            // `queue_depth` is the backlog ahead of this job at its arrival
            // instant — the signal the monitor's queue-growth detector
            // watches (see `docs/monitoring.md`).
            let mut attrs = vec![
                ("job", job.into()),
                ("workload", sub.spec.name().into()),
                ("admitted", admitted.into()),
                ("queue_depth", backlog.into()),
            ];
            if let Some(dl) = deadline {
                attrs.push(("deadline_secs", dl.into()));
            }
            let span = telemetry.open_span(
                service_span,
                SpanKind::Job,
                format!("job {job}: {}", sub.spec.name()),
                sub.arrival_secs,
                attrs,
            );
            d.spans[job] = span;
            if !admitted {
                telemetry.counter_add(observe::ADMISSION_REJECTED, 1);
                telemetry.close_span(span, sub.arrival_secs);
                d.records[job] =
                    Some(JobRecord::rejected(job, sub.spec.name(), sub.arrival_secs));
                continue;
            }
            telemetry.counter_add(observe::JOBS_ADMITTED, 1);
            let slots = d.slice();
            let mut job_env = env
                .clone()
                .with_seed(job_seed(env, job))
                .with_parallel_slots(slots)
                .with_telemetry(telemetry.scoped(span));
            if let Some(handle) = &shared_cache {
                job_env = job_env.with_epoch_cache(handle.clone());
            } else if let Some(cfg) = self.config.epoch_cache {
                job_env = job_env.with_epoch_cache(EpochCacheHandle::with_config(cfg));
            }
            let outcome = if self.config.share_ground_truth {
                shared_tuner.run(&job_env, &sub.spec)?
            } else {
                PipeTune::new(*options).run(&job_env, &sub.spec)?
            };
            fault_report.merge(&outcome.fault_report);
            let service_secs = outcome.tuning_secs;
            d.service_total[job] = service_secs;
            if faults.crash_prob > 0.0 {
                d.marks[job] = outcome.checkpoint_marks();
            }
            d.records[job] = Some(JobRecord {
                job,
                workload: sub.spec.name(),
                arrival_secs: sub.arrival_secs,
                admitted: true,
                status: JobOutcome::Completed,
                attempts: 1,
                slots,
                service_secs,
                start_secs: f64::NAN,
                completion_secs: f64::NAN,
                response_secs: f64::NAN,
                queue_secs: f64::NAN,
                drained_secs: f64::NAN,
                lost_service_secs: 0.0,
                backoff_secs: 0.0,
                outcome: Some(outcome),
            });
            d.attempts[job] = 1;
            d.deadline_at[job] = deadline.map(|dl| sub.arrival_secs + dl);
            d.engine.insert(job, service_secs);
            if let Some(frac) = faults.crash_at(job as u64, 0) {
                d.engine.set_trip(job, frac * service_secs.max(0.0));
            }
            d.sync(sub.arrival_secs)?;
        }

        let makespan_secs = d.engine.now();
        telemetry.gauge_set(observe::MAKESPAN_SECS, makespan_secs);
        telemetry.close_span(service_span, makespan_secs);

        let jobs: Vec<JobRecord> =
            d.records.into_iter().map(|r| r.expect("every submission got a record")).collect();
        // The no-lost-jobs invariant, enforced at the source: a record
        // still claiming `Completed` without a completion instant means
        // the event loop dropped a job.
        for rec in &jobs {
            assert!(
                rec.status != JobOutcome::Completed || !rec.admitted
                    || rec.completion_secs.is_finite(),
                "job {} lost by the service event loop",
                rec.job
            );
        }
        let completed: Vec<&JobRecord> =
            jobs.iter().filter(|r| r.admitted && r.status == JobOutcome::Completed).collect();
        let mean_response_secs = if completed.is_empty() {
            0.0
        } else {
            completed.iter().map(|r| r.response_secs).sum::<f64>() / completed.len() as f64
        };
        Ok(ServiceOutcome {
            policy,
            servers,
            slot_capacity: capacity,
            slots_per_job,
            jobs,
            makespan_secs,
            mean_response_secs,
            timeline: d.timeline,
            fault_report,
            service_fault_report: d.service_report,
        })
    }
}

/// Slot-pool violations are scheduler bugs; surface them as typed errors
/// rather than corrupting the accounting.
fn slot_bug(e: SlotPoolError) -> PipeTuneError {
    PipeTuneError::InvalidConfig { reason: format!("service slot accounting violated: {e}") }
}
