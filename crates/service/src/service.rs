//! The tuning service driver: arrivals in, scheduled PipeTune runs out.
//!
//! [`TuningService::run`] processes a submission stream in arrival order.
//! Each admitted job is executed as a *real* tuning run (the full
//! multi-threaded trial executor) against a derived environment — its own
//! sub-seed, its slice of the cluster's parallel-slot pool, and a
//! telemetry handle scoped under its `job` span — and the run's wall-clock
//! duration becomes the job's service demand in the exact fluid-model
//! [`PolicyEngine`]. The engine then decides *when* on the shared cluster
//! that demand is served, per the configured [`SchedulingPolicy`].
//!
//! Determinism: the driver is single-threaded and processes submissions in
//! `(arrival, index)` order; per-job seeds derive only from the master
//! seed and the submission index. Every job outcome, the fault report, the
//! telemetry trace and the final [`ServiceOutcome`] are therefore
//! byte-identical for any `ExperimentEnv::workers` count — the workers
//! only parallelise *inside* a job's run, which already honours the
//! repo-wide determinism contract.

use std::collections::BTreeMap;

use pipetune::{ExperimentEnv, PipeTune, PipeTuneError, TunerOptions};
use pipetune_cluster::{FaultReport, SlotPool, SlotPoolError};
use pipetune_telemetry::{
    SpanId, SpanKind, TelemetryHandle, COUNT_BUCKETS, DURATION_BUCKETS_SECS,
};

use crate::engine::{Completion, PolicyEngine};
use crate::job::{JobRecord, JobSubmission};
use crate::observe;
use crate::policy::{AdmissionControl, SchedulingPolicy};

/// Key under which processor sharing's single ensemble lease is tracked
/// (PS co-locates every active job on the whole pool, so slot accounting
/// carries one capacity-wide lease rather than per-job slices).
const ENSEMBLE: usize = usize::MAX;

/// How the service schedules and admits jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Cluster-sharing discipline.
    pub policy: SchedulingPolicy,
    /// Admission control applied to each arrival.
    pub admission: AdmissionControl,
    /// Concurrent dedicated partitions (FIFO / shortest-remaining) or the
    /// processor-sharing capacity multiplier. Clamped to
    /// `[1, env.parallel_slots]` at run time; each partition gets
    /// `env.parallel_slots / servers` trial slots.
    pub servers: usize,
    /// Reuse one PipeTune ground truth across the whole stream (the §7.4
    /// amortisation: later tenants skip probing for families seen
    /// earlier). When false every job tunes cold.
    pub share_ground_truth: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            policy: SchedulingPolicy::Fifo,
            admission: AdmissionControl::unbounded(),
            servers: 1,
            share_ground_truth: true,
        }
    }
}

impl ServiceConfig {
    /// Replaces the scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the admission controller.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionControl) -> Self {
        self.admission = admission;
        self
    }

    /// Replaces the server count (clamped at run time).
    #[must_use]
    pub fn with_servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }
}

/// Slot-pool occupancy at one scheduling event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotSample {
    /// Event instant, service clock seconds.
    pub at_secs: f64,
    /// Unfinished admitted jobs (queued + in service).
    pub active_jobs: usize,
    /// Jobs holding capacity at this instant.
    pub in_service_jobs: usize,
    /// Slots leased from the pool — never exceeds the pool capacity
    /// (asserted at every sample by the property suite).
    pub slots_in_use: usize,
}

/// Everything one service run produces.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Scheduling discipline the run used.
    pub policy: SchedulingPolicy,
    /// Effective server count after clamping to the slot capacity.
    pub servers: usize,
    /// The shared pool's total parallel trial slots
    /// (`env.parallel_slots`).
    pub slot_capacity: usize,
    /// Slots each admitted job's tuning run was given.
    pub slots_per_job: usize,
    /// Per-job records, in submission order (one per submission, rejected
    /// jobs included).
    pub jobs: Vec<JobRecord>,
    /// When the last job completed, service clock seconds (work
    /// conservation makes this policy-invariant for a fixed stream).
    pub makespan_secs: f64,
    /// Mean response time over admitted jobs (0 when none were admitted).
    pub mean_response_secs: f64,
    /// Slot-pool occupancy after every arrival and completion.
    pub timeline: Vec<SlotSample>,
    /// All jobs' fault reports merged in submission order.
    pub fault_report: FaultReport,
}

/// The multi-job tuning service. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct TuningService {
    config: ServiceConfig,
}

/// The master seed an admitted job's environment is re-seeded with:
/// derived from the service environment's seed and the submission index
/// only, so a job's tuning outcome is independent of scheduling policy,
/// arrival times and its neighbours. Public so tests can reconstruct a
/// job's dedicated-cluster run and compare byte for byte.
pub fn job_seed(env: &ExperimentEnv, job: usize) -> u64 {
    env.subseed(0x0B10_0000 + job as u64)
}

impl TuningService {
    /// A service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        TuningService { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Runs the submission stream to completion. Jobs are processed in
    /// `(arrival, index)` order; the returned records are in submission
    /// order.
    ///
    /// # Errors
    ///
    /// [`PipeTuneError::InvalidConfig`] for non-finite or negative
    /// arrival times; substrate errors propagate from the jobs' tuning
    /// runs.
    pub fn run(
        &self,
        env: &ExperimentEnv,
        submissions: &[JobSubmission],
        options: &TunerOptions,
    ) -> Result<ServiceOutcome, PipeTuneError> {
        for (i, s) in submissions.iter().enumerate() {
            if !s.arrival_secs.is_finite() || s.arrival_secs < 0.0 {
                return Err(PipeTuneError::InvalidConfig {
                    reason: format!("submission {i} has an invalid arrival time"),
                });
            }
        }
        let capacity = env.parallel_slots.max(1);
        let servers = self.config.servers.clamp(1, capacity);
        let slots_per_job = (capacity / servers).max(1);
        let policy = self.config.policy;

        let telemetry = env.telemetry.clone();
        let service_span = telemetry.open_span(
            SpanId::NONE,
            SpanKind::Service,
            format!("service {}", policy.name()),
            0.0,
            vec![
                ("policy", policy.name().into()),
                ("servers", servers.into()),
                ("slot_capacity", capacity.into()),
                ("slots_per_job", slots_per_job.into()),
            ],
        );

        let mut order: Vec<usize> = (0..submissions.len()).collect();
        order.sort_by(|&a, &b| {
            submissions[a]
                .arrival_secs
                .partial_cmp(&submissions[b].arrival_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        let mut engine = PolicyEngine::new(policy, servers);
        let mut pool = SlotPool::new(capacity);
        let mut leases: BTreeMap<usize, u64> = BTreeMap::new();
        let mut records: Vec<Option<JobRecord>> =
            (0..submissions.len()).map(|_| None).collect();
        let mut spans: Vec<SpanId> = vec![SpanId::NONE; submissions.len()];
        let mut timeline = Vec::new();
        let mut fault_report = FaultReport::default();
        // The shared tuner carries its ground truth from job to job (cold
        // start: the stream itself builds it, as in §7.4).
        let mut shared_tuner = PipeTune::new(*options);

        for &job in &order {
            let sub = &submissions[job];
            for c in engine.advance_to(sub.arrival_secs) {
                settle(&c, &mut records, &spans, &telemetry);
                self.sync_slots(
                    slots_per_job,
                    &mut pool,
                    &mut leases,
                    &engine,
                    c.at_secs,
                    &mut timeline,
                    &telemetry,
                )?;
            }
            telemetry.counter_add(observe::JOBS_SUBMITTED, 1);
            let admitted = self.config.admission.admits(engine.active());
            let span = telemetry.open_span(
                service_span,
                SpanKind::Job,
                format!("job {job}: {}", sub.spec.name()),
                sub.arrival_secs,
                vec![
                    ("job", job.into()),
                    ("workload", sub.spec.name().into()),
                    ("admitted", admitted.into()),
                ],
            );
            spans[job] = span;
            if !admitted {
                telemetry.counter_add(observe::JOBS_REJECTED, 1);
                telemetry.close_span(span, sub.arrival_secs);
                records[job] = Some(JobRecord::rejected(job, sub.spec.name(), sub.arrival_secs));
                continue;
            }
            telemetry.counter_add(observe::JOBS_ADMITTED, 1);
            let job_env = env
                .clone()
                .with_seed(job_seed(env, job))
                .with_parallel_slots(slots_per_job)
                .with_telemetry(telemetry.scoped(span));
            let outcome = if self.config.share_ground_truth {
                shared_tuner.run(&job_env, &sub.spec)?
            } else {
                PipeTune::new(*options).run(&job_env, &sub.spec)?
            };
            fault_report.merge(&outcome.fault_report);
            let service_secs = outcome.tuning_secs;
            records[job] = Some(JobRecord {
                job,
                workload: sub.spec.name(),
                arrival_secs: sub.arrival_secs,
                admitted: true,
                slots: slots_per_job,
                service_secs,
                start_secs: f64::NAN,
                completion_secs: f64::NAN,
                response_secs: f64::NAN,
                queue_secs: f64::NAN,
                outcome: Some(outcome),
            });
            engine.insert(job, service_secs);
            self.sync_slots(
                slots_per_job,
                &mut pool,
                &mut leases,
                &engine,
                sub.arrival_secs,
                &mut timeline,
                &telemetry,
            )?;
        }
        for c in engine.drain() {
            settle(&c, &mut records, &spans, &telemetry);
            self.sync_slots(
                slots_per_job,
                &mut pool,
                &mut leases,
                &engine,
                c.at_secs,
                &mut timeline,
                &telemetry,
            )?;
        }

        let makespan_secs = engine.now();
        telemetry.gauge_set(observe::MAKESPAN_SECS, makespan_secs);
        telemetry.close_span(service_span, makespan_secs);

        let jobs: Vec<JobRecord> =
            records.into_iter().map(|r| r.expect("every submission got a record")).collect();
        let admitted: Vec<&JobRecord> = jobs.iter().filter(|r| r.admitted).collect();
        let mean_response_secs = if admitted.is_empty() {
            0.0
        } else {
            admitted.iter().map(|r| r.response_secs).sum::<f64>() / admitted.len() as f64
        };
        Ok(ServiceOutcome {
            policy,
            servers,
            slot_capacity: capacity,
            slots_per_job,
            jobs,
            makespan_secs,
            mean_response_secs,
            timeline,
            fault_report,
        })
    }

    /// Reconciles the slot pool with the engine's in-service set after a
    /// scheduling event at `at_secs`, then samples occupancy. Stale
    /// leases release before new ones are granted, so the pool can never
    /// oversubscribe even transiently.
    #[allow(clippy::too_many_arguments)]
    fn sync_slots(
        &self,
        slots_per_job: usize,
        pool: &mut SlotPool,
        leases: &mut BTreeMap<usize, u64>,
        engine: &PolicyEngine,
        at_secs: f64,
        timeline: &mut Vec<SlotSample>,
        telemetry: &TelemetryHandle,
    ) -> Result<(), PipeTuneError> {
        let (served, _) = engine.in_service();
        let desired: BTreeMap<usize, usize> = match self.config.policy {
            SchedulingPolicy::ProcessorSharing if !served.is_empty() => {
                [(ENSEMBLE, pool.capacity())].into()
            }
            SchedulingPolicy::ProcessorSharing => BTreeMap::new(),
            _ => served.iter().map(|&j| (j, slots_per_job)).collect(),
        };
        let stale: Vec<usize> =
            leases.keys().filter(|k| !desired.contains_key(k)).copied().collect();
        for key in stale {
            let lease = leases.remove(&key).expect("stale key is outstanding");
            pool.release(lease).map_err(slot_bug)?;
        }
        for (&key, &slots) in &desired {
            if let std::collections::btree_map::Entry::Vacant(e) = leases.entry(key) {
                e.insert(pool.lease(slots).map_err(slot_bug)?);
            }
        }
        timeline.push(SlotSample {
            at_secs,
            active_jobs: engine.active(),
            in_service_jobs: served.len(),
            slots_in_use: pool.in_use(),
        });
        telemetry.observe(observe::SLOTS_IN_USE, COUNT_BUCKETS, pool.in_use() as f64);
        Ok(())
    }
}

/// Fills in a completed job's record and closes its span.
fn settle(
    c: &Completion,
    records: &mut [Option<JobRecord>],
    spans: &[SpanId],
    telemetry: &TelemetryHandle,
) {
    let rec = records[c.job].as_mut().expect("completed job has a record");
    rec.start_secs = c.start_secs;
    rec.completion_secs = c.at_secs;
    rec.response_secs = c.at_secs - rec.arrival_secs;
    rec.queue_secs = c.start_secs - rec.arrival_secs;
    telemetry.counter_add(observe::JOBS_COMPLETED, 1);
    telemetry.observe(observe::RESPONSE_SECS, DURATION_BUCKETS_SECS, rec.response_secs);
    telemetry.observe(observe::QUEUE_SECS, DURATION_BUCKETS_SECS, rec.queue_secs);
    telemetry.close_span(spans[c.job], c.at_secs);
}

/// Slot-pool violations are scheduler bugs; surface them as typed errors
/// rather than corrupting the accounting.
fn slot_bug(e: SlotPoolError) -> PipeTuneError {
    PipeTuneError::InvalidConfig { reason: format!("service slot accounting violated: {e}") }
}
