//! Canonical metric names the tuning service records (see
//! `docs/multitenancy.md`).
//!
//! Mirrors the per-crate vocabulary convention of
//! [`pipetune::observe`]: every name lives here so exporters, gates and
//! tests agree on spelling. The service records through the same
//! [`pipetune_telemetry::TelemetryHandle`] its jobs' runs do, so one
//! snapshot holds both the queueing picture and the per-run detail.

/// Counter: jobs submitted to the service (admitted or not).
pub const JOBS_SUBMITTED: &str = "service.jobs_submitted";

/// Counter: jobs admission control let into the system.
pub const JOBS_ADMITTED: &str = "service.jobs_admitted";

/// Counter: jobs admission control turned away (each one also resolves
/// to a typed `JobOutcome::Rejected` record).
pub const ADMISSION_REJECTED: &str = "service.admission.rejected";

/// Counter: admitted jobs that ran to completion.
pub const JOBS_COMPLETED: &str = "service.jobs_completed";

/// Counter: jobs shed for exceeding their deadline.
pub const JOBS_SHED: &str = "service.jobs_shed";

/// Counter: jobs abandoned after exhausting the resubmission budget.
pub const JOBS_ABANDONED: &str = "service.jobs_abandoned";

/// Counter: nodes that left the shared slot pool (service-level churn).
pub const NODE_LEAVES: &str = "service.churn.node_leaves";

/// Counter: nodes that rejoined the shared slot pool.
pub const NODE_JOINS: &str = "service.churn.node_joins";

/// Gauge: current pool capacity in slots, updated at every applied churn
/// event.
pub const CAPACITY_SLOTS: &str = "service.churn.capacity_slots";

/// Counter: job-level crashes injected by the service fault plan.
pub const JOB_CRASHES: &str = "service.faults.job_crashes";

/// Counter: crashed jobs resubmitted from their last checkpoint.
pub const RESUBMISSIONS: &str = "service.faults.resubmissions";

/// Histogram of service-seconds lost per job crash (work past the last
/// checkpoint; [`pipetune_telemetry::DURATION_BUCKETS_SECS`]).
pub const LOST_SERVICE_SECS: &str = "service.faults.lost_service_secs";

/// Histogram of per-job queueing delay (start − arrival), seconds
/// ([`pipetune_telemetry::DURATION_BUCKETS_SECS`]).
pub const QUEUE_SECS: &str = "service.queue_secs";

/// Histogram of per-job response time (completion − arrival), seconds
/// ([`pipetune_telemetry::DURATION_BUCKETS_SECS`]).
pub const RESPONSE_SECS: &str = "service.response_secs";

/// Histogram of slot-pool occupancy sampled at every scheduling event
/// ([`pipetune_telemetry::COUNT_BUCKETS`]).
pub const SLOTS_IN_USE: &str = "service.slots_in_use";

/// Gauge: time the last job completed, seconds on the service clock.
pub const MAKESPAN_SECS: &str = "service.makespan_secs";
