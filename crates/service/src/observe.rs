//! Canonical metric names the tuning service records (see
//! `docs/multitenancy.md`).
//!
//! Mirrors the per-crate vocabulary convention of
//! [`pipetune::observe`]: every name lives here, declared through
//! [`pipetune_telemetry::metric_names!`] so exporters, gates and tests
//! agree on spelling and the metric-name audit can check emissions
//! against the generated `ALL_METRIC_NAMES` slice. The service records
//! through the same [`pipetune_telemetry::TelemetryHandle`] its jobs'
//! runs do, so one snapshot holds both the queueing picture and the
//! per-run detail.

pipetune_telemetry::metric_names! {
    /// Counter: jobs submitted to the service (admitted or not).
    pub const JOBS_SUBMITTED = "service.jobs_submitted";

    /// Counter: jobs admission control let into the system.
    pub const JOBS_ADMITTED = "service.jobs_admitted";

    /// Counter: jobs admission control turned away (each one also resolves
    /// to a typed `JobOutcome::Rejected` record).
    pub const ADMISSION_REJECTED = "service.admission.rejected";

    /// Counter: admitted jobs that ran to completion.
    pub const JOBS_COMPLETED = "service.jobs_completed";

    /// Counter: jobs shed for exceeding their deadline.
    pub const JOBS_SHED = "service.jobs_shed";

    /// Counter: jobs abandoned after exhausting the resubmission budget.
    pub const JOBS_ABANDONED = "service.jobs_abandoned";

    /// Counter: nodes that left the shared slot pool (service-level churn).
    pub const NODE_LEAVES = "service.churn.node_leaves";

    /// Counter: nodes that rejoined the shared slot pool.
    pub const NODE_JOINS = "service.churn.node_joins";

    /// Gauge: current pool capacity in slots, updated at every applied churn
    /// event.
    pub const CAPACITY_SLOTS = "service.churn.capacity_slots";

    /// Counter: job-level crashes injected by the service fault plan.
    pub const JOB_CRASHES = "service.faults.job_crashes";

    /// Counter: crashed jobs resubmitted from their last checkpoint.
    pub const RESUBMISSIONS = "service.faults.resubmissions";

    /// Histogram of service-seconds lost per job crash (work past the last
    /// checkpoint; [`pipetune_telemetry::DURATION_BUCKETS_SECS`]).
    pub const LOST_SERVICE_SECS = "service.faults.lost_service_secs";

    /// Histogram of per-job queueing delay (start − arrival), seconds
    /// ([`pipetune_telemetry::DURATION_BUCKETS_SECS`]).
    pub const QUEUE_SECS = "service.queue_secs";

    /// Histogram of per-job response time (completion − arrival), seconds
    /// ([`pipetune_telemetry::DURATION_BUCKETS_SECS`]).
    pub const RESPONSE_SECS = "service.response_secs";

    /// Histogram of slot-pool occupancy sampled at every scheduling event
    /// ([`pipetune_telemetry::COUNT_BUCKETS`]).
    pub const SLOTS_IN_USE = "service.slots_in_use";

    /// Gauge: time the last job completed, seconds on the service clock.
    pub const MAKESPAN_SECS = "service.makespan_secs";
}
