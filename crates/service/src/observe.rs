//! Canonical metric names the tuning service records (see
//! `docs/multitenancy.md`).
//!
//! Mirrors the per-crate vocabulary convention of
//! [`pipetune::observe`]: every name lives here so exporters, gates and
//! tests agree on spelling. The service records through the same
//! [`pipetune_telemetry::TelemetryHandle`] its jobs' runs do, so one
//! snapshot holds both the queueing picture and the per-run detail.

/// Counter: jobs submitted to the service (admitted or not).
pub const JOBS_SUBMITTED: &str = "service.jobs_submitted";

/// Counter: jobs admission control let into the system.
pub const JOBS_ADMITTED: &str = "service.jobs_admitted";

/// Counter: jobs admission control turned away.
pub const JOBS_REJECTED: &str = "service.jobs_rejected";

/// Counter: admitted jobs that ran to completion.
pub const JOBS_COMPLETED: &str = "service.jobs_completed";

/// Histogram of per-job queueing delay (start − arrival), seconds
/// ([`pipetune_telemetry::DURATION_BUCKETS_SECS`]).
pub const QUEUE_SECS: &str = "service.queue_secs";

/// Histogram of per-job response time (completion − arrival), seconds
/// ([`pipetune_telemetry::DURATION_BUCKETS_SECS`]).
pub const RESPONSE_SECS: &str = "service.response_secs";

/// Histogram of slot-pool occupancy sampled at every scheduling event
/// ([`pipetune_telemetry::COUNT_BUCKETS`]).
pub const SLOTS_IN_USE: &str = "service.slots_in_use";

/// Gauge: time the last job completed, seconds on the service clock.
pub const MAKESPAN_SECS: &str = "service.makespan_secs";
