//! Exact fluid-model scheduling engine shared by every policy.
//!
//! The engine tracks the remaining service of each unfinished job and
//! advances simulated time event by event. Its one structural invariant
//! makes it both simple and exact: under every [`SchedulingPolicy`] all
//! jobs *in service* at a given instant run at the same rate (FIFO and
//! shortest-remaining serve a subset at rate 1; processor sharing serves
//! everyone at `servers/active`, capped at 1). The next event is therefore
//! always "the in-service job with the least remaining service finishes",
//! and the drain arithmetic can mirror the analytic models in
//! `pipetune::sharing` operation for operation — which is what lets the
//! cross-check tests demand agreement within 1e-9 seconds rather than some
//! loose simulation tolerance.

use std::collections::BTreeMap;

use crate::policy::SchedulingPolicy;

/// One job finishing, as observed by [`PolicyEngine::advance_to`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Job id (the service uses submission indices).
    pub job: usize,
    /// Completion instant, engine clock seconds.
    pub at_secs: f64,
    /// First instant the job was in service (equals its insertion time for
    /// policies that start work immediately, later for queued FIFO jobs).
    pub start_secs: f64,
}

/// A trip firing: an in-service job reached its attained-service
/// threshold (see [`PolicyEngine::set_trip`]). The service driver uses
/// trips to realise deterministic mid-service job crashes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trip {
    /// Job id.
    pub job: usize,
    /// Instant the threshold was reached, engine clock seconds.
    pub at_secs: f64,
    /// Service attained within this engine residence when the trip fired
    /// (equals the threshold).
    pub attained_secs: f64,
}

/// One engine event, as observed by [`PolicyEngine::advance_events_to`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// A job finished its service.
    Completed(Completion),
    /// A job hit its attained-service trip threshold. The clock stops at
    /// the trip so the caller can react (remove, resume or re-arm) before
    /// anything else progresses.
    Tripped(Trip),
}

/// State handed back by [`PolicyEngine::remove`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Removed {
    /// Service the job still needed, seconds.
    pub remaining_secs: f64,
    /// Service attained within this engine residence, seconds.
    pub attained_secs: f64,
    /// First instant the job held capacity in this residence, if it ever
    /// started.
    pub started: Option<f64>,
}

#[derive(Debug, Clone, Copy)]
struct EngineJob {
    remaining: f64,
    /// Insertion order — the FIFO queue position. Ids alone cannot serve:
    /// callers may submit jobs whose indices are not arrival-ordered.
    seq: u64,
    started: Option<f64>,
    /// Service attained since insertion, seconds.
    attained: f64,
    /// Attained-service threshold at which a [`Trip`] fires, if armed.
    trip_at: Option<f64>,
}

/// Event-driven scheduler state for one policy over a shared pool of
/// `servers` capacity units.
///
/// Drive it with [`PolicyEngine::insert`] at each arrival instant (after
/// [`PolicyEngine::advance_to`] that instant) and finish with
/// [`PolicyEngine::drain`].
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    policy: SchedulingPolicy,
    servers: usize,
    now: f64,
    next_seq: u64,
    jobs: BTreeMap<usize, EngineJob>,
}

impl PolicyEngine {
    /// A fresh engine at time zero. `servers` is clamped to at least 1.
    pub fn new(policy: SchedulingPolicy, servers: usize) -> Self {
        PolicyEngine {
            policy,
            servers: servers.max(1),
            now: 0.0,
            next_seq: 0,
            jobs: BTreeMap::new(),
        }
    }

    /// Current engine time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Unfinished jobs currently in the system (queued or in service).
    pub fn active(&self) -> usize {
        self.jobs.len()
    }

    /// Admits a job needing `service_secs` of dedicated service, arriving
    /// at the engine's current time. Ids must be unique; insertion order
    /// is the FIFO queue order, so callers must insert in (arrival,
    /// submission index) order — which the service driver does.
    pub fn insert(&mut self, job: usize, service_secs: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let prev = self.jobs.insert(
            job,
            EngineJob {
                remaining: service_secs.max(0.0),
                seq,
                started: None,
                attained: 0.0,
                trip_at: None,
            },
        );
        debug_assert!(prev.is_none(), "job {job} inserted twice");
    }

    /// Arms a trip for `job`: [`PolicyEngine::advance_events_to`] emits a
    /// [`Trip`] (and stops the clock) the instant the job's attained
    /// service since insertion reaches `attained_secs`. A threshold at or
    /// past the job's remaining service never fires — the completion wins.
    pub fn set_trip(&mut self, job: usize, attained_secs: f64) {
        if let Some(j) = self.jobs.get_mut(&job) {
            j.trip_at = Some(attained_secs.max(0.0));
        }
    }

    /// Replaces the server count (clamped to at least 1) — the elastic
    /// repartition hook for node churn. Takes effect at the next advance:
    /// FIFO/shortest-remaining serve a differently sized head set,
    /// processor sharing's rate cap shifts.
    pub fn set_servers(&mut self, servers: usize) {
        self.servers = servers.max(1);
    }

    /// Current server count.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Removes `job` from the system without completing it (crash or
    /// shed), returning its progress state. `None` when the job is not
    /// active.
    pub fn remove(&mut self, job: usize) -> Option<Removed> {
        self.jobs.remove(&job).map(|j| Removed {
            remaining_secs: j.remaining,
            attained_secs: j.attained,
            started: j.started,
        })
    }

    /// Jobs currently holding capacity, in the policy's serving order,
    /// with the common service rate. Empty set ⇒ rate 0.
    pub fn in_service(&self) -> (Vec<usize>, f64) {
        let k = self.jobs.len();
        if k == 0 {
            return (Vec::new(), 0.0);
        }
        match self.policy {
            SchedulingPolicy::Fifo => {
                // Queue order is insertion order: the head min(servers, k)
                // jobs run dedicated.
                let mut ids: Vec<usize> = self.jobs.keys().copied().collect();
                ids.sort_by_key(|id| self.jobs[id].seq);
                ids.truncate(self.servers.min(k));
                (ids, 1.0)
            }
            SchedulingPolicy::ProcessorSharing => {
                let rate = (self.servers as f64 / k as f64).min(1.0);
                (self.jobs.keys().copied().collect(), rate)
            }
            SchedulingPolicy::ShortestRemainingService => {
                let mut ids: Vec<usize> = self.jobs.keys().copied().collect();
                // Preemptive: least remaining first, id breaking ties.
                ids.sort_by(|&a, &b| {
                    self.jobs[&a]
                        .remaining
                        .partial_cmp(&self.jobs[&b].remaining)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                ids.truncate(self.servers.min(k));
                ids.sort_unstable();
                (ids, 1.0)
            }
        }
    }

    /// Advances the engine clock to `target`, returning every completion
    /// on the way in completion order. The clock lands exactly on `target`
    /// (even if the system empties earlier) unless `target` is infinite,
    /// in which case it stops at the last completion.
    ///
    /// Callers that arm trips must use
    /// [`PolicyEngine::advance_events_to`]; this wrapper asserts none
    /// fire, so trip-free advances stay bit-identical to the pre-trip
    /// engine.
    pub fn advance_to(&mut self, target: f64) -> Vec<Completion> {
        self.advance_events_to(target)
            .into_iter()
            .map(|ev| match ev {
                EngineEvent::Completed(c) => c,
                EngineEvent::Tripped(t) => {
                    unreachable!("advance_to used with an armed trip on job {}", t.job)
                }
            })
            .collect()
    }

    /// Advances the engine clock towards `target`, returning completions
    /// and trips in event order. On a [`Trip`] the advance *stops* (the
    /// clock sits at the trip instant, short of `target`) so the caller
    /// can react before further progress; call again to continue.
    /// Without a trip the clock lands exactly on `target` as with
    /// [`PolicyEngine::advance_to`]. A completion and a trip due at the
    /// same instant resolve to the completion — a job finishing at its
    /// own crash point still completes.
    pub fn advance_events_to(&mut self, target: f64) -> Vec<EngineEvent> {
        let mut done = Vec::new();
        while !self.jobs.is_empty() && self.now < target {
            let (set, rate) = self.in_service();
            for &id in &set {
                let j = self.jobs.get_mut(&id).expect("in-service job exists");
                if j.started.is_none() {
                    j.started = Some(self.now);
                }
            }
            // Earliest finisher: least remaining in service, first in
            // serving order on ties (matches the analytic models'
            // first-minimal scan; for FIFO it keeps simultaneous
            // completions emitting in arrival order).
            let (next_id, next_rem) = set
                .iter()
                .map(|&id| (id, self.jobs[&id].remaining))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("service set non-empty while jobs remain");
            let finish_at = self.now + next_rem / rate;
            // Earliest armed trip among the served set: least service to
            // go until its threshold, first in serving order on ties.
            let trip = set
                .iter()
                .filter_map(|&id| {
                    let j = &self.jobs[&id];
                    j.trip_at.map(|th| (id, (th - j.attained).max(0.0)))
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((trip_id, trip_rem)) = trip {
                let trip_at = self.now + trip_rem / rate;
                if trip_at < finish_at && trip_at <= target {
                    // The whole served set progresses by the tripped
                    // job's service-to-threshold, then the clock stops.
                    for &id in &set {
                        let j = self.jobs.get_mut(&id).expect("served job exists");
                        j.remaining -= trip_rem;
                        j.attained += trip_rem;
                    }
                    self.now = trip_at;
                    let j = self.jobs.get_mut(&trip_id).expect("tripped job exists");
                    j.trip_at = None;
                    done.push(EngineEvent::Tripped(Trip {
                        job: trip_id,
                        at_secs: trip_at,
                        attained_secs: j.attained,
                    }));
                    return done;
                }
            }
            if finish_at > target {
                // No completion by the target: progress the served set.
                let progress = (target - self.now) * rate;
                for &id in &set {
                    let j = self.jobs.get_mut(&id).expect("served job exists");
                    j.remaining -= progress;
                    j.attained += progress;
                }
                self.now = target;
                break;
            }
            // Subtract the finisher's remaining service *exactly* from its
            // peers — every in-service job runs at the same rate, so this
            // is the same arithmetic the analytic drain performs, keeping
            // the two bit-for-bit comparable.
            for &id in &set {
                let j = self.jobs.get_mut(&id).expect("served job exists");
                if id != next_id {
                    j.remaining -= next_rem;
                }
                j.attained += next_rem;
            }
            let finished = self.jobs.remove(&next_id).expect("finisher exists");
            self.now = finish_at;
            done.push(EngineEvent::Completed(Completion {
                job: next_id,
                at_secs: finish_at,
                start_secs: finished.started.unwrap_or(finish_at),
            }));
        }
        if target.is_finite() && self.now < target {
            self.now = target;
        }
        done
    }

    /// Runs the system empty, returning the remaining completions.
    pub fn drain(&mut self) -> Vec<Completion> {
        self.advance_to(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune::{simulate_fifo, simulate_processor_sharing, SharedJob};

    /// Feeds an arrival stream through the engine the way the service
    /// driver does: advance to each arrival, insert, drain at the end.
    fn run(policy: SchedulingPolicy, servers: usize, jobs: &[SharedJob]) -> Vec<Completion> {
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .arrival_secs
                .partial_cmp(&jobs[b].arrival_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut engine = PolicyEngine::new(policy, servers);
        let mut done = Vec::new();
        for id in order {
            done.extend(engine.advance_to(jobs[id].arrival_secs));
            engine.insert(id, jobs[id].service_secs);
        }
        done.extend(engine.drain());
        done
    }

    fn stream() -> Vec<SharedJob> {
        // Micro-aligned arrivals (like PoissonArrivals emits) so the
        // analytic PS model's SimTime arrival quantisation is a no-op.
        [(0.0, 13.25), (2.5, 4.0), (2.5, 0.75), (7.125, 9.5), (31.0, 0.0), (40.5, 6.25)]
            .into_iter()
            .map(|(arrival_secs, service_secs)| SharedJob { arrival_secs, service_secs })
            .collect()
    }

    #[test]
    fn fifo_engine_matches_the_analytic_queue() {
        for servers in [1usize, 2, 3] {
            let jobs = stream();
            let engine = run(SchedulingPolicy::Fifo, servers, &jobs);
            let analytic = simulate_fifo(&jobs, servers).unwrap();
            assert_eq!(engine.len(), analytic.len());
            for c in &engine {
                let a = analytic.iter().find(|a| a.job == c.job).unwrap();
                assert!(
                    (c.at_secs - a.completion_secs).abs() < 1e-9,
                    "servers={servers} job={} engine={} analytic={}",
                    c.job,
                    c.at_secs,
                    a.completion_secs
                );
            }
        }
    }

    #[test]
    fn ps_engine_matches_the_analytic_fluid_model() {
        let jobs = stream();
        let engine = run(SchedulingPolicy::ProcessorSharing, 1, &jobs);
        let analytic = simulate_processor_sharing(&jobs).unwrap();
        assert_eq!(engine.len(), analytic.len());
        for c in &engine {
            let a = analytic.iter().find(|a| a.job == c.job).unwrap();
            assert!(
                (c.at_secs - a.completion_secs).abs() < 1e-9,
                "job={} engine={} analytic={}",
                c.job,
                c.at_secs,
                a.completion_secs
            );
        }
    }

    #[test]
    fn fifo_queues_by_insertion_order_not_job_id() {
        // Job 1 arrives first; its larger id must not let job 0 jump the
        // queue (ids are submission indices, not arrival ranks).
        let jobs = [
            SharedJob { arrival_secs: 10.0, service_secs: 5.0 },
            SharedJob { arrival_secs: 0.0, service_secs: 20.0 },
        ];
        let done = run(SchedulingPolicy::Fifo, 1, &jobs);
        assert_eq!(done[0].job, 1);
        assert!((done[0].at_secs - 20.0).abs() < 1e-12, "{done:?}");
        assert_eq!(done[1].job, 0);
        assert!((done[1].start_secs - 20.0).abs() < 1e-12, "{done:?}");
        assert!((done[1].at_secs - 25.0).abs() < 1e-12, "{done:?}");
    }

    #[test]
    fn ps_with_extra_servers_caps_the_rate_at_one() {
        // 2 servers, 2 jobs: everyone runs dedicated, no slowdown.
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 5.0 },
            SharedJob { arrival_secs: 0.0, service_secs: 8.0 },
        ];
        let done = run(SchedulingPolicy::ProcessorSharing, 2, &jobs);
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        assert!((by_job(0).at_secs - 5.0).abs() < 1e-12);
        assert!((by_job(1).at_secs - 8.0).abs() < 1e-12);
        // 2 servers, 3 simultaneous equal jobs: rate 2/3, all finish at
        // 6 / (2/3) = 9.
        let three = [SharedJob { arrival_secs: 0.0, service_secs: 6.0 }; 3];
        let done = run(SchedulingPolicy::ProcessorSharing, 2, &three);
        assert!(done.iter().all(|c| (c.at_secs - 9.0).abs() < 1e-12), "{done:?}");
    }

    #[test]
    fn shortest_remaining_preempts_and_beats_fifo_on_mean_response() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
            SharedJob { arrival_secs: 4.0, service_secs: 3.0 },
        ];
        let done = run(SchedulingPolicy::ShortestRemainingService, 1, &jobs);
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        // Job 1 preempts at t=4 (3 < 6 remaining), finishes at 7; job 0
        // resumes with 6 left, finishing at 13.
        assert!((by_job(1).at_secs - 7.0).abs() < 1e-12, "{done:?}");
        assert!((by_job(0).at_secs - 13.0).abs() < 1e-12, "{done:?}");

        let mean = |cs: &[Completion], js: &[SharedJob]| {
            cs.iter().map(|c| c.at_secs - js[c.job].arrival_secs).sum::<f64>() / cs.len() as f64
        };
        let fifo = run(SchedulingPolicy::Fifo, 1, &jobs);
        assert!(mean(&done, &jobs) < mean(&fifo, &jobs));
    }

    #[test]
    fn makespan_is_policy_invariant_for_work_conserving_schedules() {
        let jobs = stream();
        let mut spans = Vec::new();
        for policy in SchedulingPolicy::ALL {
            let done = run(policy, 1, &jobs);
            assert_eq!(done.len(), jobs.len());
            spans.push(done.iter().map(|c| c.at_secs).fold(0.0, f64::max));
        }
        for s in &spans[1..] {
            assert!((s - spans[0]).abs() < 1e-9, "{spans:?}");
        }
    }

    #[test]
    fn starts_record_queueing_and_zero_service_jobs_finish_instantly() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
            SharedJob { arrival_secs: 4.0, service_secs: 3.0 },
            SharedJob { arrival_secs: 5.0, service_secs: 0.0 },
        ];
        let done = run(SchedulingPolicy::Fifo, 1, &jobs);
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        assert_eq!(by_job(0).start_secs, 0.0);
        assert!((by_job(1).start_secs - 10.0).abs() < 1e-12, "queued behind job 0");
        // The zero-service job waits for the head of line, then completes
        // the instant it starts.
        assert!((by_job(2).start_secs - 13.0).abs() < 1e-12, "{done:?}");
        assert_eq!(by_job(2).start_secs, by_job(2).at_secs);
        // Under PS it never waits at all.
        let ps = run(SchedulingPolicy::ProcessorSharing, 1, &jobs);
        let z = ps.iter().find(|c| c.job == 2).unwrap();
        assert_eq!(z.start_secs, 5.0);
        assert_eq!(z.at_secs, 5.0);
    }

    #[test]
    fn trips_fire_at_the_attained_threshold_and_stop_the_clock() {
        let mut engine = PolicyEngine::new(SchedulingPolicy::Fifo, 1);
        engine.insert(0, 10.0);
        engine.set_trip(0, 4.0);
        let events = engine.advance_events_to(f64::INFINITY);
        assert_eq!(
            events,
            vec![EngineEvent::Tripped(Trip { job: 0, at_secs: 4.0, attained_secs: 4.0 })]
        );
        assert_eq!(engine.now(), 4.0, "the clock stops at the trip");
        assert_eq!(engine.active(), 1, "the tripped job is still active until removed");
        // The caller removes it (a crash) and sees the progress state.
        let removed = engine.remove(0).unwrap();
        assert_eq!(removed.attained_secs, 4.0);
        assert_eq!(removed.remaining_secs, 6.0);
        assert_eq!(removed.started, Some(0.0));
        assert!(engine.remove(0).is_none());
    }

    #[test]
    fn unremoved_tripped_jobs_resume_and_complete() {
        // A trip is an observation point, not a removal: left in place,
        // the job runs on to completion with its threshold disarmed.
        let mut engine = PolicyEngine::new(SchedulingPolicy::Fifo, 1);
        engine.insert(0, 10.0);
        engine.set_trip(0, 4.0);
        assert_eq!(engine.advance_events_to(f64::INFINITY).len(), 1);
        let events = engine.advance_events_to(f64::INFINITY);
        assert_eq!(events.len(), 1);
        match events[0] {
            EngineEvent::Completed(c) => assert_eq!(c.at_secs, 10.0),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn completion_wins_a_tie_with_a_trip() {
        let mut engine = PolicyEngine::new(SchedulingPolicy::Fifo, 1);
        engine.insert(0, 5.0);
        engine.set_trip(0, 5.0);
        let events = engine.advance_events_to(f64::INFINITY);
        assert_eq!(events.len(), 1);
        assert!(
            matches!(events[0], EngineEvent::Completed(c) if c.job == 0 && c.at_secs == 5.0),
            "{events:?}"
        );
    }

    #[test]
    fn trips_under_sharing_charge_the_whole_served_set() {
        // PS, 2 equal jobs at rate 1/2: job 1's 3-second threshold is
        // reached at wall time 6; job 0 has also attained 3 by then.
        let mut engine = PolicyEngine::new(SchedulingPolicy::ProcessorSharing, 1);
        engine.insert(0, 10.0);
        engine.insert(1, 10.0);
        engine.set_trip(1, 3.0);
        let events = engine.advance_events_to(f64::INFINITY);
        assert_eq!(
            events,
            vec![EngineEvent::Tripped(Trip { job: 1, at_secs: 6.0, attained_secs: 3.0 })]
        );
        let removed = engine.remove(1).unwrap();
        assert_eq!(removed.remaining_secs, 7.0);
        // Job 0 progressed the same 3 seconds and now runs dedicated.
        let done = engine.drain();
        assert_eq!(done.len(), 1);
        match done[0] {
            Completion { job: 0, at_secs, .. } => assert_eq!(at_secs, 13.0),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn removing_a_job_keeps_peer_arithmetic_exact() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 13.25 },
            SharedJob { arrival_secs: 0.0, service_secs: 4.0 },
        ];
        // Reference: job 0 alone takes exactly its service time.
        let mut engine = PolicyEngine::new(SchedulingPolicy::Fifo, 2);
        engine.insert(0, jobs[0].service_secs);
        engine.insert(1, jobs[1].service_secs);
        engine.advance_to(2.0);
        engine.remove(1).unwrap();
        let done = engine.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].job, 0);
        assert_eq!(done[0].at_secs, 13.25, "peer remaining must be untouched by the removal");
    }

    #[test]
    fn set_servers_rescales_concurrency_mid_run() {
        let mut engine = PolicyEngine::new(SchedulingPolicy::Fifo, 2);
        engine.insert(0, 10.0);
        engine.insert(1, 10.0);
        assert_eq!(engine.in_service().0.len(), 2);
        engine.advance_to(2.0);
        // A node left: down to one server. Only the FIFO head serves.
        engine.set_servers(1);
        assert_eq!(engine.servers(), 1);
        assert_eq!(engine.in_service().0, vec![0]);
        let done = engine.drain();
        // Job 0: 8 left at t=2, dedicated → finishes at 10. Job 1: starts
        // its remaining 8 only then → finishes at 18.
        assert_eq!(done[0].at_secs, 10.0);
        assert_eq!(done[1].at_secs, 18.0);
        engine.set_servers(0);
        assert_eq!(engine.servers(), 1, "server counts clamp to at least 1");
    }

    #[test]
    fn advance_lands_exactly_on_finite_targets() {
        let mut engine = PolicyEngine::new(SchedulingPolicy::Fifo, 1);
        assert!(engine.advance_to(3.5).is_empty());
        assert_eq!(engine.now(), 3.5);
        engine.insert(0, 1.0);
        let done = engine.advance_to(10.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at_secs, 4.5);
        assert_eq!(engine.now(), 10.0, "clock reaches the target after the system empties");
        assert_eq!(engine.active(), 0);
    }
}
