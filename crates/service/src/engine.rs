//! Exact fluid-model scheduling engine shared by every policy.
//!
//! The engine tracks the remaining service of each unfinished job and
//! advances simulated time event by event. Its one structural invariant
//! makes it both simple and exact: under every [`SchedulingPolicy`] all
//! jobs *in service* at a given instant run at the same rate (FIFO and
//! shortest-remaining serve a subset at rate 1; processor sharing serves
//! everyone at `servers/active`, capped at 1). The next event is therefore
//! always "the in-service job with the least remaining service finishes",
//! and the drain arithmetic can mirror the analytic models in
//! `pipetune::sharing` operation for operation — which is what lets the
//! cross-check tests demand agreement within 1e-9 seconds rather than some
//! loose simulation tolerance.

use std::collections::BTreeMap;

use crate::policy::SchedulingPolicy;

/// One job finishing, as observed by [`PolicyEngine::advance_to`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Job id (the service uses submission indices).
    pub job: usize,
    /// Completion instant, engine clock seconds.
    pub at_secs: f64,
    /// First instant the job was in service (equals its insertion time for
    /// policies that start work immediately, later for queued FIFO jobs).
    pub start_secs: f64,
}

#[derive(Debug, Clone, Copy)]
struct EngineJob {
    remaining: f64,
    /// Insertion order — the FIFO queue position. Ids alone cannot serve:
    /// callers may submit jobs whose indices are not arrival-ordered.
    seq: u64,
    started: Option<f64>,
}

/// Event-driven scheduler state for one policy over a shared pool of
/// `servers` capacity units.
///
/// Drive it with [`PolicyEngine::insert`] at each arrival instant (after
/// [`PolicyEngine::advance_to`] that instant) and finish with
/// [`PolicyEngine::drain`].
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    policy: SchedulingPolicy,
    servers: usize,
    now: f64,
    next_seq: u64,
    jobs: BTreeMap<usize, EngineJob>,
}

impl PolicyEngine {
    /// A fresh engine at time zero. `servers` is clamped to at least 1.
    pub fn new(policy: SchedulingPolicy, servers: usize) -> Self {
        PolicyEngine {
            policy,
            servers: servers.max(1),
            now: 0.0,
            next_seq: 0,
            jobs: BTreeMap::new(),
        }
    }

    /// Current engine time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Unfinished jobs currently in the system (queued or in service).
    pub fn active(&self) -> usize {
        self.jobs.len()
    }

    /// Admits a job needing `service_secs` of dedicated service, arriving
    /// at the engine's current time. Ids must be unique; insertion order
    /// is the FIFO queue order, so callers must insert in (arrival,
    /// submission index) order — which the service driver does.
    pub fn insert(&mut self, job: usize, service_secs: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let prev = self
            .jobs
            .insert(job, EngineJob { remaining: service_secs.max(0.0), seq, started: None });
        debug_assert!(prev.is_none(), "job {job} inserted twice");
    }

    /// Jobs currently holding capacity, in the policy's serving order,
    /// with the common service rate. Empty set ⇒ rate 0.
    pub fn in_service(&self) -> (Vec<usize>, f64) {
        let k = self.jobs.len();
        if k == 0 {
            return (Vec::new(), 0.0);
        }
        match self.policy {
            SchedulingPolicy::Fifo => {
                // Queue order is insertion order: the head min(servers, k)
                // jobs run dedicated.
                let mut ids: Vec<usize> = self.jobs.keys().copied().collect();
                ids.sort_by_key(|id| self.jobs[id].seq);
                ids.truncate(self.servers.min(k));
                (ids, 1.0)
            }
            SchedulingPolicy::ProcessorSharing => {
                let rate = (self.servers as f64 / k as f64).min(1.0);
                (self.jobs.keys().copied().collect(), rate)
            }
            SchedulingPolicy::ShortestRemainingService => {
                let mut ids: Vec<usize> = self.jobs.keys().copied().collect();
                // Preemptive: least remaining first, id breaking ties.
                ids.sort_by(|&a, &b| {
                    self.jobs[&a]
                        .remaining
                        .partial_cmp(&self.jobs[&b].remaining)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                ids.truncate(self.servers.min(k));
                ids.sort_unstable();
                (ids, 1.0)
            }
        }
    }

    /// Advances the engine clock to `target`, returning every completion
    /// on the way in completion order. The clock lands exactly on `target`
    /// (even if the system empties earlier) unless `target` is infinite,
    /// in which case it stops at the last completion.
    pub fn advance_to(&mut self, target: f64) -> Vec<Completion> {
        let mut done = Vec::new();
        while !self.jobs.is_empty() && self.now < target {
            let (set, rate) = self.in_service();
            for &id in &set {
                let j = self.jobs.get_mut(&id).expect("in-service job exists");
                if j.started.is_none() {
                    j.started = Some(self.now);
                }
            }
            // Earliest finisher: least remaining in service, first in
            // serving order on ties (matches the analytic models'
            // first-minimal scan; for FIFO it keeps simultaneous
            // completions emitting in arrival order).
            let (next_id, next_rem) = set
                .iter()
                .map(|&id| (id, self.jobs[&id].remaining))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("service set non-empty while jobs remain");
            let finish_at = self.now + next_rem / rate;
            if finish_at > target {
                // No completion by the target: progress the served set.
                let progress = (target - self.now) * rate;
                for &id in &set {
                    self.jobs.get_mut(&id).expect("served job exists").remaining -= progress;
                }
                self.now = target;
                break;
            }
            // Subtract the finisher's remaining service *exactly* from its
            // peers — every in-service job runs at the same rate, so this
            // is the same arithmetic the analytic drain performs, keeping
            // the two bit-for-bit comparable.
            for &id in &set {
                if id != next_id {
                    self.jobs.get_mut(&id).expect("served job exists").remaining -= next_rem;
                }
            }
            let finished = self.jobs.remove(&next_id).expect("finisher exists");
            self.now = finish_at;
            done.push(Completion {
                job: next_id,
                at_secs: finish_at,
                start_secs: finished.started.unwrap_or(finish_at),
            });
        }
        if target.is_finite() && self.now < target {
            self.now = target;
        }
        done
    }

    /// Runs the system empty, returning the remaining completions.
    pub fn drain(&mut self) -> Vec<Completion> {
        self.advance_to(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune::{simulate_fifo, simulate_processor_sharing, SharedJob};

    /// Feeds an arrival stream through the engine the way the service
    /// driver does: advance to each arrival, insert, drain at the end.
    fn run(policy: SchedulingPolicy, servers: usize, jobs: &[SharedJob]) -> Vec<Completion> {
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .arrival_secs
                .partial_cmp(&jobs[b].arrival_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut engine = PolicyEngine::new(policy, servers);
        let mut done = Vec::new();
        for id in order {
            done.extend(engine.advance_to(jobs[id].arrival_secs));
            engine.insert(id, jobs[id].service_secs);
        }
        done.extend(engine.drain());
        done
    }

    fn stream() -> Vec<SharedJob> {
        // Micro-aligned arrivals (like PoissonArrivals emits) so the
        // analytic PS model's SimTime arrival quantisation is a no-op.
        [(0.0, 13.25), (2.5, 4.0), (2.5, 0.75), (7.125, 9.5), (31.0, 0.0), (40.5, 6.25)]
            .into_iter()
            .map(|(arrival_secs, service_secs)| SharedJob { arrival_secs, service_secs })
            .collect()
    }

    #[test]
    fn fifo_engine_matches_the_analytic_queue() {
        for servers in [1usize, 2, 3] {
            let jobs = stream();
            let engine = run(SchedulingPolicy::Fifo, servers, &jobs);
            let analytic = simulate_fifo(&jobs, servers).unwrap();
            assert_eq!(engine.len(), analytic.len());
            for c in &engine {
                let a = analytic.iter().find(|a| a.job == c.job).unwrap();
                assert!(
                    (c.at_secs - a.completion_secs).abs() < 1e-9,
                    "servers={servers} job={} engine={} analytic={}",
                    c.job,
                    c.at_secs,
                    a.completion_secs
                );
            }
        }
    }

    #[test]
    fn ps_engine_matches_the_analytic_fluid_model() {
        let jobs = stream();
        let engine = run(SchedulingPolicy::ProcessorSharing, 1, &jobs);
        let analytic = simulate_processor_sharing(&jobs).unwrap();
        assert_eq!(engine.len(), analytic.len());
        for c in &engine {
            let a = analytic.iter().find(|a| a.job == c.job).unwrap();
            assert!(
                (c.at_secs - a.completion_secs).abs() < 1e-9,
                "job={} engine={} analytic={}",
                c.job,
                c.at_secs,
                a.completion_secs
            );
        }
    }

    #[test]
    fn fifo_queues_by_insertion_order_not_job_id() {
        // Job 1 arrives first; its larger id must not let job 0 jump the
        // queue (ids are submission indices, not arrival ranks).
        let jobs = [
            SharedJob { arrival_secs: 10.0, service_secs: 5.0 },
            SharedJob { arrival_secs: 0.0, service_secs: 20.0 },
        ];
        let done = run(SchedulingPolicy::Fifo, 1, &jobs);
        assert_eq!(done[0].job, 1);
        assert!((done[0].at_secs - 20.0).abs() < 1e-12, "{done:?}");
        assert_eq!(done[1].job, 0);
        assert!((done[1].start_secs - 20.0).abs() < 1e-12, "{done:?}");
        assert!((done[1].at_secs - 25.0).abs() < 1e-12, "{done:?}");
    }

    #[test]
    fn ps_with_extra_servers_caps_the_rate_at_one() {
        // 2 servers, 2 jobs: everyone runs dedicated, no slowdown.
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 5.0 },
            SharedJob { arrival_secs: 0.0, service_secs: 8.0 },
        ];
        let done = run(SchedulingPolicy::ProcessorSharing, 2, &jobs);
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        assert!((by_job(0).at_secs - 5.0).abs() < 1e-12);
        assert!((by_job(1).at_secs - 8.0).abs() < 1e-12);
        // 2 servers, 3 simultaneous equal jobs: rate 2/3, all finish at
        // 6 / (2/3) = 9.
        let three = [SharedJob { arrival_secs: 0.0, service_secs: 6.0 }; 3];
        let done = run(SchedulingPolicy::ProcessorSharing, 2, &three);
        assert!(done.iter().all(|c| (c.at_secs - 9.0).abs() < 1e-12), "{done:?}");
    }

    #[test]
    fn shortest_remaining_preempts_and_beats_fifo_on_mean_response() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
            SharedJob { arrival_secs: 4.0, service_secs: 3.0 },
        ];
        let done = run(SchedulingPolicy::ShortestRemainingService, 1, &jobs);
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        // Job 1 preempts at t=4 (3 < 6 remaining), finishes at 7; job 0
        // resumes with 6 left, finishing at 13.
        assert!((by_job(1).at_secs - 7.0).abs() < 1e-12, "{done:?}");
        assert!((by_job(0).at_secs - 13.0).abs() < 1e-12, "{done:?}");

        let mean = |cs: &[Completion], js: &[SharedJob]| {
            cs.iter().map(|c| c.at_secs - js[c.job].arrival_secs).sum::<f64>() / cs.len() as f64
        };
        let fifo = run(SchedulingPolicy::Fifo, 1, &jobs);
        assert!(mean(&done, &jobs) < mean(&fifo, &jobs));
    }

    #[test]
    fn makespan_is_policy_invariant_for_work_conserving_schedules() {
        let jobs = stream();
        let mut spans = Vec::new();
        for policy in SchedulingPolicy::ALL {
            let done = run(policy, 1, &jobs);
            assert_eq!(done.len(), jobs.len());
            spans.push(done.iter().map(|c| c.at_secs).fold(0.0, f64::max));
        }
        for s in &spans[1..] {
            assert!((s - spans[0]).abs() < 1e-9, "{spans:?}");
        }
    }

    #[test]
    fn starts_record_queueing_and_zero_service_jobs_finish_instantly() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
            SharedJob { arrival_secs: 4.0, service_secs: 3.0 },
            SharedJob { arrival_secs: 5.0, service_secs: 0.0 },
        ];
        let done = run(SchedulingPolicy::Fifo, 1, &jobs);
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        assert_eq!(by_job(0).start_secs, 0.0);
        assert!((by_job(1).start_secs - 10.0).abs() < 1e-12, "queued behind job 0");
        // The zero-service job waits for the head of line, then completes
        // the instant it starts.
        assert!((by_job(2).start_secs - 13.0).abs() < 1e-12, "{done:?}");
        assert_eq!(by_job(2).start_secs, by_job(2).at_secs);
        // Under PS it never waits at all.
        let ps = run(SchedulingPolicy::ProcessorSharing, 1, &jobs);
        let z = ps.iter().find(|c| c.job == 2).unwrap();
        assert_eq!(z.start_secs, 5.0);
        assert_eq!(z.at_secs, 5.0);
    }

    #[test]
    fn advance_lands_exactly_on_finite_targets() {
        let mut engine = PolicyEngine::new(SchedulingPolicy::Fifo, 1);
        assert!(engine.advance_to(3.5).is_empty());
        assert_eq!(engine.now(), 3.5);
        engine.insert(0, 1.0);
        let done = engine.advance_to(10.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at_secs, 4.5);
        assert_eq!(engine.now(), 10.0, "clock reaches the target after the system empties");
        assert_eq!(engine.active(), 0);
    }
}
