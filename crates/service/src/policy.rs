//! Scheduling policies and admission control for the tuning service.

/// How the service divides the shared cluster among concurrently admitted
/// jobs. All three policies are work-conserving: whenever at least one
/// admitted job is unfinished, the full configured capacity is busy, so
/// the last completion time of a job stream is policy-independent (pinned
/// by the property suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// First-in-first-out over `servers` dedicated partitions: jobs start
    /// in arrival order as partitions free up and then run dedicated. With
    /// one server this is the paper's §5.1 regime and reproduces
    /// `pipetune::simulate_fifo` exactly.
    Fifo,
    /// Egalitarian processor sharing: every admitted job is always
    /// running, each at rate `servers / active` (capped at 1). With one
    /// server this is Fig. 5's co-location regime and reproduces
    /// `pipetune::simulate_processor_sharing` exactly.
    ProcessorSharing,
    /// Preemptive shortest-remaining-service: the `servers` jobs with the
    /// least service left run at rate 1; a shorter newcomer preempts.
    /// Minimises mean response time among the three.
    ShortestRemainingService,
}

impl SchedulingPolicy {
    /// All policies, in a stable order (benchmarks iterate this).
    pub const ALL: [SchedulingPolicy; 3] = [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::ProcessorSharing,
        SchedulingPolicy::ShortestRemainingService,
    ];

    /// Stable lower-snake name used in metric keys and span attributes.
    pub fn name(self) -> &'static str {
        match self {
            SchedulingPolicy::Fifo => "fifo",
            SchedulingPolicy::ProcessorSharing => "processor_sharing",
            SchedulingPolicy::ShortestRemainingService => "shortest_remaining",
        }
    }
}

/// Admission control applied to each arrival before it enters the system.
///
/// The default admits everything; a bounded controller rejects arrivals
/// that would push the number of unfinished jobs (queued + in service)
/// past the bound. Rejected jobs never run — their records carry
/// `admitted = false` and `NaN` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionControl {
    /// Maximum unfinished jobs in the system; `None` admits everything.
    pub max_in_system: Option<usize>,
}

impl AdmissionControl {
    /// Admit every arrival (the default).
    pub fn unbounded() -> Self {
        AdmissionControl { max_in_system: None }
    }

    /// Reject arrivals while `max_in_system` jobs are unfinished.
    pub fn bounded(max_in_system: usize) -> Self {
        AdmissionControl { max_in_system: Some(max_in_system) }
    }

    /// Whether an arrival is admitted when `in_system` jobs are unfinished.
    pub fn admits(&self, in_system: usize) -> bool {
        self.max_in_system.is_none_or(|cap| in_system < cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(SchedulingPolicy::Fifo.name(), "fifo");
        assert_eq!(SchedulingPolicy::ProcessorSharing.name(), "processor_sharing");
        assert_eq!(SchedulingPolicy::ShortestRemainingService.name(), "shortest_remaining");
        assert_eq!(SchedulingPolicy::ALL.len(), 3);
    }

    #[test]
    fn admission_bounds_the_system() {
        let open = AdmissionControl::unbounded();
        assert!(open.admits(0) && open.admits(1_000_000));
        let tight = AdmissionControl::bounded(2);
        assert!(tight.admits(0) && tight.admits(1));
        assert!(!tight.admits(2) && !tight.admits(3));
    }
}
