//! Event-rate model and counter multiplexing.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::events::{EVENT_NAMES, NUM_EVENTS};

/// Numeric characterisation of one epoch of work, from which every event
/// count is derived. Produced from `pipetune_dnn::ModelSignature` /
/// `pipetune_kernels::KernelSignature` by the middleware crate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSignature {
    /// Floating-point operations per epoch.
    pub flops_per_epoch: f64,
    /// Bytes the workload keeps hot.
    pub working_set_bytes: f64,
    /// Bytes of memory traffic per flop.
    pub memory_intensity: f64,
    /// Fraction of instructions that are branches.
    pub branch_ratio: f64,
}

/// One epoch's averaged event counts (the paper stores per-epoch averages to
/// smooth multiplexing error, §5.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochProfile {
    counts: Vec<f64>,
}

impl EpochProfile {
    /// Wraps raw per-epoch counts (the sampling layer's reconstruction).
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`crate::NUM_EVENTS`] counts are supplied.
    pub fn from_counts(counts: Vec<f64>) -> Self {
        assert_eq!(counts.len(), NUM_EVENTS, "one count per event");
        EpochProfile { counts }
    }

    /// Raw per-epoch counts, ordered as [`EVENT_NAMES`].
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Count for a named event.
    pub fn get(&self, name: &str) -> Option<f64> {
        crate::event_index(name).map(|i| self.counts[i])
    }

    /// Feature vector used as the clustering input.
    ///
    /// Counts span 8+ orders of magnitude (Fig. 2's legend) and scale with
    /// the *total work* of the configuration being trained, so raw
    /// magnitudes would cluster trials by hyperparameters rather than by
    /// workload family. Instead, every event is expressed as a log-ratio
    /// per instruction — the family fingerprint (miss rates, branchiness,
    /// memory mix) — while two magnitude dimensions are kept:
    /// `log10(instructions)` (total work) and `log10(msr/tsc)` (epoch
    /// duration × cores), which let the ground truth discriminate
    /// working-set and iteration-count differences when picking a
    /// configuration to reuse.
    pub fn features(&self) -> Vec<f64> {
        // The magnitude dimensions carry the configuration-relevant signal
        // (total work, epoch duration) in just two of 58 coordinates; weight
        // them up so they are not drowned by multiplexing noise on the 56
        // ratio dimensions.
        const INSTR_WEIGHT: f64 = 2.0;
        const TSC_WEIGHT: f64 = 3.0;
        let instr_idx = crate::event_index("instructions").expect("known event");
        let tsc_idx = crate::event_index("msr/tsc/").expect("known event");
        let instr = self.counts[instr_idx].max(1.0);
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if i == instr_idx {
                    INSTR_WEIGHT * (1.0 + c.max(0.0)).log10()
                } else if i == tsc_idx {
                    TSC_WEIGHT * (1.0 + c.max(0.0)).log10()
                } else {
                    ((c.max(0.0) + 1.0) / instr).log10()
                }
            })
            .collect()
    }

    /// Euclidean distance between two profiles' feature vectors.
    pub fn distance(&self, other: &EpochProfile) -> f64 {
        self.features()
            .iter()
            .zip(other.features())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// The simulated PMU.
///
/// Intel E3-class CPUs expose 3 fixed counters (instructions, cycles,
/// ref/bus cycles) and 2 generic counters; with 58 requested events the
/// kernel time-multiplexes the generic ones and scales the counts
/// (`final = raw × enabled/running`), which this model reproduces including
/// the resulting estimation noise and occasional blind spots (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Profiler {
    /// Generic (multiplexed) hardware counters available.
    pub generic_counters: usize,
    /// Relative noise applied to a fully-measured event.
    pub base_noise: f64,
    /// Extra relative noise at zero measurement coverage.
    pub multiplex_noise: f64,
    /// Probability that a multiplexed event hits a blind spot in an epoch
    /// (burst missed entirely → larger scaling error).
    pub blind_spot_prob: f64,
    /// Nominal core frequency, Hz (drives `msr/tsc`).
    pub freq_hz: f64,
    /// Last-level cache size, bytes (drives miss ratios).
    pub llc_bytes: f64,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler {
            generic_counters: 2,
            base_noise: 0.01,
            multiplex_noise: 0.08,
            blind_spot_prob: 0.02,
            freq_hz: 3.5e9,
            llc_bytes: 20e6,
        }
    }
}

/// Indices of the fixed-counter events (used by the sampling scheduler).
pub(crate) fn fixed_event_indices() -> Vec<usize> {
    FIXED_EVENTS.iter().filter_map(|n| crate::event_index(n)).collect()
}

/// Events served by fixed counters — measured at full coverage.
const FIXED_EVENTS: [&str; 6] = [
    "instructions",
    "cpu-cycles",
    "bus-cycles",
    "cpu/instructions/",
    "cpu/cpu-cycles/",
    "cpu/bus-cycles/",
];

impl Profiler {
    /// True (noise-free) per-epoch counts implied by a signature.
    ///
    /// Exposed so tests and ablations can separate model error from
    /// multiplexing error.
    pub fn true_counts(
        &self,
        sig: &WorkloadSignature,
        cores: u32,
        epoch_secs: f64,
    ) -> Vec<f64> {
        let flops = sig.flops_per_epoch.max(0.0);
        let mi = sig.memory_intensity.max(0.0);
        let br = sig.branch_ratio.clamp(0.0, 1.0);
        let ws = sig.working_set_bytes.max(0.0);

        let instr = flops * 1.3 + 1e6;
        let ipc = 2.2 / (1.0 + 0.8 * mi);
        let cycles = instr / ipc;
        let branches = instr * br;
        let branch_misses = branches * (0.01 + 0.05 * br);
        let l1_loads = instr * (0.25 + 0.30 * mi);
        let l1_stores = l1_loads * 0.4;
        // L1 miss ratio saturates with working-set growth past 32 KiB.
        let l1_span = ((1.0 + ws / 32e3).ln() / (1.0f64 + 1e6).ln()).min(1.0);
        let l1_load_misses = l1_loads * (0.02 + 0.06 * l1_span);
        let l1_icache_misses = instr * 0.0005;
        let llc_loads = l1_load_misses * 0.5;
        let llc_stores = l1_stores * 0.01;
        let llc_miss_ratio = (ws / self.llc_bytes).clamp(0.02, 0.9);
        let llc_load_misses = llc_loads * llc_miss_ratio;
        let llc_store_misses = llc_stores * llc_miss_ratio;
        let dtlb_loads = l1_loads;
        let tlb_span = ((1.0 + ws / 2e6).ln() / (1.0f64 + 1e5).ln()).min(1.0);
        let dtlb_load_misses = dtlb_loads * 0.0002 * (1.0 + 20.0 * tlb_span);
        let dtlb_stores = l1_stores;
        let dtlb_store_misses = dtlb_stores * 0.0001 * (1.0 + 20.0 * tlb_span);
        let itlb_loads = instr * 0.02;
        let itlb_misses = itlb_loads * 0.0005;
        let cache_references = llc_loads + llc_stores;
        let cache_misses = llc_load_misses + llc_store_misses;
        let bus_cycles = cycles * 0.03;
        let total_slots = cycles * 4.0;
        let slots_issued = instr * 1.15;
        let slots_retired = instr;
        let fetch_bubbles = total_slots * 0.05 * (1.0 + mi);
        let recovery_bubbles = branch_misses * 20.0;
        let numa_fraction = if cores > 8 { 0.30 } else { 0.05 };
        let node_loads = llc_load_misses * numa_fraction;
        let node_load_misses = node_loads * 0.3;
        let node_stores = llc_store_misses * numa_fraction;
        let node_store_misses = node_stores * 0.3;
        // One reference clock: TSC ticks measure wall duration of the epoch.
        let tsc = self.freq_hz * epoch_secs.max(0.0);

        let mut c = vec![0.0f64; NUM_EVENTS];
        let mut set = |name: &str, v: f64| {
            let i = crate::event_index(name).expect("known event");
            c[i] = v;
        };
        set("L1-dcache-load-misses", l1_load_misses);
        set("L1-dcache-loads", l1_loads);
        set("L1-dcache-stores", l1_stores);
        set("L1-icache-load-misses", l1_icache_misses);
        set("LLC-load-misses", llc_load_misses);
        set("LLC-loads", llc_loads);
        set("LLC-store-misses", llc_store_misses);
        set("LLC-stores", llc_stores);
        set("branch-load-misses", branch_misses * 0.8);
        set("branch-loads", branches * 0.9);
        set("branch-misses", branch_misses);
        set("branches", branches);
        set("bus-cycles", bus_cycles);
        set("cache-misses", cache_misses);
        set("cache-references", cache_references);
        set("cpu-cycles", cycles);
        set("cpu/branch-instructions/", branches);
        set("cpu/branch-misses/", branch_misses);
        set("cpu/bus-cycles/", bus_cycles);
        set("cpu/cache-misses/", cache_misses);
        set("cpu/cache-references/", cache_references);
        set("cpu/cpu-cycles/", cycles);
        set("cpu/cycles-ct/", cycles * 0.001);
        set("cpu/cycles-t/", cycles * 0.001);
        set("cpu/el-abort/", 10.0);
        set("cpu/el-capacity/", 10.0);
        set("cpu/el-commit/", 10.0);
        set("cpu/el-conflict/", 10.0);
        set("cpu/el-start/", 20.0);
        set("cpu/instructions/", instr);
        set("cpu/mem-loads/", l1_loads * 0.001);
        set("cpu/mem-stores/", l1_stores * 0.001);
        set("cpu/topdown-fetch-bubbles/", fetch_bubbles);
        set("cpu/topdown-recovery-bubbles/", recovery_bubbles);
        set("cpu/topdown-slots-issued/", slots_issued);
        set("cpu/topdown-slots-retired/", slots_retired);
        set("cpu/topdown-total-slots/", total_slots);
        set("cpu/tx-abort/", 5.0);
        set("cpu/tx-capacity/", 5.0);
        set("cpu/tx-commit/", 5.0);
        set("cpu/tx-conflict/", 5.0);
        set("cpu/tx-start/", 10.0);
        set("dTLB-load-misses", dtlb_load_misses);
        set("dTLB-loads", dtlb_loads);
        set("dTLB-store-misses", dtlb_store_misses);
        set("dTLB-stores", dtlb_stores);
        set("iTLB-load-misses", itlb_misses);
        set("iTLB-loads", itlb_loads);
        set("instructions", instr);
        set("msr/aperf/", cycles);
        set("msr/mperf/", cycles * 0.98);
        set("msr/pperf/", instr * 0.95);
        set("msr/smi/", 0.0);
        set("msr/tsc/", tsc);
        set("node-load-misses", node_load_misses);
        set("node-loads", node_loads);
        set("node-store-misses", node_store_misses);
        set("node-stores", node_stores);
        c
    }

    /// Profiles one epoch: true counts plus multiplexing/scaling noise.
    ///
    /// `final = raw × time_enabled / time_running` recovers the expected
    /// value, but the variance grows as measurement coverage shrinks; blind
    /// spots (bursts entirely missed) occasionally skew a count further.
    pub fn profile_epoch<R: Rng>(
        &self,
        sig: &WorkloadSignature,
        cores: u32,
        epoch_secs: f64,
        rng: &mut R,
    ) -> EpochProfile {
        let truth = self.true_counts(sig, cores, epoch_secs);
        let n_multiplexed = NUM_EVENTS - FIXED_EVENTS.len();
        let coverage =
            (self.generic_counters as f64 / n_multiplexed as f64).clamp(0.0, 1.0);
        let counts = EVENT_NAMES
            .iter()
            .zip(&truth)
            .map(|(&name, &t)| {
                let fixed = FIXED_EVENTS.contains(&name);
                let sigma = if fixed {
                    self.base_noise
                } else {
                    self.base_noise + self.multiplex_noise * (1.0 - coverage).sqrt()
                };
                // Two-uniform approximation of Gaussian multiplicative noise.
                let g = rng.gen::<f64>() + rng.gen::<f64>() - 1.0;
                let mut v = t * (1.0 + sigma * g * 1.7);
                if !fixed && rng.gen::<f64>() < self.blind_spot_prob {
                    // Burst missed: scaling extrapolates from a quiet window.
                    v *= rng.gen_range(0.6..1.4);
                }
                v.max(0.0)
            })
            .collect();
        EpochProfile { counts }
    }

    /// Fallible variant of [`Profiler::profile_epoch`] for environments
    /// with injected counter faults. When `counter_fault` is set the read
    /// fails with [`crate::PerfmonError::CounterRead`] *without consuming any RNG
    /// draws*, so a caller that retries next epoch sees the same noise
    /// stream it would have seen profiling that epoch directly.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PerfmonError::CounterRead`] when `counter_fault` is set.
    pub fn try_profile_epoch<R: Rng>(
        &self,
        sig: &WorkloadSignature,
        cores: u32,
        epoch_secs: f64,
        rng: &mut R,
        epoch: u32,
        counter_fault: bool,
    ) -> Result<EpochProfile, crate::PerfmonError> {
        if counter_fault {
            return Err(crate::PerfmonError::CounterRead { epoch });
        }
        Ok(self.profile_epoch(sig, cores, epoch_secs, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cnn_sig() -> WorkloadSignature {
        WorkloadSignature {
            flops_per_epoch: 1e10,
            working_set_bytes: 3e8,
            memory_intensity: 1.2,
            branch_ratio: 0.12,
        }
    }

    fn lstm_sig() -> WorkloadSignature {
        WorkloadSignature {
            flops_per_epoch: 4e10,
            working_set_bytes: 6e8,
            memory_intensity: 0.9,
            branch_ratio: 0.16,
        }
    }

    #[test]
    fn try_profile_fault_fails_without_consuming_rng() {
        let p = Profiler::default();
        let sig = cnn_sig();
        let mut rng_a = StdRng::seed_from_u64(9);
        let err = p.try_profile_epoch(&sig, 8, 60.0, &mut rng_a, 3, true).expect_err("fault");
        assert_eq!(err, crate::PerfmonError::CounterRead { epoch: 3 });
        // The failed read consumed nothing: the retry sees the same noise
        // stream a fresh profiler call would.
        let retry = p.try_profile_epoch(&sig, 8, 60.0, &mut rng_a, 4, false).unwrap();
        let mut rng_b = StdRng::seed_from_u64(9);
        assert_eq!(retry, p.profile_epoch(&sig, 8, 60.0, &mut rng_b));
    }

    #[test]
    fn profiles_repeat_across_epochs_fig2() {
        // Fig. 2's observation: events repeat with the same occurrence every
        // epoch. Relative spread across epochs should be small.
        let p = Profiler::default();
        let mut rng = StdRng::seed_from_u64(1);
        let profiles: Vec<EpochProfile> =
            (0..10).map(|_| p.profile_epoch(&cnn_sig(), 16, 120.0, &mut rng)).collect();
        let idx = crate::event_index("L1-dcache-loads").unwrap();
        let vals: Vec<f64> = profiles.iter().map(|pr| pr.counts()[idx]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let sd =
            (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt();
        assert!(sd / mean < 0.20, "relative spread {}", sd / mean);
    }

    #[test]
    fn different_workloads_are_distinguishable() {
        let p = Profiler::default();
        let mut rng = StdRng::seed_from_u64(2);
        let a1 = p.profile_epoch(&cnn_sig(), 16, 120.0, &mut rng);
        let a2 = p.profile_epoch(&cnn_sig(), 16, 120.0, &mut rng);
        let b = p.profile_epoch(&lstm_sig(), 16, 120.0, &mut rng);
        assert!(
            a1.distance(&b) > 3.0 * a1.distance(&a2),
            "inter {} should dwarf intra {}",
            a1.distance(&b),
            a1.distance(&a2)
        );
    }

    #[test]
    fn fixed_counters_are_nearly_exact() {
        let p = Profiler::default();
        let truth = p.true_counts(&cnn_sig(), 8, 60.0);
        let mut rng = StdRng::seed_from_u64(3);
        let prof = p.profile_epoch(&cnn_sig(), 8, 60.0, &mut rng);
        let i = crate::event_index("instructions").unwrap();
        let rel = (prof.counts()[i] - truth[i]).abs() / truth[i];
        assert!(rel < 0.05, "instructions error {rel}");
    }

    #[test]
    fn counts_are_never_negative_and_consistent() {
        let p = Profiler::default();
        let mut rng = StdRng::seed_from_u64(4);
        let prof = p.profile_epoch(&lstm_sig(), 4, 10.0, &mut rng);
        assert!(prof.counts().iter().all(|&c| c >= 0.0));
        // Derived sanity: misses never exceed accesses (true counts).
        let t = p.true_counts(&lstm_sig(), 4, 10.0);
        let loads = t[crate::event_index("L1-dcache-loads").unwrap()];
        let misses = t[crate::event_index("L1-dcache-load-misses").unwrap()];
        assert!(misses < loads);
        let br = t[crate::event_index("branches").unwrap()];
        let brm = t[crate::event_index("branch-misses").unwrap()];
        assert!(brm < br);
    }

    #[test]
    fn features_are_finite_ratios() {
        let p = Profiler::default();
        let mut rng = StdRng::seed_from_u64(5);
        let prof = p.profile_epoch(&cnn_sig(), 8, 60.0, &mut rng);
        let f = prof.features();
        assert_eq!(f.len(), NUM_EVENTS);
        assert!(f.iter().all(|v: &f64| v.is_finite()));
    }

    #[test]
    fn tsc_measures_wall_duration() {
        let p = Profiler::default();
        let t1 = p.true_counts(&cnn_sig(), 4, 10.0);
        let t2 = p.true_counts(&cnn_sig(), 8, 20.0);
        let i = crate::event_index("msr/tsc/").unwrap();
        // One reference clock: doubling duration doubles TSC; cores don't.
        assert!((t2[i] / t1[i] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn numa_traffic_appears_beyond_one_socket() {
        let p = Profiler::default();
        let small = p.true_counts(&cnn_sig(), 8, 60.0);
        let big = p.true_counts(&cnn_sig(), 16, 60.0);
        let i = crate::event_index("node-loads").unwrap();
        assert!(big[i] > small[i] * 3.0);
    }
}
