//! Typed profiler failures.
//!
//! Real PMU reads fail: `perf_event_open` can lose its file descriptor when
//! a node is drained, counters return `EBADF`/`ENODEV` mid-run after CPU
//! hotplug, and RDPMC faults under migration. The middleware treats these as
//! *transient* — the epoch's training is fine, only its measurement is lost
//! — so the error carries enough context to re-profile and is distinct from
//! substrate errors that poison the trial.

use std::error::Error;
use std::fmt;

/// A profiler-side failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfmonError {
    /// A hardware counter read failed transiently during the given epoch;
    /// the profile for that epoch is unusable and must be re-collected.
    CounterRead {
        /// 1-based epoch index whose measurement was lost.
        epoch: u32,
    },
}

impl fmt::Display for PerfmonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfmonError::CounterRead { epoch } => {
                write!(f, "transient counter read failure during epoch {epoch}")
            }
        }
    }
}

impl Error for PerfmonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_the_lost_epoch() {
        let e = PerfmonError::CounterRead { epoch: 7 };
        assert!(e.to_string().contains("epoch 7"));
        assert!(e.to_string().contains("counter read"));
    }
}
