//! Correlated-event filtering.
//!
//! §5.3: "we filter out highly correlated as well as unsupported events" —
//! with only 2 generic counters, every multiplexed event costs coverage, so
//! events carrying duplicate information should not be scheduled at all.
//! This module computes pairwise Pearson correlations over a set of profiles
//! and greedily keeps a maximal subset with no pair above a threshold.

use crate::EpochProfile;

/// Pearson correlation of two equal-length series; 0 for degenerate input.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 2 {
        return 0.0;
    }
    let mean = |s: &[f64]| s.iter().take(n).sum::<f64>() / n as f64;
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let (da, db) = (a[i] - ma, b[i] - mb);
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Greedily selects event indices whose pairwise |correlation| across
/// `profiles` stays at or below `threshold`. Events are considered in index
/// order, so the stable `EVENT_NAMES` ordering decides ties (matching the
/// deterministic filtering a real deployment would pin down once).
///
/// Returns the retained indices; constant (zero-variance) events are kept —
/// they are uncorrelated by definition and cost nothing to model.
pub fn decorrelated_events(profiles: &[EpochProfile], threshold: f64) -> Vec<usize> {
    if profiles.is_empty() {
        return (0..crate::NUM_EVENTS).collect();
    }
    let n_events = crate::NUM_EVENTS;
    // Column-major series per event.
    let series: Vec<Vec<f64>> = (0..n_events)
        .map(|e| profiles.iter().map(|p| p.counts()[e]).collect())
        .collect();
    let mut kept: Vec<usize> = Vec::new();
    for e in 0..n_events {
        let ok = kept
            .iter()
            .all(|&k| pearson(&series[e], &series[k]).abs() <= threshold);
        if ok {
            kept.push(e);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Profiler, WorkloadSignature};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pearson_matches_known_cases() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn filter_drops_the_duplicated_perf_aliases() {
        // Profiles across varied signatures: `cpu/instructions/` duplicates
        // `instructions` exactly (same counter), so one of the pair must go.
        let profiler = Profiler { base_noise: 0.0, multiplex_noise: 0.0, blind_spot_prob: 0.0, ..Profiler::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let profiles: Vec<EpochProfile> = (1..12)
            .map(|i| {
                let sig = WorkloadSignature {
                    flops_per_epoch: 1e10 * f64::from(i),
                    working_set_bytes: 1e8 * f64::from(i % 4 + 1),
                    memory_intensity: 0.3 + 0.2 * f64::from(i % 3),
                    branch_ratio: 0.05 + 0.02 * f64::from(i % 5),
                };
                profiler.profile_epoch(&sig, 8, 60.0, &mut rng)
            })
            .collect();
        let kept = decorrelated_events(&profiles, 0.999);
        let instr = crate::event_index("instructions").unwrap();
        let alias = crate::event_index("cpu/instructions/").unwrap();
        assert!(
            !(kept.contains(&instr) && kept.contains(&alias)),
            "exact aliases must not both survive"
        );
        assert!(!kept.is_empty());
        assert!(kept.len() < crate::NUM_EVENTS, "something must be filtered");
    }

    #[test]
    fn zero_threshold_keeps_only_uncorrelated_events() {
        let profiler = Profiler::default();
        let mut rng = StdRng::seed_from_u64(2);
        let profiles: Vec<EpochProfile> = (1..8)
            .map(|i| {
                let sig = WorkloadSignature {
                    flops_per_epoch: 1e10 * f64::from(i),
                    working_set_bytes: 3e8,
                    memory_intensity: 0.5,
                    branch_ratio: 0.1,
                };
                profiler.profile_epoch(&sig, 8, 60.0, &mut rng)
            })
            .collect();
        let strict = decorrelated_events(&profiles, 0.0);
        let loose = decorrelated_events(&profiles, 1.0);
        assert!(strict.len() <= loose.len());
        assert_eq!(loose.len(), crate::NUM_EVENTS);
    }

    #[test]
    fn empty_history_keeps_everything() {
        assert_eq!(decorrelated_events(&[], 0.5).len(), crate::NUM_EVENTS);
    }
}
