//! The 58 hardware events of the paper's Fig. 2 heatmap.

/// Number of simulated events.
pub const NUM_EVENTS: usize = 58;

/// Event names exactly as they appear on the Fig. 2 y-axis (perf syntax).
pub const EVENT_NAMES: [&str; NUM_EVENTS] = [
    "L1-dcache-load-misses",
    "L1-dcache-loads",
    "L1-dcache-stores",
    "L1-icache-load-misses",
    "LLC-load-misses",
    "LLC-loads",
    "LLC-store-misses",
    "LLC-stores",
    "branch-load-misses",
    "branch-loads",
    "branch-misses",
    "branches",
    "bus-cycles",
    "cache-misses",
    "cache-references",
    "cpu-cycles",
    "cpu/branch-instructions/",
    "cpu/branch-misses/",
    "cpu/bus-cycles/",
    "cpu/cache-misses/",
    "cpu/cache-references/",
    "cpu/cpu-cycles/",
    "cpu/cycles-ct/",
    "cpu/cycles-t/",
    "cpu/el-abort/",
    "cpu/el-capacity/",
    "cpu/el-commit/",
    "cpu/el-conflict/",
    "cpu/el-start/",
    "cpu/instructions/",
    "cpu/mem-loads/",
    "cpu/mem-stores/",
    "cpu/topdown-fetch-bubbles/",
    "cpu/topdown-recovery-bubbles/",
    "cpu/topdown-slots-issued/",
    "cpu/topdown-slots-retired/",
    "cpu/topdown-total-slots/",
    "cpu/tx-abort/",
    "cpu/tx-capacity/",
    "cpu/tx-commit/",
    "cpu/tx-conflict/",
    "cpu/tx-start/",
    "dTLB-load-misses",
    "dTLB-loads",
    "dTLB-store-misses",
    "dTLB-stores",
    "iTLB-load-misses",
    "iTLB-loads",
    "instructions",
    "msr/aperf/",
    "msr/mperf/",
    "msr/pperf/",
    "msr/smi/",
    "msr/tsc/",
    "node-load-misses",
    "node-loads",
    "node-store-misses",
    "node-stores",
];

/// Index of an event name, if it is one of the 58.
pub fn event_index(name: &str) -> Option<usize> {
    EVENT_NAMES.iter().position(|&n| n == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_58_unique_events() {
        let mut names: Vec<&str> = EVENT_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_EVENTS);
    }

    #[test]
    fn lookup_round_trips() {
        for (i, name) in EVENT_NAMES.iter().enumerate() {
            assert_eq!(event_index(name), Some(i));
        }
        assert_eq!(event_index("not-an-event"), None);
    }
}
