//! Per-second sampling and the multiplexing schedule.
//!
//! The paper's prototype "measures the events of interest every second" and
//! "stores the average of results during each epoch's time window" (§5.3).
//! [`Profiler::profile_epoch`] produces that final average directly; this
//! module exposes the layer underneath — the 1 Hz sample stream and the
//! round-robin counter-multiplexing schedule — so the sampling pipeline
//! itself can be inspected, tested and ablated (blind spots included).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::events::NUM_EVENTS;
use crate::{EpochProfile, Profiler, WorkloadSignature};

/// Which events a counter window measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleWindow {
    /// Window start, seconds from epoch start.
    pub at_secs: f64,
    /// Event indices measured during this window (fixed counters plus the
    /// generic counters' current round-robin slice).
    pub measured: Vec<usize>,
    /// Raw counts for the measured events over this window.
    pub raw: Vec<f64>,
}

/// A full epoch's 1 Hz sample trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleTrace {
    windows: Vec<SampleWindow>,
    epoch_secs: f64,
}

impl SampleTrace {
    /// The sampled windows, in time order.
    pub fn windows(&self) -> &[SampleWindow] {
        &self.windows
    }

    /// Epoch duration the trace covers, seconds.
    pub fn epoch_secs(&self) -> f64 {
        self.epoch_secs
    }

    /// Fraction of the epoch each event was actually measured
    /// (`time_running / time_enabled` in perf terms).
    pub fn coverage(&self) -> Vec<f64> {
        let mut measured = vec![0usize; NUM_EVENTS];
        for w in &self.windows {
            for &e in &w.measured {
                measured[e] += 1;
            }
        }
        let n = self.windows.len().max(1);
        measured.iter().map(|&m| m as f64 / n as f64).collect()
    }

    /// Reconstructs per-epoch counts with the kernel's multiplexing scaling:
    /// `final = raw × time_enabled / time_running`. Events never measured
    /// come out as zero — a true blind spot.
    pub fn scale_to_epoch(&self) -> EpochProfile {
        let mut raw_sum = vec![0.0f64; NUM_EVENTS];
        let mut seen = vec![0usize; NUM_EVENTS];
        for w in &self.windows {
            for (&e, &r) in w.measured.iter().zip(&w.raw) {
                raw_sum[e] += r;
                seen[e] += 1;
            }
        }
        let n = self.windows.len().max(1);
        let counts: Vec<f64> = raw_sum
            .iter()
            .zip(&seen)
            .map(|(&sum, &s)| if s == 0 { 0.0 } else { sum * (n as f64 / s as f64) })
            .collect();
        EpochProfile::from_counts(counts)
    }
}

impl Profiler {
    /// Samples one epoch at 1 Hz with round-robin multiplexing of the
    /// generic counters (fixed counters measure every window).
    ///
    /// Short epochs produce few windows, so some events may never be
    /// scheduled — the §5.3 blind-spot risk that Type-III workloads stress.
    pub fn sample_epoch<R: Rng>(
        &self,
        sig: &WorkloadSignature,
        cores: u32,
        epoch_secs: f64,
        rng: &mut R,
    ) -> SampleTrace {
        let truth = self.true_counts(sig, cores, epoch_secs);
        let n_windows = (epoch_secs.max(1.0).floor() as usize).max(1);
        let fixed: Vec<usize> = crate::profiler::fixed_event_indices();
        let generic: Vec<usize> =
            (0..NUM_EVENTS).filter(|i| !fixed.contains(i)).collect();
        let per_window = self.generic_counters.max(1);
        let mut windows = Vec::with_capacity(n_windows);
        let mut cursor = 0usize;
        for w in 0..n_windows {
            let mut measured = fixed.clone();
            for _ in 0..per_window {
                measured.push(generic[cursor % generic.len()]);
                cursor += 1;
            }
            let raw = measured
                .iter()
                .map(|&e| {
                    // Per-window share of the epoch total, with burst noise.
                    let g = rng.gen::<f64>() + rng.gen::<f64>() - 1.0;
                    (truth[e] / n_windows as f64 * (1.0 + 0.1 * g * 1.7)).max(0.0)
                })
                .collect();
            windows.push(SampleWindow { at_secs: w as f64, measured, raw });
        }
        SampleTrace { windows, epoch_secs }
    }

    /// Fallible variant of [`Profiler::sample_epoch`] mirroring
    /// [`Profiler::try_profile_epoch`]: an injected counter fault aborts the
    /// whole 1 Hz trace (the perf session died mid-epoch) without consuming
    /// RNG draws.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PerfmonError::CounterRead`] when `counter_fault` is
    /// set.
    pub fn try_sample_epoch<R: Rng>(
        &self,
        sig: &WorkloadSignature,
        cores: u32,
        epoch_secs: f64,
        rng: &mut R,
        epoch: u32,
        counter_fault: bool,
    ) -> Result<SampleTrace, crate::PerfmonError> {
        if counter_fault {
            return Err(crate::PerfmonError::CounterRead { epoch });
        }
        Ok(self.sample_epoch(sig, cores, epoch_secs, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sig() -> WorkloadSignature {
        WorkloadSignature {
            flops_per_epoch: 1e10,
            working_set_bytes: 3e8,
            memory_intensity: 0.8,
            branch_ratio: 0.1,
        }
    }

    #[test]
    fn long_epochs_cover_every_event() {
        let p = Profiler::default();
        let mut rng = StdRng::seed_from_u64(1);
        // 58 events, 6 fixed, 2 generic per second → 26 s covers the rest.
        let trace = p.sample_epoch(&sig(), 8, 120.0, &mut rng);
        assert_eq!(trace.windows().len(), 120);
        assert!(trace.coverage().iter().all(|&c| c > 0.0), "everything measured at least once");
    }

    #[test]
    fn short_epochs_leave_blind_spots() {
        let p = Profiler::default();
        let mut rng = StdRng::seed_from_u64(2);
        // 3 windows × 2 generic counters = 6 of 52 generic events measured.
        let trace = p.sample_epoch(&sig(), 8, 3.0, &mut rng);
        let blind = trace.coverage().iter().filter(|&&c| c == 0.0).count();
        assert!(blind > 30, "short epochs must miss most events, missed {blind}");
    }

    #[test]
    fn scaling_recovers_the_expected_magnitude() {
        let p = Profiler::default();
        let mut rng = StdRng::seed_from_u64(3);
        let trace = p.sample_epoch(&sig(), 8, 120.0, &mut rng);
        let scaled = trace.scale_to_epoch();
        let truth = p.true_counts(&sig(), 8, 120.0);
        let i = crate::event_index("L1-dcache-loads").unwrap();
        let rel = (scaled.counts()[i] - truth[i]).abs() / truth[i];
        assert!(rel < 0.25, "scaled estimate off by {rel}");
    }

    #[test]
    fn fixed_counters_measure_every_window() {
        let p = Profiler::default();
        let mut rng = StdRng::seed_from_u64(4);
        let trace = p.sample_epoch(&sig(), 8, 10.0, &mut rng);
        let i = crate::event_index("instructions").unwrap();
        assert!(trace.windows().iter().all(|w| w.measured.contains(&i)));
        assert_eq!(trace.coverage()[i], 1.0);
    }

    #[test]
    fn scaled_profile_features_are_usable() {
        let p = Profiler::default();
        let mut rng = StdRng::seed_from_u64(5);
        let trace = p.sample_epoch(&sig(), 8, 60.0, &mut rng);
        let f = trace.scale_to_epoch().features();
        assert_eq!(f.len(), NUM_EVENTS);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
