//! Telemetry adapters for the simulated PMU: canonical metric names for
//! profiling and sampling, and helpers recording them into a
//! [`MetricsRegistry`].
//!
//! The profiler itself stays a pure function of its inputs; the middleware
//! calls these helpers after a profile or sample trace is collected, from
//! within the per-trial telemetry buffer, so recording stays deterministic.

use pipetune_telemetry::{MetricsRegistry, RATIO_BUCKETS};

use crate::profiler::EpochProfile;
use crate::sampling::SampleTrace;

pipetune_telemetry::metric_names! {
    /// Counter: first-epoch profiles collected (closed-form or sampled).
    pub const PROFILES_COLLECTED = "perfmon.profiles";
    /// Counter: profile/probe measurements lost to counter faults.
    pub const PROFILES_LOST = "perfmon.lost_reads";
    /// Histogram: per-event sampling coverage (`time_running/time_enabled`)
    /// of a 1 Hz sample trace; 1.0 means the event was never multiplexed out.
    pub const SAMPLING_COVERAGE = "perfmon.sampling_coverage";
    /// Counter: sample windows recorded by the 1 Hz pipeline.
    pub const SAMPLING_WINDOWS = "perfmon.sampling_windows";
}

/// Records a collected first-epoch profile.
pub fn record_profile(_profile: &EpochProfile, metrics: &mut MetricsRegistry) {
    metrics.counter_add(PROFILES_COLLECTED, 1);
}

/// Records a measurement lost to a transient counter fault.
pub fn record_lost_read(metrics: &mut MetricsRegistry) {
    metrics.counter_add(PROFILES_LOST, 1);
}

/// Records a 1 Hz sample trace: window count plus the per-event coverage
/// distribution (multiplexing blind spots show up as coverage below 1).
pub fn record_sample_trace(trace: &SampleTrace, metrics: &mut MetricsRegistry) {
    metrics.counter_add(SAMPLING_WINDOWS, trace.windows().len() as u64);
    for coverage in trace.coverage() {
        metrics.observe(SAMPLING_COVERAGE, RATIO_BUCKETS, coverage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Profiler, WorkloadSignature};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn signature() -> WorkloadSignature {
        WorkloadSignature {
            flops_per_epoch: 1e10,
            working_set_bytes: 2e8,
            memory_intensity: 0.5,
            branch_ratio: 0.1,
        }
    }

    #[test]
    fn profile_and_lost_read_counters_tick() {
        let profiler = Profiler::default();
        let mut rng = StdRng::seed_from_u64(0);
        let profile = profiler.profile_epoch(&signature(), 8, 60.0, &mut rng);
        let mut m = MetricsRegistry::new();
        record_profile(&profile, &mut m);
        record_lost_read(&mut m);
        assert_eq!(m.counter(PROFILES_COLLECTED), 1);
        assert_eq!(m.counter(PROFILES_LOST), 1);
    }

    #[test]
    fn sample_trace_records_windows_and_coverage() {
        let profiler = Profiler::default();
        let mut rng = StdRng::seed_from_u64(1);
        let trace = profiler.sample_epoch(&signature(), 8, 30.0, &mut rng);
        let mut m = MetricsRegistry::new();
        record_sample_trace(&trace, &mut m);
        assert_eq!(m.counter(SAMPLING_WINDOWS), trace.windows().len() as u64);
        let h = m.histogram(SAMPLING_COVERAGE).unwrap();
        assert_eq!(h.count() as usize, trace.coverage().len());
        assert!(h.max() <= 1.0 + 1e-9);
    }
}
