//! Simulated performance-monitoring unit (PMU).
//!
//! PipeTune's profiling phase (§5.3) reads 58 hardware events through Linux
//! `perf`, at one sample per second, averaged per epoch. Real counters are
//! unavailable here, so this crate simulates the whole pipeline:
//!
//! * the [`EVENT_NAMES`] list reproduces the 58 events of Fig. 2;
//! * event *rates* are derived from a numeric [`WorkloadSignature`]
//!   (flops, memory intensity, branchiness, working-set size), so different
//!   models/datasets produce genuinely different, repeatable profiles — the
//!   property the ground-truth clustering depends on;
//! * Intel-style counter **multiplexing** is modelled: 3 fixed + 2 generic
//!   counters time-share the remaining events, and missed windows are scaled
//!   by `final = raw × time_enabled / time_running` exactly as the paper
//!   describes, including the estimation error that scaling introduces.
//!
//! # Example
//!
//! ```
//! use pipetune_perfmon::{Profiler, WorkloadSignature};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let profiler = Profiler::default();
//! let sig = WorkloadSignature {
//!     flops_per_epoch: 1e10,
//!     working_set_bytes: 2e8,
//!     memory_intensity: 0.5,
//!     branch_ratio: 0.1,
//! };
//! let mut rng = StdRng::seed_from_u64(0);
//! let profile = profiler.profile_epoch(&sig, 8, 60.0, &mut rng);
//! assert_eq!(profile.counts().len(), pipetune_perfmon::NUM_EVENTS);
//! ```

#![warn(missing_docs)]

mod error;
mod events;
mod filter;
pub mod observe;
mod profiler;
mod sampling;

pub use error::PerfmonError;
pub use events::{event_index, EVENT_NAMES, NUM_EVENTS};
pub use filter::{decorrelated_events, pearson};
pub use profiler::{EpochProfile, Profiler, WorkloadSignature};
pub use sampling::{SampleTrace, SampleWindow};
