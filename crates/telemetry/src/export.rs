//! Exporters: deterministic JSON, tsdb line protocol and the end-of-run
//! summary table — plus the JSON *importer*
//! ([`TelemetrySnapshot::from_json_str`]) that turns a trace dump back into
//! a snapshot for offline analysis.
//!
//! All exporters are pure functions of a [`TelemetrySnapshot`], so two
//! byte-identical runs export byte-identical artefacts — the property the
//! telemetry determinism suite asserts across executor worker counts. The
//! importer is the exporter's inverse up to bytes: export → parse → export
//! is byte-identical (pinned by a property test below).

use pipetune_tsdb::Point;
use serde_json::Value;

use crate::handle::TelemetrySnapshot;
use crate::metrics::MetricsRegistry;
use crate::span::{AttrValue, Attrs, Event, EventKind, Span, SpanKind};
use crate::validate::TraceError;

/// Alias under which the JSON trace artefact is documented: a trace dump
/// *is* a serialised [`TelemetrySnapshot`].
pub type TraceExport = TelemetrySnapshot;

fn attrs_json(attrs: &Attrs) -> Value {
    let mut obj = serde_json::Map::new();
    for (key, value) in attrs {
        obj.insert((*key).to_string(), value.to_json());
    }
    Value::Object(obj)
}

fn span_json(id: usize, span: &Span) -> Value {
    let mut obj = serde_json::Map::new();
    obj.insert("id".into(), Value::U64(id as u64));
    obj.insert("kind".into(), Value::String(span.kind.name().into()));
    obj.insert("label".into(), Value::String(span.label.clone()));
    obj.insert(
        "parent".into(),
        span.parent.map_or(Value::Null, |p| Value::U64(u64::from(p))),
    );
    obj.insert("start_secs".into(), Value::F64(span.start_secs));
    // Open spans carry NaN, which JSON cannot represent; export null.
    obj.insert(
        "end_secs".into(),
        if span.end_secs.is_finite() { Value::F64(span.end_secs) } else { Value::Null },
    );
    obj.insert("attrs".into(), attrs_json(&span.attrs));
    Value::Object(obj)
}

fn event_json(event: &Event) -> Value {
    let mut obj = serde_json::Map::new();
    obj.insert("kind".into(), Value::String(event.kind.name().into()));
    obj.insert(
        "span".into(),
        event.span.map_or(Value::Null, |s| Value::U64(u64::from(s))),
    );
    obj.insert("at_secs".into(), Value::F64(event.at_secs));
    obj.insert("attrs".into(), attrs_json(&event.attrs));
    Value::Object(obj)
}

/// Interns an attribute key: [`Attrs`] keys are `&'static str` (recording
/// sites use literals), so re-imported keys are leaked once per *unique*
/// key into a shared table. The trace vocabulary is a small fixed set, so
/// the table — and the leak — stays bounded no matter how many traces a
/// process parses.
fn intern(key: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = INTERNED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = table.get(key) {
        return existing;
    }
    let leaked: &'static str = Box::leak(key.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

fn parse_error(reason: impl Into<String>) -> TraceError {
    TraceError::Parse { reason: reason.into() }
}

/// Inverse of [`attrs_json`]. Integer attributes re-import as
/// [`AttrValue::U64`] when non-negative (JSON does not distinguish
/// signedness); `null` attributes re-import as [`AttrValue::F64`] NaN (the
/// only value that exports as `null`). Both normalisations re-export to the
/// same bytes.
fn attrs_from_json(value: &Value, what: &str) -> Result<Attrs, TraceError> {
    let obj = value
        .as_object()
        .ok_or_else(|| parse_error(format!("{what}: attrs must be an object")))?;
    let mut attrs = Attrs::new();
    for (key, v) in obj {
        let attr = match v {
            Value::Bool(b) => AttrValue::Bool(*b),
            Value::String(s) => AttrValue::Str(s.clone()),
            Value::U64(u) => AttrValue::U64(*u),
            Value::I64(i) if *i >= 0 => AttrValue::U64(*i as u64),
            Value::I64(i) => AttrValue::I64(*i),
            Value::F64(f) => AttrValue::F64(*f),
            Value::Null => AttrValue::F64(f64::NAN),
            Value::Array(_) | Value::Object(_) => {
                return Err(parse_error(format!("{what}: attr {key} has a non-scalar value")))
            }
        };
        attrs.push((intern(key), attr));
    }
    Ok(attrs)
}

fn span_from_json(idx: usize, value: &Value) -> Result<Span, TraceError> {
    let what = format!("span {idx}");
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .and_then(SpanKind::from_name)
        .ok_or_else(|| parse_error(format!("{what}: missing or unknown kind")))?;
    let label = value
        .get("label")
        .and_then(Value::as_str)
        .ok_or_else(|| parse_error(format!("{what}: missing label")))?
        .to_string();
    let parent = match value.get("parent") {
        None | Some(Value::Null) => None,
        Some(p) => Some(
            p.as_u64()
                .and_then(|p| u32::try_from(p).ok())
                .ok_or_else(|| parse_error(format!("{what}: parent must be a u32")))?,
        ),
    };
    let start_secs = value
        .get("start_secs")
        .and_then(Value::as_f64)
        .ok_or_else(|| parse_error(format!("{what}: missing start_secs")))?;
    // An open span exports `null`; re-import restores the NaN sentinel.
    let end_secs = match value.get("end_secs") {
        None | Some(Value::Null) => f64::NAN,
        Some(e) => e
            .as_f64()
            .ok_or_else(|| parse_error(format!("{what}: end_secs must be a number")))?,
    };
    let attrs = attrs_from_json(
        value.get("attrs").unwrap_or(&Value::Object(serde_json::Map::new())),
        &what,
    )?;
    Ok(Span { kind, label, parent, start_secs, end_secs, attrs })
}

fn event_from_json(idx: usize, value: &Value) -> Result<Event, TraceError> {
    let what = format!("event {idx}");
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .and_then(EventKind::from_name)
        .ok_or_else(|| parse_error(format!("{what}: missing or unknown kind")))?;
    let span = match value.get("span") {
        None | Some(Value::Null) => None,
        Some(s) => Some(
            s.as_u64()
                .and_then(|s| u32::try_from(s).ok())
                .ok_or_else(|| parse_error(format!("{what}: span must be a u32")))?,
        ),
    };
    let at_secs = value
        .get("at_secs")
        .and_then(Value::as_f64)
        .ok_or_else(|| parse_error(format!("{what}: missing at_secs")))?;
    let attrs = attrs_from_json(
        value.get("attrs").unwrap_or(&Value::Object(serde_json::Map::new())),
        &what,
    )?;
    Ok(Event { kind, span, at_secs, attrs })
}

/// Microsecond timestamp for a simulated-seconds instant (clamped at 0).
fn timestamp_us(secs: f64) -> u64 {
    if secs.is_finite() && secs > 0.0 {
        (secs * 1e6) as u64
    } else {
        0
    }
}

impl TelemetrySnapshot {
    /// The full snapshot (spans, events, metrics) as one JSON value with
    /// sorted object keys throughout.
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("version".into(), Value::U64(1));
        obj.insert(
            "spans".into(),
            Value::Array(
                self.spans.iter().enumerate().map(|(i, s)| span_json(i, s)).collect(),
            ),
        );
        obj.insert(
            "events".into(),
            Value::Array(self.events.iter().map(event_json).collect()),
        );
        obj.insert("metrics".into(), self.metrics.to_json());
        Value::Object(obj)
    }

    /// The snapshot as a pretty-printed JSON string (the trace-dump
    /// artefact format).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json())
            .expect("telemetry snapshot serialises infallibly")
    }

    /// Parses a JSON trace dump (the [`TelemetrySnapshot::to_json_string`]
    /// format) back into a snapshot — the importer `pipetune-trace` and the
    /// insight analyses are built on.
    ///
    /// Exact inverse up to bytes: `export → parse → export` is
    /// byte-identical. Two normalisations happen on the way in (neither
    /// changes the re-exported bytes): non-negative integer attributes
    /// become [`AttrValue::U64`], and `null` floats become NaN.
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] on malformed JSON, an unknown span/event kind,
    /// an unsupported version, or a shape mismatch. Structural problems
    /// (orphan parents, inverted intervals) are *not* checked here — run
    /// [`TelemetrySnapshot::validate`] on the result.
    ///
    /// # Example
    ///
    /// ```
    /// use pipetune_telemetry::{SpanId, SpanKind, TelemetryHandle, TelemetrySnapshot};
    ///
    /// let telemetry = TelemetryHandle::enabled();
    /// let run = telemetry.open_span(SpanId::NONE, SpanKind::TuningRun, "job", 0.0, vec![]);
    /// telemetry.close_span(run, 3.5);
    /// let text = telemetry.snapshot().unwrap().to_json_string();
    ///
    /// let parsed = TelemetrySnapshot::from_json_str(&text).unwrap();
    /// assert_eq!(parsed.to_json_string(), text);
    /// ```
    pub fn from_json_str(text: &str) -> Result<Self, TraceError> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| parse_error(e.to_string()))?;
        Self::from_json(&value)
    }

    /// Structured-value variant of [`TelemetrySnapshot::from_json_str`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] on shape mismatches (see
    /// [`TelemetrySnapshot::from_json_str`]).
    pub fn from_json(value: &Value) -> Result<Self, TraceError> {
        match value.get("version").and_then(Value::as_u64) {
            Some(1) => {}
            Some(v) => return Err(parse_error(format!("unsupported trace version {v}"))),
            None => return Err(parse_error("missing trace version")),
        }
        let spans = value
            .get("spans")
            .and_then(Value::as_array)
            .ok_or_else(|| parse_error("missing spans array"))?
            .iter()
            .enumerate()
            .map(|(i, s)| span_from_json(i, s))
            .collect::<Result<Vec<_>, _>>()?;
        let events = value
            .get("events")
            .and_then(Value::as_array)
            .ok_or_else(|| parse_error("missing events array"))?
            .iter()
            .enumerate()
            .map(|(i, e)| event_from_json(i, e))
            .collect::<Result<Vec<_>, _>>()?;
        let metrics = MetricsRegistry::from_json(
            value.get("metrics").ok_or_else(|| parse_error("missing metrics object"))?,
        )
        .map_err(parse_error)?;
        Ok(TelemetrySnapshot { spans, events, metrics })
    }

    /// The metrics registry alone as a compact JSON string.
    pub fn metrics_json_string(&self) -> String {
        serde_json::to_string(&self.metrics.to_json())
            .expect("metrics registry serialises infallibly")
    }

    /// The snapshot as tsdb points: one `pipetune_span` point per span
    /// (tags `kind`/`label`, fields `start_secs`/`end_secs`/
    /// `duration_secs` plus numeric attributes), one `pipetune_event`
    /// point per event, one `pipetune_counter`/`pipetune_gauge` point per
    /// metric and one `pipetune_histogram` point per histogram.
    pub fn to_points(&self) -> Vec<Point> {
        let mut points = Vec::new();
        for (id, span) in self.spans.iter().enumerate() {
            let end = if span.end_secs.is_finite() { span.end_secs } else { span.start_secs };
            let mut p = Point::new("pipetune_span", timestamp_us(span.start_secs))
                .tag("kind", span.kind.name())
                .tag("label", span.label.as_str())
                .field("span_id", id as f64)
                .field("start_secs", span.start_secs)
                .field("end_secs", end)
                .field("duration_secs", end - span.start_secs);
            for (key, value) in &span.attrs {
                match value {
                    AttrValue::Str(s) => p = p.tag(*key, s.as_str()),
                    other => {
                        if let Some(f) = other.as_field() {
                            p = p.field(*key, f);
                        }
                    }
                }
            }
            points.push(p);
        }
        for event in &self.events {
            let mut p = Point::new("pipetune_event", timestamp_us(event.at_secs))
                .tag("kind", event.kind.name())
                .field("at_secs", event.at_secs);
            if let Some(span) = event.span {
                p = p.field("span_id", f64::from(span));
            }
            for (key, value) in &event.attrs {
                match value {
                    AttrValue::Str(s) => p = p.tag(*key, s.as_str()),
                    other => {
                        if let Some(f) = other.as_field() {
                            p = p.field(*key, f);
                        }
                    }
                }
            }
            points.push(p);
        }
        for (name, value) in self.metrics.counters() {
            points.push(
                Point::new("pipetune_counter", 0).tag("name", name).field("value", value as f64),
            );
        }
        for (name, value) in self.metrics.gauges() {
            points.push(Point::new("pipetune_gauge", 0).tag("name", name).field("value", value));
        }
        for (name, hist) in self.metrics.histograms() {
            let mut p = Point::new("pipetune_histogram", 0)
                .tag("name", name)
                .field("count", hist.count() as f64)
                .field("sum", hist.sum())
                .field_vec("bucket", &hist.counts().iter().map(|&c| c as f64).collect::<Vec<_>>());
            if hist.count() > 0 {
                p = p.field("min", hist.min()).field("max", hist.max());
            }
            points.push(p);
        }
        points
    }

    /// The snapshot in InfluxDB line protocol (one line per
    /// [`TelemetrySnapshot::to_points`] point), suitable for replay into a
    /// real InfluxDB or into the embedded [`pipetune_tsdb::Database`].
    pub fn to_line_protocol(&self) -> String {
        let mut out = String::new();
        for point in self.to_points() {
            out.push_str(&point.to_line_protocol());
            out.push('\n');
        }
        out
    }

    /// The metrics registry in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers per family, families sorted by exposed
    /// name, histograms as cumulative `_bucket{le="…"}` series plus
    /// `_sum` / `_count`.
    ///
    /// Canonical dotted names sanitise to the Prometheus charset
    /// (`cache.hit` → `cache_hit`); the `# HELP` line keeps the canonical
    /// name so the mapping stays greppable. Like every exporter here the
    /// output is a pure function of the snapshot: byte-stable across
    /// calls and invariant under a JSON round trip (pinned by tests).
    ///
    /// ```
    /// use pipetune_telemetry::TelemetryHandle;
    ///
    /// let telemetry = TelemetryHandle::enabled();
    /// telemetry.counter_add("cache.hit", 3);
    /// let text = telemetry.snapshot().unwrap().to_prometheus();
    /// assert!(text.contains("# TYPE cache_hit counter"));
    /// assert!(text.contains("cache_hit 3"));
    /// ```
    pub fn to_prometheus(&self) -> String {
        fn exposed(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
                .collect()
        }
        // Prometheus spells float samples like Rust's shortest-round-trip
        // `Display`, except the infinities.
        fn sample(v: f64) -> String {
            if v == f64::INFINITY {
                "+Inf".into()
            } else if v == f64::NEG_INFINITY {
                "-Inf".into()
            } else {
                format!("{v}")
            }
        }
        let mut families: Vec<(String, String)> = Vec::new();
        for (name, value) in self.metrics.counters() {
            let p = exposed(name);
            let block = format!("# HELP {p} canonical name {name}\n# TYPE {p} counter\n{p} {value}\n");
            families.push((p, block));
        }
        for (name, value) in self.metrics.gauges() {
            let p = exposed(name);
            let block = format!(
                "# HELP {p} canonical name {name}\n# TYPE {p} gauge\n{p} {}\n",
                sample(value)
            );
            families.push((p, block));
        }
        for (name, hist) in self.metrics.histograms() {
            let p = exposed(name);
            let mut block =
                format!("# HELP {p} canonical name {name}\n# TYPE {p} histogram\n");
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds().iter().zip(hist.counts()) {
                cumulative += count;
                block.push_str(&format!(
                    "{p}_bucket{{le=\"{}\"}} {cumulative}\n",
                    sample(*bound)
                ));
            }
            block.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", hist.count()));
            block.push_str(&format!("{p}_sum {}\n", sample(hist.sum())));
            block.push_str(&format!("{p}_count {}\n", hist.count()));
            families.push((p, block));
        }
        // Stable sort: same-named families (possible only when distinct
        // canonical names sanitise to one exposed name) keep the
        // counter → gauge → histogram registry order.
        families.sort_by(|a, b| a.0.cmp(&b.0));
        families.into_iter().map(|(_, block)| block).collect()
    }

    /// The human-readable end-of-run summary: span counts per kind, then
    /// every counter, gauge and histogram in sorted order.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str("── telemetry summary ─────────────────────────────────────────\n");
        out.push_str(&format!(
            "{:<38} {:>10} {:>10}\n",
            "spans", "count", ""
        ));
        for kind in [
            crate::SpanKind::Service,
            crate::SpanKind::Job,
            crate::SpanKind::TuningRun,
            crate::SpanKind::Rung,
            crate::SpanKind::Batch,
            crate::SpanKind::Trial,
            crate::SpanKind::Epoch,
        ] {
            let n = self.spans.iter().filter(|s| s.kind == kind).count();
            if n > 0 {
                out.push_str(&format!("  {:<36} {:>10}\n", kind.name(), n));
            }
        }
        if !self.events.is_empty() {
            out.push_str(&format!("{:<38} {:>10}\n", "events", ""));
            for kind in [
                crate::EventKind::Profile,
                crate::EventKind::GtLookup,
                crate::EventKind::Probe,
                crate::EventKind::Checkpoint,
                crate::EventKind::Fault,
                crate::EventKind::Retry,
                crate::EventKind::Churn,
                crate::EventKind::Shed,
                crate::EventKind::CacheLookup,
                crate::EventKind::Alert,
            ] {
                let n = self.events.iter().filter(|e| e.kind == kind).count();
                if n > 0 {
                    out.push_str(&format!("  {:<36} {:>10}\n", kind.name(), n));
                }
            }
        }
        let counters: Vec<_> = self.metrics.counters().collect();
        if !counters.is_empty() {
            out.push_str(&format!("{:<38} {:>10}\n", "counters", ""));
            for (name, value) in counters {
                out.push_str(&format!("  {:<36} {:>10}\n", name, value));
            }
        }
        let gauges: Vec<_> = self.metrics.gauges().collect();
        if !gauges.is_empty() {
            out.push_str(&format!("{:<38} {:>10}\n", "gauges", ""));
            for (name, value) in gauges {
                out.push_str(&format!("  {:<36} {:>10.4}\n", name, value));
            }
        }
        let hists: Vec<_> = self.metrics.histograms().collect();
        if !hists.is_empty() {
            out.push_str(&format!(
                "{:<38} {:>8} {:>10} {:>10} {:>10}\n",
                "histograms", "count", "mean", "p90≤", "max"
            ));
            for (name, h) in hists {
                out.push_str(&format!(
                    "  {:<36} {:>8} {:>10.3} {:>10.3} {:>10.3}\n",
                    name,
                    h.count(),
                    h.mean(),
                    h.quantile_bound(0.9),
                    if h.count() > 0 { h.max() } else { 0.0 },
                ));
            }
        }
        out.push_str("──────────────────────────────────────────────────────────────\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, COUNT_BUCKETS};
    use crate::span::{EventKind, SpanKind};

    fn snapshot() -> TelemetrySnapshot {
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("epochs.total", 12);
        metrics.gauge_set("gt.hit_rate", 0.5);
        metrics.observe("executor.batch_trials", COUNT_BUCKETS, 3.0);
        TelemetrySnapshot {
            spans: vec![
                Span {
                    kind: SpanKind::TuningRun,
                    label: "lenet/mnist".into(),
                    parent: None,
                    start_secs: 0.0,
                    end_secs: 100.0,
                    attrs: vec![("seed", AttrValue::U64(42))],
                },
                Span {
                    kind: SpanKind::Epoch,
                    label: "epoch 1/profile".into(),
                    parent: Some(0),
                    start_secs: 0.0,
                    end_secs: f64::NAN,
                    attrs: vec![("system", AttrValue::Str("8c/32GB".into()))],
                },
            ],
            events: vec![Event {
                kind: EventKind::GtLookup,
                span: Some(1),
                at_secs: 10.0,
                attrs: vec![("hit", AttrValue::Bool(false))],
            }],
            metrics,
        }
    }

    #[test]
    fn json_export_is_deterministic_and_handles_open_spans() {
        let snap = snapshot();
        let a = snap.to_json_string();
        let b = snap.to_json_string();
        assert_eq!(a, b);
        assert!(a.contains("\"end_secs\": null"), "open span exports null end");
        assert!(a.contains("\"tuning_run\""));
        assert!(a.contains("\"gt_lookup\""));
        assert!(a.contains("\"epochs.total\""));
    }

    #[test]
    fn tsdb_export_maps_spans_events_and_metrics() {
        let snap = snapshot();
        let points = snap.to_points();
        // 2 spans + 1 event + 1 counter + 1 gauge + 1 histogram.
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(Point::is_storable));
        let lines = snap.to_line_protocol();
        assert_eq!(lines.lines().count(), 6);
        assert!(lines.contains("pipetune_span,kind=tuning_run"));
        assert!(lines.contains("pipetune_event,kind=gt_lookup"));
        // String attrs become tags; numeric attrs become fields.
        assert!(lines.contains("system=8c/32GB") || lines.contains("system=8c\\/32GB"));
        // Round-trips through the embedded store.
        let db = pipetune_tsdb::Database::new();
        for p in points {
            db.write(p).unwrap();
        }
    }

    #[test]
    fn json_round_trips_through_from_json_str() {
        let snap = snapshot();
        let text = snap.to_json_string();
        let parsed = TelemetrySnapshot::from_json_str(&text).unwrap();
        assert_eq!(parsed.to_json_string(), text, "export → parse → export must be identity");
        // Semantics survive too: same kinds, timestamps and metrics.
        assert_eq!(parsed.spans.len(), snap.spans.len());
        assert_eq!(parsed.spans[0].kind, SpanKind::TuningRun);
        assert!(parsed.spans[1].end_secs.is_nan(), "null end re-imports as the open sentinel");
        assert_eq!(parsed.events[0].kind, EventKind::GtLookup);
        assert_eq!(parsed.metrics.counter("epochs.total"), 12);
        assert_eq!(parsed.metrics.histogram("executor.batch_trials").unwrap().count(), 1);
    }

    #[test]
    fn from_json_str_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{}",
            r#"{"version": 2, "spans": [], "events": [], "metrics": {}}"#,
            r#"{"version": 1, "spans": [{"kind": "galaxy", "label": "x", "start_secs": 0.0}], "events": [], "metrics": {}}"#,
            r#"{"version": 1, "spans": [], "events": [], "metrics": {"counters": {"c": -1}}}"#,
        ] {
            let err = TelemetrySnapshot::from_json_str(bad).unwrap_err();
            assert!(matches!(err, crate::TraceError::Parse { .. }), "{bad} -> {err}");
        }
    }

    /// Proptest-style round-trip: randomised snapshots (span trees, weird
    /// floats, open spans, every attribute type, metrics of all three
    /// families) must re-export byte-identically after a parse.
    mod roundtrip_property {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        fn arbitrary_f64(rng: &mut StdRng) -> f64 {
            match rng.gen_range(0..6u32) {
                0 => 0.0,
                1 => rng.gen_range(-1.0e3..1.0e3),
                2 => rng.gen_range(0.0..1.0) / 3.0,
                // Random full-precision mantissa in [1, 2), recentred: keeps
                // the exponent fixed so the value is always finite.
                3 => {
                    f64::from_bits(
                        (rng.gen::<u64>() & 0x000F_FFFF_FFFF_FFFF) | 0x3ff0_0000_0000_0000,
                    ) - 1.5
                }
                4 => -rng.gen_range(1.0e-12..1.0e-6f64),
                _ => rng.gen_range(1.0e6..1.0e12),
            }
        }

        fn arbitrary_attrs(rng: &mut StdRng) -> Attrs {
            let keys = ["epoch", "phase", "cores", "cost", "hit", "note"];
            let n = rng.gen_range(0..4usize);
            (0..n)
                .map(|i| {
                    let value = match rng.gen_range(0..5u32) {
                        0 => AttrValue::U64(rng.gen::<u32>().into()),
                        1 => AttrValue::I64(-(i64::from(rng.gen::<u32>()))),
                        2 => AttrValue::F64(arbitrary_f64(rng)),
                        3 => AttrValue::Bool(rng.gen()),
                        _ => AttrValue::Str(format!("v{}", rng.gen_range(0..65536u32))),
                    };
                    (keys[i], value)
                })
                .collect()
        }

        fn arbitrary_snapshot(seed: u64) -> TelemetrySnapshot {
            let mut rng = StdRng::seed_from_u64(seed);
            let kinds = [
                SpanKind::Service,
                SpanKind::Job,
                SpanKind::TuningRun,
                SpanKind::Rung,
                SpanKind::Batch,
                SpanKind::Trial,
                SpanKind::Epoch,
            ];
            let event_kinds = [
                EventKind::Probe,
                EventKind::GtLookup,
                EventKind::Checkpoint,
                EventKind::Fault,
                EventKind::Retry,
                EventKind::Profile,
                EventKind::Churn,
                EventKind::Shed,
                EventKind::CacheLookup,
                EventKind::Alert,
            ];
            let n_spans = rng.gen_range(0..12usize);
            let spans: Vec<Span> = (0..n_spans)
                .map(|i| {
                    let start = arbitrary_f64(&mut rng);
                    Span {
                        kind: kinds[rng.gen_range(0..kinds.len())],
                        label: format!("span {}", rng.gen_range(0..65536u32)),
                        parent: (i > 0 && rng.gen::<bool>())
                            .then(|| rng.gen_range(0..i as u32)),
                        start_secs: start,
                        // A fifth of spans stay open.
                        end_secs: if rng.gen_range(0..5u32) == 0 {
                            f64::NAN
                        } else {
                            start + arbitrary_f64(&mut rng).abs()
                        },
                        attrs: arbitrary_attrs(&mut rng),
                    }
                })
                .collect();
            let events = (0..rng.gen_range(0..8usize))
                .map(|_| Event {
                    kind: event_kinds[rng.gen_range(0..event_kinds.len())],
                    span: (!spans.is_empty() && rng.gen::<bool>())
                        .then(|| rng.gen_range(0..spans.len() as u32)),
                    at_secs: arbitrary_f64(&mut rng),
                    attrs: arbitrary_attrs(&mut rng),
                })
                .collect();
            let mut metrics = MetricsRegistry::new();
            for _ in 0..rng.gen_range(0..4u32) {
                metrics.counter_add(&format!("c{}", rng.gen_range(0..256u32)), rng.gen::<u32>().into());
            }
            for _ in 0..rng.gen_range(0..4u32) {
                metrics.gauge_set(&format!("g{}", rng.gen_range(0..256u32)), arbitrary_f64(&mut rng));
            }
            for h in 0..rng.gen_range(0..3u32) {
                let name = format!("h{h}");
                for _ in 0..rng.gen_range(0..6u32) {
                    metrics.observe(&name, COUNT_BUCKETS, arbitrary_f64(&mut rng).abs());
                }
            }
            TelemetrySnapshot { spans, events, metrics }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn export_parse_export_is_byte_identical(seed in 0u64..1_000_000) {
                let snap = arbitrary_snapshot(seed);
                let text = snap.to_json_string();
                let parsed = TelemetrySnapshot::from_json_str(&text)
                    .expect("own exports always re-import");
                prop_assert_eq!(parsed.to_json_string(), text);
                // And the importer is idempotent: a second round trip stays
                // fixed. (Compare via the canonical export — open spans hold
                // `NaN` end timestamps, which `PartialEq` would reject.)
                let again = TelemetrySnapshot::from_json_str(&parsed.to_json_string()).unwrap();
                prop_assert_eq!(again.to_json_string(), text);
            }
        }
    }

    #[test]
    fn prometheus_export_is_sorted_and_round_trip_stable() {
        let snap = snapshot();
        let text = snap.to_prometheus();
        // Byte-stable across calls.
        assert_eq!(text, snap.to_prometheus());
        // …and invariant under a JSON round trip.
        let parsed = TelemetrySnapshot::from_json_str(&snap.to_json_string()).unwrap();
        assert_eq!(parsed.to_prometheus(), text);
        // Dotted canonical names sanitise; HELP keeps the original.
        assert!(text.contains("# HELP epochs_total canonical name epochs.total"));
        assert!(text.contains("# TYPE epochs_total counter"));
        assert!(text.contains("epochs_total 12"));
        assert!(text.contains("# TYPE gt_hit_rate gauge"));
        assert!(text.contains("gt_hit_rate 0.5"));
        // Histograms expose cumulative buckets plus sum/count, ending at
        // +Inf.
        assert!(text.contains("# TYPE executor_batch_trials histogram"));
        assert!(text.contains("executor_batch_trials_bucket{le=\"1\"} 0"));
        assert!(text.contains("executor_batch_trials_bucket{le=\"4\"} 1"));
        assert!(text.contains("executor_batch_trials_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("executor_batch_trials_sum 3"));
        assert!(text.contains("executor_batch_trials_count 1"));
        // Families are sorted by exposed name.
        let families: Vec<usize> = ["epochs_total", "executor_batch_trials", "gt_hit_rate"]
            .iter()
            .map(|f| text.find(&format!("# TYPE {f}")).expect(f))
            .collect();
        assert!(families.windows(2).all(|w| w[0] < w[1]), "families out of order:\n{text}");
    }

    #[test]
    fn summary_table_lists_every_section() {
        let table = snapshot().summary_table();
        for needle in
            ["spans", "tuning_run", "events", "gt_lookup", "epochs.total", "gt.hit_rate", "executor.batch_trials"]
        {
            assert!(table.contains(needle), "summary missing {needle}:\n{table}");
        }
    }
}
