//! Exporters: deterministic JSON, tsdb line protocol and the end-of-run
//! summary table.
//!
//! All three are pure functions of a [`TelemetrySnapshot`], so two
//! byte-identical runs export byte-identical artefacts — the property the
//! telemetry determinism suite asserts across executor worker counts.

use pipetune_tsdb::Point;
use serde_json::Value;

use crate::handle::TelemetrySnapshot;
use crate::span::{AttrValue, Attrs, Event, Span};

fn attrs_json(attrs: &Attrs) -> Value {
    let mut obj = serde_json::Map::new();
    for (key, value) in attrs {
        obj.insert((*key).to_string(), value.to_json());
    }
    Value::Object(obj)
}

fn span_json(id: usize, span: &Span) -> Value {
    let mut obj = serde_json::Map::new();
    obj.insert("id".into(), Value::U64(id as u64));
    obj.insert("kind".into(), Value::String(span.kind.name().into()));
    obj.insert("label".into(), Value::String(span.label.clone()));
    obj.insert(
        "parent".into(),
        span.parent.map_or(Value::Null, |p| Value::U64(u64::from(p))),
    );
    obj.insert("start_secs".into(), Value::F64(span.start_secs));
    // Open spans carry NaN, which JSON cannot represent; export null.
    obj.insert(
        "end_secs".into(),
        if span.end_secs.is_finite() { Value::F64(span.end_secs) } else { Value::Null },
    );
    obj.insert("attrs".into(), attrs_json(&span.attrs));
    Value::Object(obj)
}

fn event_json(event: &Event) -> Value {
    let mut obj = serde_json::Map::new();
    obj.insert("kind".into(), Value::String(event.kind.name().into()));
    obj.insert(
        "span".into(),
        event.span.map_or(Value::Null, |s| Value::U64(u64::from(s))),
    );
    obj.insert("at_secs".into(), Value::F64(event.at_secs));
    obj.insert("attrs".into(), attrs_json(&event.attrs));
    Value::Object(obj)
}

/// Microsecond timestamp for a simulated-seconds instant (clamped at 0).
fn timestamp_us(secs: f64) -> u64 {
    if secs.is_finite() && secs > 0.0 {
        (secs * 1e6) as u64
    } else {
        0
    }
}

impl TelemetrySnapshot {
    /// The full snapshot (spans, events, metrics) as one JSON value with
    /// sorted object keys throughout.
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("version".into(), Value::U64(1));
        obj.insert(
            "spans".into(),
            Value::Array(
                self.spans.iter().enumerate().map(|(i, s)| span_json(i, s)).collect(),
            ),
        );
        obj.insert(
            "events".into(),
            Value::Array(self.events.iter().map(event_json).collect()),
        );
        obj.insert("metrics".into(), self.metrics.to_json());
        Value::Object(obj)
    }

    /// The snapshot as a pretty-printed JSON string (the trace-dump
    /// artefact format).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json())
            .expect("telemetry snapshot serialises infallibly")
    }

    /// The metrics registry alone as a compact JSON string.
    pub fn metrics_json_string(&self) -> String {
        serde_json::to_string(&self.metrics.to_json())
            .expect("metrics registry serialises infallibly")
    }

    /// The snapshot as tsdb points: one `pipetune_span` point per span
    /// (tags `kind`/`label`, fields `start_secs`/`end_secs`/
    /// `duration_secs` plus numeric attributes), one `pipetune_event`
    /// point per event, one `pipetune_counter`/`pipetune_gauge` point per
    /// metric and one `pipetune_histogram` point per histogram.
    pub fn to_points(&self) -> Vec<Point> {
        let mut points = Vec::new();
        for (id, span) in self.spans.iter().enumerate() {
            let end = if span.end_secs.is_finite() { span.end_secs } else { span.start_secs };
            let mut p = Point::new("pipetune_span", timestamp_us(span.start_secs))
                .tag("kind", span.kind.name())
                .tag("label", span.label.as_str())
                .field("span_id", id as f64)
                .field("start_secs", span.start_secs)
                .field("end_secs", end)
                .field("duration_secs", end - span.start_secs);
            for (key, value) in &span.attrs {
                match value {
                    AttrValue::Str(s) => p = p.tag(*key, s.as_str()),
                    other => {
                        if let Some(f) = other.as_field() {
                            p = p.field(*key, f);
                        }
                    }
                }
            }
            points.push(p);
        }
        for event in &self.events {
            let mut p = Point::new("pipetune_event", timestamp_us(event.at_secs))
                .tag("kind", event.kind.name())
                .field("at_secs", event.at_secs);
            if let Some(span) = event.span {
                p = p.field("span_id", f64::from(span));
            }
            for (key, value) in &event.attrs {
                match value {
                    AttrValue::Str(s) => p = p.tag(*key, s.as_str()),
                    other => {
                        if let Some(f) = other.as_field() {
                            p = p.field(*key, f);
                        }
                    }
                }
            }
            points.push(p);
        }
        for (name, value) in self.metrics.counters() {
            points.push(
                Point::new("pipetune_counter", 0).tag("name", name).field("value", value as f64),
            );
        }
        for (name, value) in self.metrics.gauges() {
            points.push(Point::new("pipetune_gauge", 0).tag("name", name).field("value", value));
        }
        for (name, hist) in self.metrics.histograms() {
            let mut p = Point::new("pipetune_histogram", 0)
                .tag("name", name)
                .field("count", hist.count() as f64)
                .field("sum", hist.sum())
                .field_vec("bucket", &hist.counts().iter().map(|&c| c as f64).collect::<Vec<_>>());
            if hist.count() > 0 {
                p = p.field("min", hist.min()).field("max", hist.max());
            }
            points.push(p);
        }
        points
    }

    /// The snapshot in InfluxDB line protocol (one line per
    /// [`TelemetrySnapshot::to_points`] point), suitable for replay into a
    /// real InfluxDB or into the embedded [`pipetune_tsdb::Database`].
    pub fn to_line_protocol(&self) -> String {
        let mut out = String::new();
        for point in self.to_points() {
            out.push_str(&point.to_line_protocol());
            out.push('\n');
        }
        out
    }

    /// The human-readable end-of-run summary: span counts per kind, then
    /// every counter, gauge and histogram in sorted order.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str("── telemetry summary ─────────────────────────────────────────\n");
        out.push_str(&format!(
            "{:<38} {:>10} {:>10}\n",
            "spans", "count", ""
        ));
        for kind in [
            crate::SpanKind::TuningRun,
            crate::SpanKind::Rung,
            crate::SpanKind::Batch,
            crate::SpanKind::Trial,
            crate::SpanKind::Epoch,
        ] {
            let n = self.spans.iter().filter(|s| s.kind == kind).count();
            if n > 0 {
                out.push_str(&format!("  {:<36} {:>10}\n", kind.name(), n));
            }
        }
        if !self.events.is_empty() {
            out.push_str(&format!("{:<38} {:>10}\n", "events", ""));
            for kind in [
                crate::EventKind::Profile,
                crate::EventKind::GtLookup,
                crate::EventKind::Probe,
                crate::EventKind::Checkpoint,
                crate::EventKind::Fault,
                crate::EventKind::Retry,
            ] {
                let n = self.events.iter().filter(|e| e.kind == kind).count();
                if n > 0 {
                    out.push_str(&format!("  {:<36} {:>10}\n", kind.name(), n));
                }
            }
        }
        let counters: Vec<_> = self.metrics.counters().collect();
        if !counters.is_empty() {
            out.push_str(&format!("{:<38} {:>10}\n", "counters", ""));
            for (name, value) in counters {
                out.push_str(&format!("  {:<36} {:>10}\n", name, value));
            }
        }
        let gauges: Vec<_> = self.metrics.gauges().collect();
        if !gauges.is_empty() {
            out.push_str(&format!("{:<38} {:>10}\n", "gauges", ""));
            for (name, value) in gauges {
                out.push_str(&format!("  {:<36} {:>10.4}\n", name, value));
            }
        }
        let hists: Vec<_> = self.metrics.histograms().collect();
        if !hists.is_empty() {
            out.push_str(&format!(
                "{:<38} {:>8} {:>10} {:>10} {:>10}\n",
                "histograms", "count", "mean", "p90≤", "max"
            ));
            for (name, h) in hists {
                out.push_str(&format!(
                    "  {:<36} {:>8} {:>10.3} {:>10.3} {:>10.3}\n",
                    name,
                    h.count(),
                    h.mean(),
                    h.quantile_bound(0.9),
                    if h.count() > 0 { h.max() } else { 0.0 },
                ));
            }
        }
        out.push_str("──────────────────────────────────────────────────────────────\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, COUNT_BUCKETS};
    use crate::span::{EventKind, SpanKind};

    fn snapshot() -> TelemetrySnapshot {
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("epochs.total", 12);
        metrics.gauge_set("gt.hit_rate", 0.5);
        metrics.observe("executor.batch_trials", COUNT_BUCKETS, 3.0);
        TelemetrySnapshot {
            spans: vec![
                Span {
                    kind: SpanKind::TuningRun,
                    label: "lenet/mnist".into(),
                    parent: None,
                    start_secs: 0.0,
                    end_secs: 100.0,
                    attrs: vec![("seed", AttrValue::U64(42))],
                },
                Span {
                    kind: SpanKind::Epoch,
                    label: "epoch 1/profile".into(),
                    parent: Some(0),
                    start_secs: 0.0,
                    end_secs: f64::NAN,
                    attrs: vec![("system", AttrValue::Str("8c/32GB".into()))],
                },
            ],
            events: vec![Event {
                kind: EventKind::GtLookup,
                span: Some(1),
                at_secs: 10.0,
                attrs: vec![("hit", AttrValue::Bool(false))],
            }],
            metrics,
        }
    }

    #[test]
    fn json_export_is_deterministic_and_handles_open_spans() {
        let snap = snapshot();
        let a = snap.to_json_string();
        let b = snap.to_json_string();
        assert_eq!(a, b);
        assert!(a.contains("\"end_secs\": null"), "open span exports null end");
        assert!(a.contains("\"tuning_run\""));
        assert!(a.contains("\"gt_lookup\""));
        assert!(a.contains("\"epochs.total\""));
    }

    #[test]
    fn tsdb_export_maps_spans_events_and_metrics() {
        let snap = snapshot();
        let points = snap.to_points();
        // 2 spans + 1 event + 1 counter + 1 gauge + 1 histogram.
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(Point::is_storable));
        let lines = snap.to_line_protocol();
        assert_eq!(lines.lines().count(), 6);
        assert!(lines.contains("pipetune_span,kind=tuning_run"));
        assert!(lines.contains("pipetune_event,kind=gt_lookup"));
        // String attrs become tags; numeric attrs become fields.
        assert!(lines.contains("system=8c/32GB") || lines.contains("system=8c\\/32GB"));
        // Round-trips through the embedded store.
        let db = pipetune_tsdb::Database::new();
        for p in points {
            db.write(p).unwrap();
        }
    }

    #[test]
    fn summary_table_lists_every_section() {
        let table = snapshot().summary_table();
        for needle in
            ["spans", "tuning_run", "events", "gt_lookup", "epochs.total", "gt.hit_rate", "executor.batch_trials"]
        {
            assert!(table.contains(needle), "summary missing {needle}:\n{table}");
        }
    }
}
