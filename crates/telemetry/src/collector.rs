//! The [`Collector`] abstraction and the worker-side [`TelemetryBuffer`].
//!
//! Instrumentation sites never write to a shared sink directly: worker
//! threads record into a private, per-trial [`TelemetryBuffer`], and the
//! executor's coordinator merges the buffers into the run's sink **in
//! scheduler request order** — the same pattern the ground-truth session
//! layer uses. Telemetry output is therefore a pure function of the run,
//! byte-identical for 1 and N executor workers.

use crate::metrics::MetricsRegistry;
use crate::span::{Attrs, Event, EventKind, Span, SpanKind};

/// Anything that accepts spans, events and metric updates.
///
/// Implemented by [`TelemetryBuffer`] (worker-local recording) and by the
/// sink behind [`crate::TelemetryHandle`] (coordinator-side recording).
/// Span indices returned by [`Collector::span`] are local to the
/// implementor; buffers remap them when merged into a sink.
pub trait Collector {
    /// Records a complete span; returns its index for use as a parent.
    fn span(&mut self, span: Span) -> u32;
    /// Records a point event.
    fn event(&mut self, event: Event);
    /// Adds `delta` to a counter.
    fn counter_add(&mut self, name: &str, delta: u64);
    /// Sets a gauge.
    fn gauge_set(&mut self, name: &str, value: f64);
    /// Records a histogram observation (bounds fixed on first use).
    fn observe(&mut self, name: &str, bounds: &[f64], value: f64);
}

/// A worker-local telemetry buffer.
///
/// Created disabled (every method is a cheap early-return) and enabled by
/// the executor when the environment's [`crate::TelemetryHandle`] is live.
/// Records are merged into the sink in request order and the buffer is
/// reset; suppression (see [`TelemetryBuffer::set_suppressed`]) lets crash
/// recovery run a doomed epoch attempt without tracing it.
#[derive(Debug, Clone, Default)]
pub struct TelemetryBuffer {
    enabled: bool,
    suppressed: bool,
    spans: Vec<Span>,
    events: Vec<Event>,
    metrics: MetricsRegistry,
}

impl TelemetryBuffer {
    /// A disabled buffer (the default for every fresh trial).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled, empty buffer.
    pub fn enabled() -> Self {
        TelemetryBuffer { enabled: true, ..Self::default() }
    }

    /// Turns recording on (idempotent; never clears existing records).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether records are currently being kept.
    pub fn is_active(&self) -> bool {
        self.enabled && !self.suppressed
    }

    /// Suppresses (or un-suppresses) recording without dropping what is
    /// already buffered. Crash recovery wraps the rolled-back attempt in a
    /// suppressed window so the trace only shows committed epochs plus the
    /// explicit `fault`/`retry` events.
    pub fn set_suppressed(&mut self, suppressed: bool) {
        self.suppressed = suppressed;
    }

    /// Buffered spans (local parent indices).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Buffered events (local span indices).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Buffered metric updates.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Runs `f` against the buffered metrics iff the buffer is active —
    /// the hook the per-crate observe helpers plug into.
    pub fn with_metrics<F: FnOnce(&mut MetricsRegistry)>(&mut self, f: F) {
        if self.is_active() {
            f(&mut self.metrics);
        }
    }

    /// Convenience: records a completed span with the given fields.
    /// Returns the local index (0 when inactive — callers treat indices as
    /// opaque).
    #[allow(clippy::too_many_arguments)]
    pub fn push_span(
        &mut self,
        kind: SpanKind,
        label: impl Into<String>,
        parent: Option<u32>,
        start_secs: f64,
        end_secs: f64,
        attrs: Attrs,
    ) -> u32 {
        if !self.is_active() {
            return 0;
        }
        self.span(Span { kind, label: label.into(), parent, start_secs, end_secs, attrs })
    }

    /// Convenience: records an event with the given fields.
    pub fn push_event(
        &mut self,
        kind: EventKind,
        span: Option<u32>,
        at_secs: f64,
        attrs: Attrs,
    ) {
        if !self.is_active() {
            return;
        }
        self.event(Event { kind, span, at_secs, attrs });
    }

    /// Drains the buffer: returns `(spans, events, metrics)` and resets the
    /// buffer to empty (still enabled). The executor calls this on the
    /// coordinator thread, in request order.
    pub fn drain(&mut self) -> (Vec<Span>, Vec<Event>, MetricsRegistry) {
        (
            std::mem::take(&mut self.spans),
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.metrics),
        )
    }
}

impl Collector for TelemetryBuffer {
    fn span(&mut self, span: Span) -> u32 {
        if !self.is_active() {
            return 0;
        }
        let idx = self.spans.len() as u32;
        self.spans.push(span);
        idx
    }

    fn event(&mut self, event: Event) {
        if self.is_active() {
            self.events.push(event);
        }
    }

    fn counter_add(&mut self, name: &str, delta: u64) {
        if self.is_active() {
            self.metrics.counter_add(name, delta);
        }
    }

    fn gauge_set(&mut self, name: &str, value: f64) {
        if self.is_active() {
            self.metrics.gauge_set(name, value);
        }
    }

    fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        if self.is_active() {
            self.metrics.observe(name, bounds, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::COUNT_BUCKETS;

    fn span(kind: SpanKind, label: &str, parent: Option<u32>) -> Span {
        Span {
            kind,
            label: label.into(),
            parent,
            start_secs: 0.0,
            end_secs: 1.0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut buf = TelemetryBuffer::disabled();
        buf.span(span(SpanKind::Epoch, "e", None));
        buf.event(Event { kind: EventKind::Probe, span: None, at_secs: 0.0, attrs: vec![] });
        buf.counter_add("c", 1);
        buf.observe("h", COUNT_BUCKETS, 1.0);
        assert!(buf.spans().is_empty());
        assert!(buf.events().is_empty());
        assert!(buf.metrics().is_empty());
    }

    #[test]
    fn suppression_hides_a_window_without_dropping_history() {
        let mut buf = TelemetryBuffer::enabled();
        buf.span(span(SpanKind::Epoch, "kept", None));
        buf.set_suppressed(true);
        buf.span(span(SpanKind::Epoch, "doomed", None));
        buf.counter_add("c", 7);
        buf.set_suppressed(false);
        buf.span(span(SpanKind::Epoch, "kept2", None));
        let labels: Vec<&str> = buf.spans().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["kept", "kept2"]);
        assert_eq!(buf.metrics().counter("c"), 0);
    }

    #[test]
    fn span_indices_are_sequential_and_usable_as_parents() {
        let mut buf = TelemetryBuffer::enabled();
        let a = buf.span(span(SpanKind::Trial, "t", None));
        let b = buf.span(span(SpanKind::Epoch, "e", Some(a)));
        assert_eq!((a, b), (0, 1));
        assert_eq!(buf.spans()[1].parent, Some(0));
    }

    #[test]
    fn drain_resets_but_keeps_enabled() {
        let mut buf = TelemetryBuffer::enabled();
        buf.counter_add("c", 2);
        buf.span(span(SpanKind::Epoch, "e", None));
        let (spans, _events, metrics) = buf.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(metrics.counter("c"), 2);
        assert!(buf.spans().is_empty() && buf.metrics().is_empty());
        assert!(buf.is_active());
    }
}
