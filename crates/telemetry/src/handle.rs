//! [`TelemetryHandle`]: the cheap, cloneable entry point a run threads
//! through its `ExperimentEnv`.
//!
//! Disabled (the default) it is a `None` — every call is a branch and a
//! return, no allocation, no locking, so instrumented code is zero-cost
//! for callers that never opt in. Enabled, it shares one mutex-guarded
//! sink across all clones; the executor's coordinator is the only writer
//! during a batch merge, so snapshots are consistent and deterministic.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::collector::TelemetryBuffer;
use crate::metrics::MetricsRegistry;
use crate::span::{Attrs, Event, EventKind, Span, SpanKind};

/// Identifier of a span recorded through a [`TelemetryHandle`].
///
/// [`SpanId::NONE`] is the root sentinel: using it as a parent records a
/// top-level span, and every operation on it through a disabled handle is
/// a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The "no parent" / "disabled" sentinel.
    pub const NONE: SpanId = SpanId(u32::MAX);

    fn to_parent(self) -> Option<u32> {
        (self != SpanId::NONE).then_some(self.0)
    }
}

#[derive(Debug, Default)]
struct Sink {
    spans: Vec<Span>,
    events: Vec<Event>,
    metrics: MetricsRegistry,
}

/// A consistent copy of everything a run has recorded so far: the span
/// tree, the event log and the metrics registry, all taken under one lock.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// All spans, in record order; `parent` indexes into this vector.
    pub spans: Vec<Span>,
    /// All events, in record order; `span` indexes into `spans`.
    pub events: Vec<Event>,
    /// The merged metrics registry.
    pub metrics: MetricsRegistry,
}

/// Shared handle to a run's telemetry sink. See the module docs.
///
/// # Example
///
/// ```
/// use pipetune_telemetry::{SpanId, SpanKind, TelemetryHandle};
///
/// let telemetry = TelemetryHandle::enabled();
/// let run = telemetry.open_span(SpanId::NONE, SpanKind::TuningRun, "demo", 0.0, vec![]);
/// telemetry.counter_add("demo.events", 1);
/// telemetry.close_span(run, 12.5);
///
/// let snap = telemetry.snapshot().expect("enabled handle");
/// assert_eq!(snap.spans.len(), 1);
/// assert_eq!(snap.metrics.counter("demo.events"), 1);
///
/// // Disabled handles record nothing and cost nothing.
/// let off = TelemetryHandle::disabled();
/// assert!(off.snapshot().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct TelemetryHandle {
    sink: Option<Arc<Mutex<Sink>>>,
    /// Default parent substituted for [`SpanId::NONE`] at the record
    /// sites: [`SpanId::NONE`] for an ordinary handle, a real span id for
    /// a [`TelemetryHandle::scoped`] one.
    root: SpanId,
}

impl Default for TelemetryHandle {
    fn default() -> Self {
        TelemetryHandle::disabled()
    }
}

impl TelemetryHandle {
    /// A disabled handle: every operation is a no-op (the default).
    pub fn disabled() -> Self {
        TelemetryHandle { sink: None, root: SpanId::NONE }
    }

    /// A live handle with a fresh, empty sink.
    pub fn enabled() -> Self {
        TelemetryHandle { sink: Some(Arc::new(Mutex::new(Sink::default()))), root: SpanId::NONE }
    }

    /// A handle recording into the same sink but with `root` as the
    /// default parent: spans opened (and events recorded) against
    /// [`SpanId::NONE`] through the scoped handle land under `root`
    /// instead of at top level.
    ///
    /// This is how a multi-job service nests each job's `tuning_run` span
    /// under that job's `job` span without the runner knowing it is being
    /// driven by a service: the runner keeps opening its root span with
    /// [`SpanId::NONE`], and the scoped handle re-roots it.
    ///
    /// ```
    /// use pipetune_telemetry::{SpanId, SpanKind, TelemetryHandle};
    ///
    /// let telemetry = TelemetryHandle::enabled();
    /// let service = telemetry.open_span(SpanId::NONE, SpanKind::Service, "svc", 0.0, vec![]);
    /// let job = telemetry.open_span(service, SpanKind::Job, "job 0", 0.0, vec![]);
    /// let scoped = telemetry.scoped(job);
    /// let run = scoped.open_span(SpanId::NONE, SpanKind::TuningRun, "run", 0.0, vec![]);
    /// scoped.close_span(run, 1.0);
    /// let snap = telemetry.snapshot().unwrap();
    /// assert_eq!(snap.spans[2].parent, Some(1)); // run nests under the job
    /// ```
    #[must_use]
    pub fn scoped(&self, root: SpanId) -> Self {
        TelemetryHandle { sink: self.sink.clone(), root }
    }

    /// Substitutes the scoped root for the [`SpanId::NONE`] sentinel.
    fn resolve(&self, id: SpanId) -> SpanId {
        if id == SpanId::NONE {
            self.root
        } else {
            id
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Sink>> {
        self.sink.as_ref().map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Opens a span (end time unknown yet) and returns its id.
    /// [`SpanId::NONE`] when disabled.
    pub fn open_span(
        &self,
        parent: SpanId,
        kind: SpanKind,
        label: impl Into<String>,
        start_secs: f64,
        attrs: Attrs,
    ) -> SpanId {
        match self.lock() {
            None => SpanId::NONE,
            Some(mut sink) => {
                let idx = sink.spans.len() as u32;
                sink.spans.push(Span {
                    kind,
                    label: label.into(),
                    parent: self.resolve(parent).to_parent(),
                    start_secs,
                    end_secs: f64::NAN,
                    attrs,
                });
                SpanId(idx)
            }
        }
    }

    /// Closes an open span at `end_secs` (no-op on [`SpanId::NONE`]).
    pub fn close_span(&self, id: SpanId, end_secs: f64) {
        if id == SpanId::NONE {
            return;
        }
        if let Some(mut sink) = self.lock() {
            if let Some(span) = sink.spans.get_mut(id.0 as usize) {
                span.end_secs = end_secs;
            }
        }
    }

    /// Records a point event against `span` (or top-level on
    /// [`SpanId::NONE`]).
    pub fn event(&self, span: SpanId, kind: EventKind, at_secs: f64, attrs: Attrs) {
        if let Some(mut sink) = self.lock() {
            let span = self.resolve(span).to_parent();
            sink.events.push(Event { kind, span, at_secs, attrs });
        }
    }

    /// Adds `delta` to a counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(mut sink) = self.lock() {
            sink.metrics.counter_add(name, delta);
        }
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(mut sink) = self.lock() {
            sink.metrics.gauge_set(name, value);
        }
    }

    /// Records a histogram observation (bounds fixed on first use).
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        if let Some(mut sink) = self.lock() {
            sink.metrics.observe(name, bounds, value);
        }
    }

    /// Runs `f` against the sink's metrics registry iff enabled — the
    /// hook the per-crate observe helpers (which take a
    /// `&mut MetricsRegistry`) plug into from the coordinator thread.
    pub fn with_metrics<F: FnOnce(&mut MetricsRegistry)>(&self, f: F) {
        if let Some(mut sink) = self.lock() {
            f(&mut sink.metrics);
        }
    }

    /// Runs `f` against the recorded spans and events under the sink lock,
    /// without cloning — the hook streaming consumers (the
    /// `pipetune-monitor` engine's incremental scans) read the trace
    /// through. `None` when disabled.
    pub fn visit<R>(&self, f: impl FnOnce(&[Span], &[Event]) -> R) -> Option<R> {
        self.lock().map(|sink| f(&sink.spans, &sink.events))
    }

    /// Merges a worker-local buffer into the sink, re-parenting the
    /// buffer's root spans/events under `parent` and remapping local span
    /// indices. The executor calls this on the coordinator thread in
    /// scheduler request order — that ordering is what makes the final
    /// trace independent of worker count.
    pub fn merge_buffer(&self, parent: SpanId, buf: &mut TelemetryBuffer) {
        let parent = self.resolve(parent);
        let Some(mut sink) = self.lock() else { return };
        let (spans, events, metrics) = buf.drain();
        let offset = sink.spans.len() as u32;
        for span in spans {
            let remapped = Span {
                parent: span.parent.map(|p| p + offset).or_else(|| parent.to_parent()),
                ..span
            };
            sink.spans.push(remapped);
        }
        for event in events {
            let remapped = Event {
                span: event.span.map(|s| s + offset).or_else(|| parent.to_parent()),
                ..event
            };
            sink.events.push(remapped);
        }
        sink.metrics.merge(&metrics);
    }

    /// A consistent snapshot of everything recorded so far; `None` when
    /// disabled.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.lock().map(|sink| TelemetrySnapshot {
            spans: sink.spans.clone(),
            events: sink.events.clone(),
            metrics: sink.metrics.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::metrics::COUNT_BUCKETS;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TelemetryHandle::disabled();
        let id = h.open_span(SpanId::NONE, SpanKind::TuningRun, "r", 0.0, vec![]);
        assert_eq!(id, SpanId::NONE);
        h.close_span(id, 1.0);
        h.counter_add("c", 1);
        h.observe("h", COUNT_BUCKETS, 1.0);
        assert!(h.snapshot().is_none());
        assert!(!h.is_enabled());
    }

    #[test]
    fn clones_share_one_sink() {
        let h = TelemetryHandle::enabled();
        let h2 = h.clone();
        h.counter_add("c", 1);
        h2.counter_add("c", 2);
        assert_eq!(h.snapshot().unwrap().metrics.counter("c"), 3);
    }

    #[test]
    fn open_close_span_fills_end_time() {
        let h = TelemetryHandle::enabled();
        let run = h.open_span(SpanId::NONE, SpanKind::TuningRun, "r", 0.0, vec![]);
        let rung = h.open_span(run, SpanKind::Rung, "rung 0", 0.0, vec![]);
        h.close_span(rung, 5.0);
        h.close_span(run, 9.0);
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.spans[0].end_secs, 9.0);
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[1].end_secs, 5.0);
    }

    #[test]
    fn scoped_handle_reroots_top_level_records() {
        let h = TelemetryHandle::enabled();
        let service = h.open_span(SpanId::NONE, SpanKind::Service, "svc", 0.0, vec![]);
        let job = h.open_span(service, SpanKind::Job, "job 0", 0.0, vec![]);
        let scoped = h.scoped(job);
        // The runner's idiom — NONE parent — lands under the job.
        let run = scoped.open_span(SpanId::NONE, SpanKind::TuningRun, "run", 0.0, vec![]);
        scoped.event(SpanId::NONE, EventKind::Checkpoint, 0.5, vec![]);
        // Explicit parents are untouched.
        let rung = scoped.open_span(run, SpanKind::Rung, "rung 0", 0.0, vec![]);
        // Buffers merged at top level through the scoped handle re-root too.
        let mut buf = TelemetryBuffer::enabled();
        buf.push_span(SpanKind::Rung, "buffered", None, 0.0, 1.0, vec![]);
        scoped.merge_buffer(SpanId::NONE, &mut buf);
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.spans[2].parent, Some(1), "run nests under job");
        assert_eq!(snap.events[0].span, Some(1), "event attaches to job");
        assert_eq!(snap.spans[3].parent, Some(2), "explicit parent wins");
        assert_eq!(snap.spans[4].parent, Some(1), "buffer re-roots to job");
        let _ = rung;
        // A scoped clone of a disabled handle stays inert.
        let off = TelemetryHandle::disabled().scoped(job);
        assert!(!off.is_enabled());
        assert_eq!(off.open_span(SpanId::NONE, SpanKind::TuningRun, "r", 0.0, vec![]), SpanId::NONE);
    }

    #[test]
    fn merge_buffer_remaps_parents_and_spans() {
        let h = TelemetryHandle::enabled();
        let run = h.open_span(SpanId::NONE, SpanKind::TuningRun, "r", 0.0, vec![]);
        let trial = h.open_span(run, SpanKind::Trial, "t0", 0.0, vec![]);

        let mut buf = TelemetryBuffer::enabled();
        let local = buf.push_span(SpanKind::Epoch, "e1", None, 0.0, 1.0, vec![]);
        buf.push_span(SpanKind::Epoch, "e2", Some(local), 1.0, 2.0, vec![]);
        buf.push_event(EventKind::Probe, Some(local), 0.5, vec![]);
        buf.push_event(EventKind::GtLookup, None, 0.1, vec![]);
        buf.counter_add("c", 4);

        h.merge_buffer(trial, &mut buf);
        let snap = h.snapshot().unwrap();
        // Spans: run (0), trial (1), e1 (2), e2 (3).
        assert_eq!(snap.spans[2].parent, Some(1), "rootless buffer span re-parents to trial");
        assert_eq!(snap.spans[3].parent, Some(2), "local index offsets by sink length");
        assert_eq!(snap.events[0].span, Some(2));
        assert_eq!(snap.events[1].span, Some(1));
        assert_eq!(snap.metrics.counter("c"), 4);
        // Buffer drained in place.
        assert!(buf.spans().is_empty());
    }

    #[test]
    fn merge_order_determines_trace_order() {
        // Two buffers merged in opposite orders give different byte
        // streams — which is why the executor always merges in request
        // order.
        let build = |first: &str, second: &str| {
            let h = TelemetryHandle::enabled();
            for label in [first, second] {
                let mut buf = TelemetryBuffer::enabled();
                buf.push_span(SpanKind::Trial, label, None, 0.0, 1.0, vec![]);
                h.merge_buffer(SpanId::NONE, &mut buf);
            }
            h.snapshot().unwrap()
        };
        let ab = build("a", "b");
        let ba = build("b", "a");
        assert_ne!(ab.spans, ba.spans);
        assert_eq!(ab.spans[0].label, "a");
    }
}
