//! Structural validation of traces: a [`TelemetrySnapshot::validate`] pass
//! that rejects malformed span trees with typed [`TraceError`]s.
//!
//! The executor only ever produces well-formed traces, but traces also
//! arrive from *outside* — `pipetune-trace` re-imports JSON dumps that may
//! have been truncated, hand-edited or produced by a buggy exporter. Every
//! analysis in `pipetune-insight` assumes the invariants below, so the CLI
//! validates before analysing.

use std::error::Error;
use std::fmt;

use crate::handle::TelemetrySnapshot;
use crate::span::SpanKind;

/// A structural defect in a trace (or a parse failure while re-importing
/// one). Each variant carries the index of the offending span or event
/// within the snapshot's `spans` / `events` vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The JSON text could not be parsed back into a snapshot.
    Parse {
        /// Parser or shape-mismatch diagnostic.
        reason: String,
    },
    /// A span closes before it opens (`end_secs < start_secs`).
    EndBeforeStart {
        /// Index of the offending span.
        span: usize,
    },
    /// A span's parent id does not name an *earlier* span: it is out of
    /// range, a forward reference, or a self reference. (The recording
    /// contract guarantees parents are recorded before children.)
    OrphanParent {
        /// Index of the offending span.
        span: usize,
        /// The dangling parent id.
        parent: u32,
    },
    /// A closed span's interval sticks out of its (closed) parent's
    /// interval. Only checked for parent/child pairs that share a clock —
    /// `rung` in `tuning_run`, `batch` in `rung` and `epoch` in `trial`;
    /// `trial` spans live on the trial-cumulative clock while their `batch`
    /// parents live on the shared wall clock (see [`SpanKind`]), so that
    /// pair is exempt.
    ChildOutsideParent {
        /// Index of the offending span.
        span: usize,
        /// Index of its parent.
        parent: u32,
    },
    /// A span's parent has the wrong kind for the
    /// `service > job > tuning_run > rung > batch > trial > epoch`
    /// taxonomy.
    MisparentedKind {
        /// Index of the offending span.
        span: usize,
        /// Index of its parent.
        parent: u32,
    },
    /// An event references a span id that does not exist.
    OrphanEventSpan {
        /// Index of the offending event.
        event: usize,
        /// The dangling span id.
        span: u32,
    },
    /// An event's timestamp falls outside its owning span's interval.
    /// Events share their owning span's clock domain (see
    /// [`crate::Event::at_secs`]), so containment is checked for every
    /// event kind — including the `alert` and `cache_lookup` points the
    /// monitor and epoch-reuse cache record. An open owning span only
    /// bounds the event from below.
    EventOutsideSpan {
        /// Index of the offending event.
        event: usize,
        /// Index of its owning span.
        span: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { reason } => write!(f, "trace parse error: {reason}"),
            TraceError::EndBeforeStart { span } => {
                write!(f, "span {span} ends before it starts")
            }
            TraceError::OrphanParent { span, parent } => {
                write!(f, "span {span} references parent {parent}, which is not an earlier span")
            }
            TraceError::ChildOutsideParent { span, parent } => {
                write!(f, "span {span}'s interval lies outside its parent {parent}'s interval")
            }
            TraceError::MisparentedKind { span, parent } => {
                write!(f, "span {span}'s kind cannot be a child of parent {parent}'s kind")
            }
            TraceError::OrphanEventSpan { event, span } => {
                write!(f, "event {event} references span {span}, which does not exist")
            }
            TraceError::EventOutsideSpan { event, span } => {
                write!(f, "event {event}'s timestamp lies outside its span {span}'s interval")
            }
        }
    }
}

impl Error for TraceError {}

/// Interval containment is only meaningful between spans on the same
/// simulated clock (see [`SpanKind`]): `trial` spans are timestamped on the
/// trial-cumulative clock while `batch` parents use the shared wall clock,
/// and `tuning_run` spans restart their wall clock at zero while `job`
/// parents stay on the service's arrival clock.
fn same_clock(child: SpanKind, parent: SpanKind) -> bool {
    matches!(
        (child, parent),
        (SpanKind::Job, SpanKind::Service)
            | (SpanKind::Rung, SpanKind::TuningRun)
            | (SpanKind::Batch, SpanKind::Rung)
            | (SpanKind::Epoch, SpanKind::Trial)
    )
}

/// Whether a span of kind `child` may be parented under a span of kind
/// `parent`. `service` spans are roots and must not have a parent;
/// `tuning_run` spans are roots on a dedicated cluster but sit under a
/// `job` span when a multi-job service drives them.
fn parent_kind_ok(child: SpanKind, parent: SpanKind) -> bool {
    matches!(
        (child, parent),
        (SpanKind::Job, SpanKind::Service)
            | (SpanKind::TuningRun, SpanKind::Job)
            | (SpanKind::Rung, SpanKind::TuningRun)
            | (SpanKind::Batch, SpanKind::Rung)
            | (SpanKind::Trial, SpanKind::Batch)
            | (SpanKind::Epoch, SpanKind::Trial)
    )
}

impl TelemetrySnapshot {
    /// Checks the span tree's structural invariants and returns the first
    /// violation found (in span order, then event order).
    ///
    /// Invariants: parents are earlier spans; closed spans end no earlier
    /// than they start; same-clock children stay inside their parent's
    /// interval (with a tiny relative tolerance for float re-association);
    /// the `service > job > tuning_run > rung > batch > trial > epoch`
    /// taxonomy is respected; events point at existing spans and their
    /// timestamps stay inside the owning span's interval (events share the
    /// owning span's clock domain). Open spans (`NaN` end) skip the
    /// interval checks — a snapshot may be taken mid-run — and only bound
    /// their events from below.
    ///
    /// # Errors
    ///
    /// The first [`TraceError`] violated, if any.
    ///
    /// # Example
    ///
    /// ```
    /// use pipetune_telemetry::{SpanId, SpanKind, TelemetryHandle, TraceError};
    ///
    /// let telemetry = TelemetryHandle::enabled();
    /// let run = telemetry.open_span(SpanId::NONE, SpanKind::TuningRun, "job", 0.0, vec![]);
    /// telemetry.close_span(run, 10.0);
    /// let mut snap = telemetry.snapshot().unwrap();
    /// assert_eq!(snap.validate(), Ok(()));
    ///
    /// snap.spans[0].end_secs = -1.0; // corrupt it
    /// assert_eq!(snap.validate(), Err(TraceError::EndBeforeStart { span: 0 }));
    /// ```
    pub fn validate(&self) -> Result<(), TraceError> {
        for (i, span) in self.spans.iter().enumerate() {
            if span.end_secs.is_finite() && span.end_secs < span.start_secs {
                return Err(TraceError::EndBeforeStart { span: i });
            }
            // Non-root kinds may legitimately be recorded without a parent
            // (worker buffers hold rootless spans until the merge re-parents
            // them), so a missing parent is never an error.
            let Some(p) = span.parent else { continue };
            if p as usize >= i {
                return Err(TraceError::OrphanParent { span: i, parent: p });
            }
            let parent = &self.spans[p as usize];
            if !parent_kind_ok(span.kind, parent.kind) {
                return Err(TraceError::MisparentedKind { span: i, parent: p });
            }
            if same_clock(span.kind, parent.kind)
                && span.end_secs.is_finite()
                && parent.end_secs.is_finite()
            {
                // Start/end points are re-derived by subtraction at the
                // record sites, so allow float re-association slack.
                let eps = 1e-6 * parent.end_secs.abs().max(1.0);
                if span.start_secs < parent.start_secs - eps
                    || span.end_secs > parent.end_secs + eps
                {
                    return Err(TraceError::ChildOutsideParent { span: i, parent: p });
                }
            }
        }
        for (i, event) in self.events.iter().enumerate() {
            if let Some(s) = event.span {
                if s as usize >= self.spans.len() {
                    return Err(TraceError::OrphanEventSpan { event: i, span: s });
                }
                // Events are timestamped on their owning span's clock
                // (`Event::at_secs`), so every kind — `alert` and
                // `cache_lookup` included — must fall inside the span's
                // interval; an open span only bounds from below.
                let owner = &self.spans[s as usize];
                let eps = 1e-6
                    * if owner.end_secs.is_finite() { owner.end_secs } else { owner.start_secs }
                        .abs()
                        .max(1.0);
                if event.at_secs < owner.start_secs - eps
                    || (owner.end_secs.is_finite() && event.at_secs > owner.end_secs + eps)
                {
                    return Err(TraceError::EventOutsideSpan { event: i, span: s });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Event, EventKind, Span};
    use crate::MetricsRegistry;

    fn span(kind: SpanKind, parent: Option<u32>, start: f64, end: f64) -> Span {
        Span { kind, label: kind.name().into(), parent, start_secs: start, end_secs: end, attrs: vec![] }
    }

    fn snapshot(spans: Vec<Span>, events: Vec<Event>) -> TelemetrySnapshot {
        TelemetrySnapshot { spans, events, metrics: MetricsRegistry::new() }
    }

    #[test]
    fn well_formed_tree_passes() {
        let snap = snapshot(
            vec![
                span(SpanKind::TuningRun, None, 0.0, 100.0),
                span(SpanKind::Rung, Some(0), 0.0, 50.0),
                span(SpanKind::Batch, Some(1), 0.0, 50.0),
                // Trial on its own clock: interval exceeds the batch's — legal.
                span(SpanKind::Trial, Some(2), 900.0, 960.0),
                span(SpanKind::Epoch, Some(3), 900.0, 930.0),
            ],
            vec![Event { kind: EventKind::Probe, span: Some(4), at_secs: 930.0, attrs: vec![] }],
        );
        assert_eq!(snap.validate(), Ok(()));
    }

    #[test]
    fn open_spans_skip_interval_checks() {
        let snap = snapshot(
            vec![
                span(SpanKind::TuningRun, None, 0.0, f64::NAN),
                span(SpanKind::Rung, Some(0), 5.0, f64::NAN),
            ],
            vec![],
        );
        assert_eq!(snap.validate(), Ok(()));
    }

    #[test]
    fn end_before_start_is_rejected() {
        let snap = snapshot(vec![span(SpanKind::TuningRun, None, 10.0, 9.0)], vec![]);
        assert_eq!(snap.validate(), Err(TraceError::EndBeforeStart { span: 0 }));
    }

    #[test]
    fn forward_and_out_of_range_parents_are_orphans() {
        let snap = snapshot(
            vec![span(SpanKind::TuningRun, None, 0.0, 1.0), span(SpanKind::Rung, Some(7), 0.0, 1.0)],
            vec![],
        );
        assert_eq!(snap.validate(), Err(TraceError::OrphanParent { span: 1, parent: 7 }));
        let snap = snapshot(
            vec![span(SpanKind::TuningRun, None, 0.0, 1.0), span(SpanKind::Rung, Some(1), 0.0, 1.0)],
            vec![],
        );
        assert_eq!(snap.validate(), Err(TraceError::OrphanParent { span: 1, parent: 1 }));
    }

    #[test]
    fn child_escaping_its_parent_is_rejected() {
        let snap = snapshot(
            vec![
                span(SpanKind::TuningRun, None, 0.0, 10.0),
                span(SpanKind::Rung, Some(0), 2.0, 11.0),
            ],
            vec![],
        );
        assert_eq!(snap.validate(), Err(TraceError::ChildOutsideParent { span: 1, parent: 0 }));
    }

    #[test]
    fn taxonomy_violations_are_rejected() {
        // An epoch directly under a tuning_run skips the trial level.
        let snap = snapshot(
            vec![
                span(SpanKind::TuningRun, None, 0.0, 10.0),
                span(SpanKind::Epoch, Some(0), 0.0, 1.0),
            ],
            vec![],
        );
        assert_eq!(snap.validate(), Err(TraceError::MisparentedKind { span: 1, parent: 0 }));
    }

    #[test]
    fn service_job_tuning_run_prefix_is_accepted() {
        let snap = snapshot(
            vec![
                span(SpanKind::Service, None, 0.0, 500.0),
                span(SpanKind::Job, Some(0), 10.0, 400.0),
                // Runs restart their wall clock at zero, so the interval may
                // exceed the job's — the pair is cross-clock and exempt.
                span(SpanKind::TuningRun, Some(1), 0.0, 390.0),
                span(SpanKind::Rung, Some(2), 0.0, 100.0),
            ],
            vec![],
        );
        assert_eq!(snap.validate(), Ok(()));
    }

    #[test]
    fn job_outside_its_service_interval_is_rejected() {
        let snap = snapshot(
            vec![
                span(SpanKind::Service, None, 0.0, 100.0),
                span(SpanKind::Job, Some(0), 10.0, 101.0),
            ],
            vec![],
        );
        assert_eq!(snap.validate(), Err(TraceError::ChildOutsideParent { span: 1, parent: 0 }));
    }

    #[test]
    fn service_must_be_a_root_and_job_must_sit_under_a_service() {
        let snap = snapshot(
            vec![
                span(SpanKind::Service, None, 0.0, 10.0),
                span(SpanKind::Service, Some(0), 0.0, 5.0),
            ],
            vec![],
        );
        assert_eq!(snap.validate(), Err(TraceError::MisparentedKind { span: 1, parent: 0 }));
        let snap = snapshot(
            vec![
                span(SpanKind::TuningRun, None, 0.0, 10.0),
                span(SpanKind::Job, Some(0), 0.0, 5.0),
            ],
            vec![],
        );
        assert_eq!(snap.validate(), Err(TraceError::MisparentedKind { span: 1, parent: 0 }));
    }

    #[test]
    fn events_must_point_at_existing_spans() {
        let snap = snapshot(
            vec![span(SpanKind::TuningRun, None, 0.0, 1.0)],
            vec![Event { kind: EventKind::Fault, span: Some(3), at_secs: 0.5, attrs: vec![] }],
        );
        assert_eq!(snap.validate(), Err(TraceError::OrphanEventSpan { event: 0, span: 3 }));
    }

    #[test]
    fn event_timestamps_must_stay_inside_their_span() {
        let spans = vec![span(SpanKind::Trial, None, 900.0, 960.0)];
        // In range (boundaries included, with eps slack).
        for at in [900.0, 930.0, 960.0, 960.0 + 1e-7] {
            let snap = snapshot(
                spans.clone(),
                vec![Event { kind: EventKind::CacheLookup, span: Some(0), at_secs: at, attrs: vec![] }],
            );
            assert_eq!(snap.validate(), Ok(()), "at_secs {at} should be contained");
        }
        // Outside, before or after — `alert` and `cache_lookup` points are
        // clock-checked like every other kind.
        for (kind, at) in [(EventKind::Alert, 899.0), (EventKind::CacheLookup, 961.0)] {
            let snap = snapshot(
                spans.clone(),
                vec![Event { kind, span: Some(0), at_secs: at, attrs: vec![] }],
            );
            assert_eq!(
                snap.validate(),
                Err(TraceError::EventOutsideSpan { event: 0, span: 0 }),
                "at_secs {at} should be rejected"
            );
        }
        // An open span bounds only from below.
        let open = vec![span(SpanKind::Trial, None, 900.0, f64::NAN)];
        let snap = snapshot(
            open.clone(),
            vec![Event { kind: EventKind::Alert, span: Some(0), at_secs: 5000.0, attrs: vec![] }],
        );
        assert_eq!(snap.validate(), Ok(()));
        let snap = snapshot(
            open,
            vec![Event { kind: EventKind::Alert, span: Some(0), at_secs: 1.0, attrs: vec![] }],
        );
        assert_eq!(snap.validate(), Err(TraceError::EventOutsideSpan { event: 0, span: 0 }));
    }

    #[test]
    fn errors_display_their_indices() {
        let text = TraceError::ChildOutsideParent { span: 4, parent: 2 }.to_string();
        assert!(text.contains('4') && text.contains('2'), "{text}");
    }
}
