//! Deterministic tracing and metrics for the PipeTune reproduction.
//!
//! PipeTune's premise is that the tuning pipeline is *measurable* — epoch
//! profiles, probe grids, ground-truth hits — yet a bare `TuningOutcome`
//! throws the interior story away. This crate records it, without breaking
//! the repository's replay contract:
//!
//! * **Spans** ([`Span`], [`SpanKind`]) form the hierarchy
//!   `tuning_run > rung > batch > trial > epoch`, keyed on *simulated*
//!   time. Point [`Event`]s (`probe`, `gt_lookup`, `checkpoint`, `fault`,
//!   `retry`, `profile`) hang off spans.
//! * **Metrics** ([`MetricsRegistry`]) are counters, gauges and
//!   fixed-bucket [`Histogram`]s — ground-truth hit rates, probe counts,
//!   retries, epoch durations, energy, queue occupancy.
//! * **Exporters** turn a [`TelemetrySnapshot`] into a deterministic JSON
//!   trace, InfluxDB line protocol (via [`pipetune_tsdb`]), Prometheus
//!   text exposition ([`TelemetrySnapshot::to_prometheus`]) or a
//!   human-readable summary table. The JSON trace round-trips:
//!   [`TelemetrySnapshot::from_json_str`] parses a dump back for offline
//!   analysis, and [`TelemetrySnapshot::validate`] rejects malformed span
//!   trees with typed [`TraceError`]s.
//! * **Names** ([`names`], [`metric_names!`]) keep the canonical metric
//!   vocabulary enumerable: each subsystem's `observe` module declares its
//!   names through the macro, and [`names::unregistered`] diffs a recorded
//!   snapshot against the declared union.
//!
//! # Determinism
//!
//! Worker threads record into private [`TelemetryBuffer`]s; the executor's
//! coordinator merges them through [`TelemetryHandle::merge_buffer`] in
//! scheduler **request order**. Combined with simulated-time timestamps,
//! the exported trace and metrics snapshot are byte-identical for every
//! executor worker count. A disabled [`TelemetryHandle`] (the default) is
//! a no-op at every call site and leaves run results bit-unchanged.
//!
//! # Example
//!
//! ```
//! use pipetune_telemetry::{SpanId, SpanKind, TelemetryHandle, DURATION_BUCKETS_SECS};
//!
//! let telemetry = TelemetryHandle::enabled();
//! let run = telemetry.open_span(SpanId::NONE, SpanKind::TuningRun, "job", 0.0, vec![]);
//! telemetry.observe("trial.epoch_secs", DURATION_BUCKETS_SECS, 42.0);
//! telemetry.close_span(run, 42.0);
//!
//! let snap = telemetry.snapshot().unwrap();
//! assert!(snap.to_json_string().contains("\"tuning_run\""));
//! assert!(snap.to_line_protocol().starts_with("pipetune_span"));
//! println!("{}", snap.summary_table());
//! ```

#![warn(missing_docs)]

mod collector;
mod export;
mod handle;
mod metrics;
pub mod names;
mod span;
mod validate;

pub use collector::{Collector, TelemetryBuffer};
pub use export::TraceExport;
pub use handle::{SpanId, TelemetryHandle, TelemetrySnapshot};
pub use validate::TraceError;
pub use metrics::{
    Histogram, MetricsRegistry, COUNT_BUCKETS, DURATION_BUCKETS_SECS, ENERGY_BUCKETS_J,
    RATIO_BUCKETS,
};
pub use span::{AttrValue, Attrs, Event, EventKind, Span, SpanKind};
