//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Everything is keyed by a string name in sorted maps, so snapshots and
//! exports are deterministic. Histograms use **fixed bucket boundaries**
//! supplied at first observation (and asserted equal on merge): merging two
//! registries is then pure element-wise addition, independent of the order
//! individual observations arrived in — the property the request-order
//! merge in the executor relies on.

use std::collections::BTreeMap;

use serde_json::Value;

/// Standard duration buckets (simulated seconds) for epoch/trial timings.
pub const DURATION_BUCKETS_SECS: &[f64] =
    &[1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0];

/// Standard energy buckets (joules) for per-epoch energy.
pub const ENERGY_BUCKETS_J: &[f64] =
    &[1e3, 5e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7];

/// Standard small-count buckets (batch sizes, queue depths, retries).
pub const COUNT_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Standard ratio buckets for occupancy / hit-rate style observations in
/// `[0, 1]` (and slightly above, for oversubscription).
pub const RATIO_BUCKETS: &[f64] = &[0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.5, 2.0];

/// A histogram with fixed bucket boundaries.
///
/// `counts[i]` counts observations `<= bounds[i]`; the implicit final
/// bucket (`counts[bounds.len()]`) catches everything larger. `sum` and
/// `count` track the exact total, so means are available without bucket
/// error.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram over `bounds` (must be sorted ascending).
    pub fn with_bounds(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds another histogram's observations into this one. Both must have
    /// been created over the same bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch on merge");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The bucket boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Upper bound of the bucket containing the `q`-quantile (bucket-level
    /// resolution; returns `max` for the overflow bucket, 0 when empty).
    pub fn quantile_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }

    /// Reassembles a histogram from its exported parts (inverse of the JSON
    /// export). `None` when the counts vector does not match the bounds.
    pub(crate) fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
        min: f64,
        max: f64,
    ) -> Option<Self> {
        if counts.len() != bounds.len() + 1 {
            return None;
        }
        Some(Histogram { bounds, counts, sum, count, min, max })
    }

    fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert(
            "bounds".into(),
            Value::Array(self.bounds.iter().map(|&b| Value::F64(b)).collect()),
        );
        obj.insert(
            "counts".into(),
            Value::Array(self.counts.iter().map(|&c| Value::U64(c)).collect()),
        );
        obj.insert("sum".into(), Value::F64(self.sum));
        obj.insert("count".into(), Value::U64(self.count));
        if self.count > 0 {
            obj.insert("min".into(), Value::F64(self.min));
            obj.insert("max".into(), Value::F64(self.max));
        }
        Value::Object(obj)
    }
}

/// Counters, gauges and histograms keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at 0).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge (last write wins — merges apply the other
    /// registry's writes after this one's, so the executor's request-order
    /// merge makes "last" deterministic).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one observation in the named histogram, creating it over
    /// `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .observe(value);
    }

    /// Folds `other` into `self`: counters and histograms add, gauges take
    /// `other`'s value. Callers must merge in a deterministic order (the
    /// executor uses scheduler request order) to keep float sums and gauge
    /// winners reproducible.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(h) => h.merge(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The named counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if ever observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Parses a registry back out of its [`MetricsRegistry::to_json`] form.
    /// Errors carry a plain-text reason (wrapped into a typed
    /// [`crate::TraceError::Parse`] by the snapshot importer).
    pub(crate) fn from_json(value: &Value) -> Result<Self, String> {
        let mut registry = MetricsRegistry::new();
        let obj = value.as_object().ok_or("metrics must be an object")?;
        if let Some(counters) = obj.get("counters") {
            for (name, v) in counters.as_object().ok_or("counters must be an object")? {
                let v = v.as_u64().ok_or_else(|| format!("counter {name} must be a u64"))?;
                registry.counters.insert(name.clone(), v);
            }
        }
        if let Some(gauges) = obj.get("gauges") {
            for (name, v) in gauges.as_object().ok_or("gauges must be an object")? {
                // A NaN gauge exports as null; re-import it as NaN.
                let v = if v.is_null() {
                    f64::NAN
                } else {
                    v.as_f64().ok_or_else(|| format!("gauge {name} must be a number"))?
                };
                registry.gauges.insert(name.clone(), v);
            }
        }
        if let Some(hists) = obj.get("histograms") {
            for (name, h) in hists.as_object().ok_or("histograms must be an object")? {
                let err = |what: &str| format!("histogram {name}: {what}");
                let bounds = h
                    .get("bounds")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("missing bounds"))?
                    .iter()
                    .map(|b| b.as_f64().ok_or_else(|| err("non-numeric bound")))
                    .collect::<Result<Vec<_>, _>>()?;
                let counts = h
                    .get("counts")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("missing counts"))?
                    .iter()
                    .map(|c| c.as_u64().ok_or_else(|| err("non-integer count")))
                    .collect::<Result<Vec<_>, _>>()?;
                let sum =
                    h.get("sum").and_then(Value::as_f64).ok_or_else(|| err("missing sum"))?;
                let count =
                    h.get("count").and_then(Value::as_u64).ok_or_else(|| err("missing count"))?;
                // min/max are omitted for empty histograms; restore the
                // empty-state sentinels so re-export is byte-identical.
                let min = h.get("min").and_then(Value::as_f64).unwrap_or(f64::INFINITY);
                let max = h.get("max").and_then(Value::as_f64).unwrap_or(f64::NEG_INFINITY);
                let hist = Histogram::from_parts(bounds, counts, sum, count, min, max)
                    .ok_or_else(|| err("counts do not match bounds"))?;
                registry.histograms.insert(name.clone(), hist);
            }
        }
        Ok(registry)
    }

    /// The registry as a deterministic JSON value (sorted keys throughout).
    pub fn to_json(&self) -> Value {
        let mut counters = serde_json::Map::new();
        for (name, v) in &self.counters {
            counters.insert(name.clone(), Value::U64(*v));
        }
        let mut gauges = serde_json::Map::new();
        for (name, v) in &self.gauges {
            gauges.insert(name.clone(), Value::F64(*v));
        }
        let mut hists = serde_json::Map::new();
        for (name, h) in &self.histograms {
            hists.insert(name.clone(), h.to_json());
        }
        let mut obj = serde_json::Map::new();
        obj.insert("counters".into(), Value::Object(counters));
        obj.insert("gauges".into(), Value::Object(gauges));
        obj.insert("histograms".into(), Value::Object(hists));
        Value::Object(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations_at_boundaries() {
        let mut h = Histogram::with_bounds(&[1.0, 5.0, 10.0]);
        // A boundary value lands in its own bucket (`<= bound`).
        h.observe(1.0);
        h.observe(0.2);
        h.observe(5.0);
        h.observe(5.1);
        h.observe(100.0);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 111.3).abs() < 1e-9);
        assert_eq!(h.min(), 0.2);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn histogram_merge_is_elementwise_and_order_free() {
        let mut a = Histogram::with_bounds(&[2.0, 4.0]);
        let mut b = Histogram::with_bounds(&[2.0, 4.0]);
        a.observe(1.0);
        a.observe(3.0);
        b.observe(9.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counts(), ba.counts());
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.counts(), &[1, 1, 1]);
        assert_eq!(ab.min(), 1.0);
        assert_eq!(ab.max(), 9.0);
    }

    #[test]
    #[should_panic(expected = "bounds mismatch")]
    fn histogram_merge_rejects_different_bounds() {
        let mut a = Histogram::with_bounds(&[1.0]);
        let b = Histogram::with_bounds(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn quantile_bound_walks_buckets() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 3.0]);
        for v in [0.5, 1.5, 1.6, 2.5] {
            h.observe(v);
        }
        assert_eq!(h.quantile_bound(0.25), 1.0);
        assert_eq!(h.quantile_bound(0.5), 2.0);
        assert_eq!(h.quantile_bound(1.0), 3.0);
        assert_eq!(Histogram::with_bounds(&[1.0]).quantile_bound(0.5), 0.0);
    }

    #[test]
    fn registry_merge_adds_counters_and_overwrites_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 2);
        a.gauge_set("g", 1.0);
        a.observe("h", COUNT_BUCKETS, 3.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 3);
        b.gauge_set("g", 9.0);
        b.observe("h", COUNT_BUCKETS, 5.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn registry_json_is_sorted_and_complete() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        r.gauge_set("m", 0.5);
        r.observe("d", &[1.0], 0.5);
        let json = serde_json::to_string(&r.to_json()).unwrap();
        let a = json.find("\"a\"").unwrap();
        let z = json.find("\"z\"").unwrap();
        assert!(a < z, "counters must serialise in sorted order");
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"gauges\""));
    }
}
