//! Canonical metric-name registry.
//!
//! Every subsystem declares its metric names through the
//! [`metric_names!`](crate::metric_names) macro, which emits the usual
//! documented `pub const` items **plus** an `ALL_METRIC_NAMES` slice
//! listing them. A registry check ([`unregistered`]) then asserts that a
//! recorded snapshot only contains registered names — the guard that kills
//! typo drift like `service.admission.rejected` vs
//! `service.admissions.rejected` before it reaches dashboards or the
//! regression gate.
//!
//! The macro keeps each `observe` module the single source of truth for
//! its own names (no central file to forget to update); the slice it
//! generates is what makes the names *enumerable*, so a full chaos run can
//! be diffed against the union of every subsystem's slice (see
//! `tests/metric_names.rs` at the workspace root).

use crate::handle::TelemetrySnapshot;

/// Declares canonical metric names and the registry slice that enumerates
/// them.
///
/// Each entry becomes a documented `pub const NAME: &str = "..."` exactly
/// as if written by hand; the macro additionally emits
/// `pub const ALL_METRIC_NAMES: &[&str]` listing every declared name so
/// registry checks can enumerate the module's vocabulary.
///
/// ```
/// mod observe {
///     pipetune_telemetry::metric_names! {
///         /// Total demo events.
///         pub const EVENTS = "demo.events";
///         /// Demo queue depth gauge.
///         pub const QUEUE_DEPTH = "demo.queue_depth";
///     }
/// }
/// assert_eq!(observe::EVENTS, "demo.events");
/// assert_eq!(observe::ALL_METRIC_NAMES, ["demo.events", "demo.queue_depth"]);
/// ```
#[macro_export]
macro_rules! metric_names {
    ($($(#[$meta:meta])* pub const $name:ident = $value:literal;)+) => {
        $($(#[$meta])* pub const $name: &str = $value;)+
        /// Every canonical metric name this module declares, for registry
        /// checks (see `pipetune_telemetry::names`).
        pub const ALL_METRIC_NAMES: &[&str] = &[$($name),+];
    };
}

/// Names recorded in `snapshot`'s metrics registry that appear in none of
/// the `registered` slices, sorted and de-duplicated (empty means every
/// emitted name is registered).
pub fn unregistered(snapshot: &TelemetrySnapshot, registered: &[&[&str]]) -> Vec<String> {
    let known: std::collections::BTreeSet<&str> =
        registered.iter().flat_map(|slice| slice.iter().copied()).collect();
    let mut missing: Vec<String> = snapshot
        .metrics
        .counters()
        .map(|(name, _)| name)
        .chain(snapshot.metrics.gauges().map(|(name, _)| name))
        .chain(snapshot.metrics.histograms().map(|(name, _)| name))
        .filter(|name| !known.contains(name))
        .map(str::to_string)
        .collect();
    missing.sort();
    missing.dedup();
    missing
}

#[cfg(test)]
mod tests {
    use super::*;

    mod observe {
        crate::metric_names! {
            /// Committed demo epochs.
            pub const EPOCHS = "demo.epochs";
            /// Demo epoch duration histogram.
            pub const EPOCH_SECS = "demo.epoch_secs";
        }
    }

    #[test]
    fn macro_declares_consts_and_registry_slice() {
        assert_eq!(observe::EPOCHS, "demo.epochs");
        assert_eq!(observe::ALL_METRIC_NAMES, ["demo.epochs", "demo.epoch_secs"]);
    }

    #[test]
    fn unregistered_reports_unknown_names_only() {
        let mut snap = TelemetrySnapshot::default();
        snap.metrics.counter_add(observe::EPOCHS, 1);
        snap.metrics.counter_add("demo.typo", 1);
        snap.metrics.gauge_set("demo.rogue_gauge", 0.5);
        snap.metrics.observe(observe::EPOCH_SECS, &[1.0], 0.5);
        assert_eq!(
            unregistered(&snap, &[observe::ALL_METRIC_NAMES]),
            vec!["demo.rogue_gauge".to_string(), "demo.typo".to_string()]
        );
        snap.metrics.counter_add("demo.typo", 1);
        let empty: Vec<String> = vec![];
        assert_eq!(
            unregistered(
                &snap,
                &[observe::ALL_METRIC_NAMES, &["demo.typo", "demo.rogue_gauge"]]
            ),
            empty
        );
    }
}
