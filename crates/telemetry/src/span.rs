//! The trace vocabulary: spans, events and their attributes.
//!
//! Spans form the hierarchy `tuning_run > rung > batch > trial > epoch`,
//! optionally rooted under a multi-job `service > job` prefix when a
//! `pipetune-service` driver runs many tuning jobs on one shared cluster;
//! events (`probe`, `gt_lookup`, `checkpoint`, `fault`,
//! `retry`, `profile`) hang off a span. All timestamps are **simulated**
//! seconds — never wall clock — so a trace is a pure function of the run's
//! seed and configuration, byte-identical for every executor worker count.

use serde_json::Value;

/// The levels of the span hierarchy.
///
/// Spans at [`SpanKind::Service`] and [`SpanKind::Job`] level carry
/// timestamps on the service's arrival clock (the shared simulated
/// timeline jobs arrive and complete on); spans at
/// [`SpanKind::TuningRun`], [`SpanKind::Rung`] and
/// [`SpanKind::Batch`] level carry timestamps on the run's shared
/// simulated wall clock (the one `TuningOutcome::tuning_secs` is measured
/// on, restarting at zero for each run); spans at [`SpanKind::Trial`] and
/// [`SpanKind::Epoch`] level carry timestamps on the *trial-cumulative*
/// clock (the trial's own simulated seconds,
/// `TrialExecution::duration_secs`). The `clock` attribute on every span
/// names which timeline applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A multi-job tuning service run: the root of a shared-cluster trace
    /// (see `docs/multitenancy.md`).
    Service,
    /// One submitted job inside a service run, from arrival to completion
    /// on the service's arrival clock.
    Job,
    /// One whole HPT job (PipeTune or a baseline).
    TuningRun,
    /// One scheduler round (a HyperBand rung issues one or more of these).
    Rung,
    /// The batch of trial requests executed concurrently within a rung.
    Batch,
    /// One trial request: a trial's epochs for one scheduler round.
    Trial,
    /// One training epoch inside a trial.
    Epoch,
}

impl SpanKind {
    /// Stable lower-snake name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Service => "service",
            SpanKind::Job => "job",
            SpanKind::TuningRun => "tuning_run",
            SpanKind::Rung => "rung",
            SpanKind::Batch => "batch",
            SpanKind::Trial => "trial",
            SpanKind::Epoch => "epoch",
        }
    }

    /// Inverse of [`SpanKind::name`] (trace re-import).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "service" => Some(SpanKind::Service),
            "job" => Some(SpanKind::Job),
            "tuning_run" => Some(SpanKind::TuningRun),
            "rung" => Some(SpanKind::Rung),
            "batch" => Some(SpanKind::Batch),
            "trial" => Some(SpanKind::Trial),
            "epoch" => Some(SpanKind::Epoch),
            _ => None,
        }
    }
}

/// Point events recorded against a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A probe epoch measured one candidate system configuration.
    Probe,
    /// The ground truth was consulted with first-epoch profile features
    /// (attribute `hit` tells whether a known configuration was reused).
    GtLookup,
    /// An epoch-boundary trial checkpoint was taken (crash recovery).
    Checkpoint,
    /// A fault was injected (attribute `fault` names the kind).
    Fault,
    /// A crashed epoch attempt was rolled back and retried.
    Retry,
    /// A first-epoch hardware-counter profile was collected.
    Profile,
    /// A node left or rejoined the service's shared slot pool (attribute
    /// `churn` names the direction; recorded on the service span).
    Churn,
    /// A job was shed for exceeding its deadline (recorded on the job
    /// span).
    Shed,
    /// The epoch-reuse cache was consulted for a fresh trial (attribute
    /// `hit` tells whether a cached prefix was adopted; on a hit,
    /// `epochs` carries the adopted depth and `saved_secs` the simulated
    /// epoch time the reuse avoided).
    CacheLookup,
    /// An online monitor detector fired (attributes `detector`,
    /// `severity` and `message` plus the detector's windowed evidence;
    /// injected by `pipetune-monitor` when an incident timeline is folded
    /// back into the trace — see `docs/monitoring.md`).
    Alert,
}

impl EventKind {
    /// Stable lower-snake name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Probe => "probe",
            EventKind::GtLookup => "gt_lookup",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Fault => "fault",
            EventKind::Retry => "retry",
            EventKind::Profile => "profile",
            EventKind::Churn => "churn",
            EventKind::Shed => "shed",
            EventKind::CacheLookup => "cache_lookup",
            EventKind::Alert => "alert",
        }
    }

    /// Inverse of [`EventKind::name`] (trace re-import).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "probe" => Some(EventKind::Probe),
            "gt_lookup" => Some(EventKind::GtLookup),
            "checkpoint" => Some(EventKind::Checkpoint),
            "fault" => Some(EventKind::Fault),
            "retry" => Some(EventKind::Retry),
            "profile" => Some(EventKind::Profile),
            "churn" => Some(EventKind::Churn),
            "shed" => Some(EventKind::Shed),
            "cache_lookup" => Some(EventKind::CacheLookup),
            "alert" => Some(EventKind::Alert),
            _ => None,
        }
    }
}

/// An attribute value. Kept as a closed enum (rather than JSON values) so
/// exports stay deterministic and the tsdb exporter can map numerics to
/// fields and strings to tags.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (serialised from the exact bit pattern, so traces of
    /// bit-identical runs are byte-identical).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl AttrValue {
    /// The value as JSON.
    pub fn to_json(&self) -> Value {
        match self {
            AttrValue::U64(v) => Value::U64(*v),
            AttrValue::I64(v) => Value::I64(*v),
            AttrValue::F64(v) => Value::F64(*v),
            AttrValue::Str(s) => Value::String(s.clone()),
            AttrValue::Bool(b) => Value::Bool(*b),
        }
    }

    /// The value as an `f64` field, if numeric (tsdb export).
    pub fn as_field(&self) -> Option<f64> {
        match self {
            AttrValue::U64(v) => Some(*v as f64),
            AttrValue::I64(v) => Some(*v as f64),
            AttrValue::F64(v) => Some(*v),
            AttrValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            AttrValue::Str(_) => None,
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<f32> for AttrValue {
    fn from(v: f32) -> Self {
        AttrValue::F64(f64::from(v))
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Attribute list. Insertion order is preserved and deterministic (exports
/// sort by key, so equal attribute *sets* export identically regardless of
/// insertion order).
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// A completed (or still open) span in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Hierarchy level.
    pub kind: SpanKind,
    /// Human label (workload name, `trial 7`, `epoch 3/probe`, ...).
    pub label: String,
    /// Index of the parent span within the same trace, if any.
    pub parent: Option<u32>,
    /// Start timestamp, simulated seconds (see [`SpanKind`] for which
    /// clock).
    pub start_secs: f64,
    /// End timestamp, simulated seconds; `NaN` while the span is open
    /// (exported as `null`).
    pub end_secs: f64,
    /// Key/value attributes.
    pub attrs: Attrs,
}

/// A point event in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event class.
    pub kind: EventKind,
    /// Index of the span the event belongs to, if any.
    pub span: Option<u32>,
    /// Timestamp, simulated seconds (same clock as the owning span).
    pub at_secs: f64,
    /// Key/value attributes.
    pub attrs: Attrs,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SpanKind::Service.name(), "service");
        assert_eq!(SpanKind::Job.name(), "job");
        assert_eq!(SpanKind::TuningRun.name(), "tuning_run");
        assert_eq!(SpanKind::Epoch.name(), "epoch");
        assert_eq!(SpanKind::from_name("job"), Some(SpanKind::Job));
        assert_eq!(SpanKind::from_name("service"), Some(SpanKind::Service));
        assert_eq!(EventKind::GtLookup.name(), "gt_lookup");
        assert_eq!(EventKind::Retry.name(), "retry");
        assert_eq!(EventKind::Churn.name(), "churn");
        assert_eq!(EventKind::Shed.name(), "shed");
        assert_eq!(EventKind::from_name("churn"), Some(EventKind::Churn));
        assert_eq!(EventKind::from_name("shed"), Some(EventKind::Shed));
        assert_eq!(EventKind::CacheLookup.name(), "cache_lookup");
        assert_eq!(EventKind::from_name("cache_lookup"), Some(EventKind::CacheLookup));
        assert_eq!(EventKind::Alert.name(), "alert");
        assert_eq!(EventKind::from_name("alert"), Some(EventKind::Alert));
    }

    #[test]
    fn attr_conversions_round_trip_through_json() {
        assert_eq!(AttrValue::from(3u32).to_json(), Value::U64(3));
        assert_eq!(AttrValue::from(-2i64).to_json(), Value::I64(-2));
        assert_eq!(AttrValue::from(0.5f64).to_json(), Value::F64(0.5));
        assert_eq!(AttrValue::from(true).to_json(), Value::Bool(true));
        assert_eq!(AttrValue::from("x").to_json(), Value::String("x".into()));
    }

    #[test]
    fn numeric_attrs_become_fields_strings_do_not() {
        assert_eq!(AttrValue::from(2u64).as_field(), Some(2.0));
        assert_eq!(AttrValue::from(false).as_field(), Some(0.0));
        assert_eq!(AttrValue::from("tag").as_field(), None);
    }
}
