//! Criterion micro-benchmarks for the substrate crates: the hot paths every
//! figure binary exercises (tensor math, real training epochs, kernels,
//! clustering, profiling, storage).

use criterion::{criterion_group, criterion_main, Criterion};
use pipetune_clustering::KMeans;
use pipetune_data::{mnist_like, news20_like, ImageSpec, TextSpec};
use pipetune_dnn::{LeNet5, LstmClassifier, Model, TextCnn, TrainConfig};
use pipetune_kernels::{Bfs, BfsConfig, IterativeKernel, Jacobi, JacobiConfig, SpKMeans, SpKMeansConfig};
use pipetune_perfmon::{Profiler, WorkloadSignature};
use pipetune_tensor::Tensor;
use pipetune_tsdb::{Database, Point, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tensor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);
    c.bench_function("tensor/matmul_64x64", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b).unwrap()))
    });
    let img = Tensor::randn(&[8, 1, 16, 16], 1.0, &mut rng);
    let kernel = Tensor::randn(&[6, 1, 5, 5], 0.2, &mut rng);
    let bias = Tensor::zeros(&[6]);
    c.bench_function("tensor/conv2d_direct_8x16x16", |bench| {
        bench.iter(|| std::hint::black_box(pipetune_tensor::conv2d(&img, &kernel, &bias).unwrap()))
    });
    c.bench_function("tensor/conv2d_gemm_8x16x16", |bench| {
        bench.iter(|| {
            std::hint::black_box(pipetune_tensor::conv2d_gemm(&img, &kernel, &bias).unwrap())
        })
    });
}

fn bench_training(c: &mut Criterion) {
    let spec = ImageSpec { train: 128, test: 32, ..ImageSpec::default() };
    let (train, _) = mnist_like(&spec, 3).unwrap();
    let cfg = TrainConfig { batch_size: 32, learning_rate: 0.02, ..TrainConfig::default() };
    c.bench_function("dnn/lenet_epoch_128", |bench| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = LeNet5::with_input_size(16, 10, 0.0, &mut rng).unwrap();
        bench.iter(|| model.train_epoch(&train, &cfg, &mut rng).unwrap())
    });
    let tspec = TextSpec { train: 96, test: 24, seq_len: 12, ..TextSpec::default() };
    let (ttrain, _) = news20_like(&tspec, 3).unwrap();
    c.bench_function("dnn/textcnn_epoch_96", |bench| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = TextCnn::new(tspec.vocab, tspec.seq_len, 16, 12, 20, 0.0, &mut rng).unwrap();
        bench.iter(|| model.train_epoch(&ttrain, &cfg, &mut rng).unwrap())
    });
    c.bench_function("dnn/lstm_epoch_96", |bench| {
        let mut rng = StdRng::seed_from_u64(6);
        let mut model =
            LstmClassifier::new(tspec.vocab, tspec.seq_len, 16, 16, 20, 0.0, &mut rng).unwrap();
        bench.iter(|| model.train_epoch(&ttrain, &cfg, &mut rng).unwrap())
    });
}

fn bench_kernels(c: &mut Criterion) {
    c.bench_function("kernels/jacobi_sweep_48", |bench| {
        let mut j = Jacobi::new(&JacobiConfig::default(), 1);
        bench.iter(|| j.step())
    });
    c.bench_function("kernels/bfs_4096", |bench| {
        let mut b = Bfs::new(&BfsConfig::default(), 2);
        bench.iter(|| b.step())
    });
    c.bench_function("kernels/spkmeans_2000", |bench| {
        let mut k = SpKMeans::new(&SpKMeansConfig::default(), 3);
        bench.iter(|| k.step())
    });
}

fn bench_clustering_and_profiling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let profiler = Profiler::default();
    let sig = WorkloadSignature {
        flops_per_epoch: 1e11,
        working_set_bytes: 3e9,
        memory_intensity: 0.5,
        branch_ratio: 0.1,
    };
    c.bench_function("perfmon/profile_epoch", |bench| {
        bench.iter(|| std::hint::black_box(profiler.profile_epoch(&sig, 8, 100.0, &mut rng)))
    });
    let profiles: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            let s = WorkloadSignature {
                flops_per_epoch: if i % 2 == 0 { 1e11 } else { 4e11 },
                ..sig
            };
            profiler.profile_epoch(&s, 8, 100.0, &mut rng).features()
        })
        .collect();
    c.bench_function("clustering/kmeans_64x58", |bench| {
        bench.iter(|| KMeans::new(2).fit(&profiles, 9).unwrap())
    });
    let model = KMeans::new(2).fit(&profiles, 9).unwrap();
    c.bench_function("clustering/silhouette_64x58", |bench| {
        bench.iter(|| {
            std::hint::black_box(
                pipetune_clustering::silhouette_score(&profiles, model.labels()).unwrap(),
            )
        })
    });
}

fn bench_tsdb(c: &mut Criterion) {
    c.bench_function("tsdb/write_point", |bench| {
        let db = Database::new();
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            db.write(Point::new("m", i).tag("w", "lenet").field("runtime", 1.0)).unwrap()
        })
    });
    let db = Database::new();
    for i in 0..10_000u64 {
        db.write(
            Point::new("m", i)
                .tag("w", if i % 2 == 0 { "lenet" } else { "cnn" })
                .field("runtime", i as f64),
        )
        .unwrap();
    }
    c.bench_function("tsdb/query_10k", |bench| {
        let q = Query::measurement("m").with_tag("w", "lenet").from_us(5_000);
        bench.iter(|| std::hint::black_box(db.query(&q).unwrap().len()))
    });
}

criterion_group!(
    benches,
    bench_tensor,
    bench_training,
    bench_kernels,
    bench_clustering_and_profiling,
    bench_tsdb
);
criterion_main!(benches);
