//! Criterion benchmarks for the tuning pipeline itself: scheduler rounds,
//! the cost model, the full PipeTune job at test scale, and the figure
//! paths' building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use pipetune::{
    warm_start_ground_truth, ExperimentEnv, PipeTune, SlotSchedule, TuneV1, TunerOptions,
    WorkloadSpec,
};
use pipetune_cluster::{CostModel, SystemConfig, WorkUnits};
use pipetune_search::{HyperBand, ParamSpec, SearchSpace, TrialReport, TrialScheduler};

fn bench_cost_model(c: &mut Criterion) {
    let model = CostModel::default();
    let work = WorkUnits {
        flops: 6e11,
        iterations: 937,
        working_set_bytes: 3e9,
        memory_intensity: 0.5,
    };
    c.bench_function("cluster/epoch_duration", |bench| {
        bench.iter(|| {
            std::hint::black_box(model.epoch_duration(
                &work,
                &SystemConfig::new(8, 16),
                1.0,
            ))
        })
    });
    c.bench_function("runner/slot_schedule_64", |bench| {
        let durations: Vec<f64> = (0..64).map(|i| (i % 7) as f64 + 1.0).collect();
        bench.iter(|| std::hint::black_box(SlotSchedule::assign(&durations, 4)))
    });
}

fn bench_hyperband(c: &mut Criterion) {
    let space = SearchSpace::new(vec![
        ParamSpec::float_range("lr", 0.001, 0.1, true),
        ParamSpec::int_choice("batch", &[32, 64, 256, 1024]),
    ]);
    c.bench_function("search/hyperband_r27_synthetic", |bench| {
        bench.iter(|| {
            let mut hb = HyperBand::new(space.clone(), 27, 3, 7);
            while !hb.is_finished() {
                for r in hb.next_trials() {
                    let score = r.config["lr"].as_f64();
                    hb.report(TrialReport { id: r.id, score, epochs_run: r.epochs });
                }
            }
            std::hint::black_box(hb.best())
        })
    });
}

fn bench_full_jobs(c: &mut Criterion) {
    let options = TunerOptions::fast();
    // Figure-path benchmarks: one HPT job per approach at test scale.
    c.bench_function("pipetune/tune_v1_job_fast", |bench| {
        bench.iter(|| {
            let env = ExperimentEnv::distributed(900);
            TuneV1::new(options).run(&env, &WorkloadSpec::lenet_mnist()).unwrap()
        })
    });
    c.bench_function("pipetune/pipetune_job_fast_warm", |bench| {
        let env = ExperimentEnv::distributed(901);
        let gt =
            warm_start_ground_truth(&env, &[WorkloadSpec::lenet_mnist()], &options).unwrap();
        let mut tuner = PipeTune::with_ground_truth(options, gt);
        bench.iter(|| tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cost_model, bench_hyperband, bench_full_jobs
}
criterion_main!(benches);
