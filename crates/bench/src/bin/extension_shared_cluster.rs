//! Extension: FIFO queueing vs. processor-shared co-location.
//!
//! The paper schedules HPT jobs FIFO (§5.1) but probes co-location effects
//! in Fig. 5. This experiment runs the same Poisson trace under both
//! regimes and compares average response times per approach — PipeTune's
//! shorter service times help in both, but sharing compresses the queueing
//! delay while stretching every job's wall time.

use pipetune::prelude::*;
use pipetune::{MultiTenancyOptions, multi_tenancy, multi_tenancy_shared};
use pipetune_bench::{pct, secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("extension_shared_cluster");
    let options = tuner_options();
    let specs = [WorkloadSpec::lenet_mnist(), WorkloadSpec::cnn_news20()];
    let mt = MultiTenancyOptions {
        jobs: if pipetune_bench::quick_mode() { 4 } else { 6 },
        arrival_rate_per_sec: 1.0 / 3000.0,
        seed: 470,
    };

    let env = ExperimentEnvBuilder::distributed(470).build().expect("valid experiment config");
    let fifo = multi_tenancy(&env, &specs, &options, &mt).expect("fifo trace runs");
    let shared = multi_tenancy_shared(&env, &specs, &options, &mt).expect("shared trace runs");

    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for (f, s) in fifo.iter().zip(&shared) {
        assert_eq!(f.approach, s.approach);
        rows.push(vec![
            f.approach.to_string(),
            secs(f.overall_secs),
            secs(s.overall_secs),
            format!("{:+.0}%", pct(s.overall_secs, f.overall_secs)),
        ]);
        gains.push((f.approach, f.overall_secs, s.overall_secs));
    }
    report.table(
        &["approach", "FIFO response", "shared response", "shared vs FIFO"],
        &rows,
    );
    let v1 = gains.iter().find(|g| g.0 == "TuneV1").unwrap();
    let pt = gains.iter().find(|g| g.0 == "PipeTune").unwrap();
    report.line(&format!(
        "\nPipeTune under sharing: {:.0}% vs V1 (FIFO: {:.0}%)",
        -pct(pt.2, v1.2),
        -pct(pt.1, v1.1)
    ));
    report.json("gains", &gains);
    report.finish();

    // PipeTune must keep its advantage in both regimes.
    assert!(pt.1 < v1.1, "FIFO advantage lost");
    assert!(pt.2 < v1.2, "sharing advantage lost");
}
