//! Table 2: accuracy, training time and tuning time for Arbitrary, Tune V1,
//! Tune V2 and PipeTune on LeNet/MNIST.

use pipetune::prelude::*;
use pipetune::{run_arbitrary, warm_start_ground_truth};
use pipetune_bench::{tuner_options, Report};

fn main() {
    let mut report = Report::new("table2_approaches");
    let options = tuner_options();
    let env = ExperimentEnvBuilder::distributed(202).build().expect("valid experiment config");
    let spec = WorkloadSpec::lenet_mnist();

    // Arbitrary: deliberately mis-set hyperparameters (too-hot learning
    // rate, oversized batch — the "if not correctly chosen" row).
    let arbitrary_hp = HyperParams {
        batch_size: 1024,
        learning_rate: 0.09,
        epochs: options.epochs_range.1 as u32,
        ..HyperParams::default()
    };
    let (arb_acc, arb_train) =
        run_arbitrary(&env, &spec, &arbitrary_hp, options.scale).expect("arbitrary runs");

    let v1 = TuneV1::new(options).run(&env, &spec).expect("v1 runs");
    let v2 = TuneV2::new(options).run(&env, &spec).expect("v2 runs");
    let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options)
        .expect("warm start");
    let pt = PipeTune::with_ground_truth(options, gt).run(&env, &spec).expect("pipetune runs");

    let rows = vec![
        vec![
            "Arbitrary".to_string(),
            format!("{:.2}", arb_acc * 100.0),
            format!("{arb_train:.0}"),
            "-".to_string(),
        ],
        vec![
            "Tune V1".to_string(),
            format!("{:.2}", v1.best_accuracy * 100.0),
            format!("{:.0}", v1.training_secs),
            format!("{:.0}", v1.tuning_secs),
        ],
        vec![
            "Tune V2".to_string(),
            format!("{:.2}", v2.best_accuracy * 100.0),
            format!("{:.0}", v2.training_secs),
            format!("{:.0}", v2.tuning_secs),
        ],
        vec![
            "PipeTune".to_string(),
            format!("{:.2}", pt.best_accuracy * 100.0),
            format!("{:.0}", pt.training_secs),
            format!("{:.0}", pt.tuning_secs),
        ],
    ];
    report.table(&["approach", "accuracy [%]", "training [s]", "tuning [s]"], &rows);
    report.line("\npaper: Arbitrary 84.47/445/-, V1 91.54/272/4575, V2 81.76/187/4817, PipeTune 92.70/188/3415");
    report.json(
        "rows",
        [
            ("Arbitrary", f64::from(arb_acc), arb_train, f64::NAN),
            ("TuneV1", f64::from(v1.best_accuracy), v1.training_secs, v1.tuning_secs),
            ("TuneV2", f64::from(v2.best_accuracy), v2.training_secs, v2.tuning_secs),
            ("PipeTune", f64::from(pt.best_accuracy), pt.training_secs, pt.tuning_secs),
        ],
    );
    report.finish();

    // Shape assertions from the paper's reading of Table 2:
    // 1. Arbitrary values lead to worse accuracy than tuned approaches.
    assert!(pt.best_accuracy > arb_acc, "tuning must beat arbitrary");
    // 2. PipeTune accuracy on par with (or better than) Tune V1.
    assert!(
        pt.best_accuracy >= v1.best_accuracy - 0.05,
        "PipeTune accuracy {} should be on par with V1 {}",
        pt.best_accuracy,
        v1.best_accuracy
    );
    // 3. PipeTune tunes faster than both baselines.
    assert!(pt.tuning_secs < v1.tuning_secs, "PipeTune should tune faster than V1");
    assert!(pt.tuning_secs < v2.tuning_secs, "PipeTune should tune faster than V2");
    // 4. The ratio objective buys V2 a short-training model at an accuracy
    //    cost (Table 2's V2 row). Known deviation from the paper: our V2
    //    *wall-clock tuning* comes out faster than V1, not slower — the
    //    selection effect of promoting fast trials outweighs the larger
    //    search space in this simulator (recorded in EXPERIMENTS.md).
    assert!(v2.training_secs < v1.training_secs, "V2 should find a faster-training model");
}
