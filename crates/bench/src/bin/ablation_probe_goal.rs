//! Ablation: probing optimisation function.
//!
//! Algorithm 1 picks the configuration that best fits the optimisation
//! function — "e.g., shortest runtime, lowest energy consumption". This
//! ablation runs all three goals and shows the runtime/energy trade they
//! make.

use pipetune::prelude::*;
use pipetune::{ProbeGoal};
use pipetune_bench::{kj, secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("ablation_probe_goal");
    let base = tuner_options();
    let spec = WorkloadSpec::lenet_mnist();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (name, goal) in [
        ("runtime", ProbeGoal::Runtime),
        ("energy", ProbeGoal::Energy),
        ("energy-delay", ProbeGoal::EnergyDelay),
    ] {
        let options = TunerOptions { probe_goal: goal, ..base };
        let env = ExperimentEnvBuilder::distributed(420).build().expect("valid experiment config");
        // Cold tuner: probing (whose goal we ablate) decides the configs.
        let mut tuner = PipeTune::new(options);
        // Two jobs: the second reuses what the first's probes recorded.
        let _ = tuner.run(&env, &spec).expect("first job");
        let out = tuner.run(&env, &spec).expect("second job");
        rows.push(vec![
            name.to_string(),
            secs(out.tuning_secs),
            kj(out.tuning_energy_j),
            format!("{:.1}%", out.best_accuracy * 100.0),
        ]);
        series.push((name, out.tuning_secs, out.tuning_energy_j));
    }
    report.table(&["probe goal", "tuning time", "tuning energy", "accuracy"], &rows);
    report.json("series", &series);
    report.finish();

    // The energy goal must not consume more energy than the runtime goal.
    let runtime = series.iter().find(|s| s.0 == "runtime").unwrap();
    let energy = series.iter().find(|s| s.0 == "energy").unwrap();
    assert!(
        energy.2 <= runtime.2 * 1.05,
        "energy-goal probing should conserve energy: {} vs {}",
        energy.2,
        runtime.2
    );
}
