//! Figure 10: training-trial-time convergence over the tuning wall clock
//! for CNN/News20 — PipeTune's trials must run consistently shorter than
//! Tune V1's and V2's throughout the process.
//!
//! (Fig. 9's accuracy-convergence counterpart lives in
//! `fig09_accuracy_convergence`, which also prints this figure's trace; this
//! binary isolates the trial-time statistics and their running envelope.)

use pipetune::prelude::*;
use pipetune::{warm_start_ground_truth};
use pipetune_bench::{tuner_options, Report};

/// Running mean of trial durations in completion order.
fn running_mean(points: &[pipetune::ConvergencePoint]) -> Vec<(f64, f64)> {
    let mut sum = 0.0;
    points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            sum += p.trial_secs;
            (p.wall_secs, sum / (i + 1) as f64)
        })
        .collect()
}

fn main() {
    let mut report = Report::new("fig10_trialtime_convergence");
    let options = tuner_options();
    // Same run as fig09.
    let env = ExperimentEnvBuilder::distributed(99).build().expect("valid experiment config");
    let spec = WorkloadSpec::cnn_news20();

    let v1 = TuneV1::new(options).run(&env, &spec).expect("v1");
    let v2 = TuneV2::new(options).run(&env, &spec).expect("v2");
    let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options).expect("gt");
    let pt = PipeTune::with_ground_truth(options, gt).run(&env, &spec).expect("pipetune");

    let mut rows = Vec::new();
    let mut means = Vec::new();
    for (name, out) in [("TuneV1", &v1), ("TuneV2", &v2), ("PipeTune", &pt)] {
        let trace = running_mean(&out.convergence);
        let cells: Vec<String> = trace
            .iter()
            .step_by((trace.len() / 8).max(1))
            .map(|(t, m)| format!("{t:.0}s:{m:.0}s"))
            .collect();
        let final_mean = trace.last().map(|(_, m)| *m).unwrap_or(0.0);
        rows.push(vec![name.to_string(), format!("{final_mean:.0} s"), cells.join("  ")]);
        means.push((name, final_mean));
    }
    report.table(
        &["approach", "mean trial time", "running mean (wall clock : mean)"],
        &rows,
    );
    let pt_mean = means.iter().find(|m| m.0 == "PipeTune").unwrap().1;
    let v1_mean = means.iter().find(|m| m.0 == "TuneV1").unwrap().1;
    let v2_mean = means.iter().find(|m| m.0 == "TuneV2").unwrap().1;
    report.line(&format!(
        "\nPipeTune mean trial time {pt_mean:.0}s vs V1 {v1_mean:.0}s / V2 {v2_mean:.0}s — \"consistently shorter trial times\" (§7.2)"
    ));
    report.json("means", &means);
    report.finish();

    assert!(pt_mean < v1_mean, "PipeTune must beat V1");
    assert!(pt_mean < v2_mean, "PipeTune must beat V2");
}
