//! Table 1: the state-of-the-art comparison matrix, reprinted from the
//! static data encoded in `pipetune::related`.

use pipetune::related_systems;
use pipetune_bench::Report;

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn main() {
    let mut report = Report::new("table1_related_matrix");
    let rows: Vec<Vec<String>> = related_systems()
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                tick(s.cpu).into(),
                tick(s.gpu).into(),
                tick(s.distributed_training).into(),
                tick(s.tunes_hyper).into(),
                tick(s.tunes_system).into(),
                s.frameworks.join("/"),
                tick(s.open_source).into(),
            ]
        })
        .collect();
    report.table(
        &["system", "cpu", "gpu", "distributed", "hyper", "system", "frameworks", "open source"],
        &rows,
    );
    report.line(
        "\nPipeTune is the only open-source CPU system tuning hyper AND system parameters with BigDL support.",
    );
    report.finish();
    assert_eq!(related_systems().len(), 16);
}
