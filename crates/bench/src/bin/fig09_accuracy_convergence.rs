//! Figures 9 & 10: convergence of accuracy and of per-trial time over the
//! tuning wall clock for the CNN/News20 workload, PipeTune vs Tune V1/V2.

use pipetune::prelude::*;
use pipetune::{ConvergencePoint, warm_start_ground_truth};
use pipetune_bench::{tuner_options, Report};

/// Wall-clock time at which the running-best accuracy first reaches `target`.
fn time_to_accuracy(points: &[ConvergencePoint], target: f32) -> Option<f64> {
    let mut best = 0.0f32;
    for p in points {
        best = best.max(p.accuracy);
        if best >= target {
            return Some(p.wall_secs);
        }
    }
    None
}

fn running_best(points: &[ConvergencePoint]) -> Vec<(f64, f32)> {
    let mut best = 0.0f32;
    points
        .iter()
        .map(|p| {
            best = best.max(p.accuracy);
            (p.wall_secs, best)
        })
        .collect()
}

fn main() {
    let mut report = Report::new("fig09_accuracy_convergence");
    let options = tuner_options();
    let env = ExperimentEnvBuilder::distributed(99).build().expect("valid experiment config");
    let spec = WorkloadSpec::cnn_news20();

    let v1 = TuneV1::new(options).run(&env, &spec).expect("v1");
    let v2 = TuneV2::new(options).run(&env, &spec).expect("v2");
    let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options).expect("gt");
    let pt = PipeTune::with_ground_truth(options, gt).run(&env, &spec).expect("pipetune");

    // Fig. 9: best-so-far accuracy vs wall clock (downsampled trace).
    report.line("(Fig. 9) best-so-far accuracy over tuning wall clock");
    let mut rows = Vec::new();
    for (name, out) in [("TuneV1", &v1), ("TuneV2", &v2), ("PipeTune", &pt)] {
        let trace = running_best(&out.convergence);
        let cells: Vec<String> = trace
            .iter()
            .step_by((trace.len() / 8).max(1))
            .map(|(t, a)| format!("{:.0}s:{:.0}%", t, a * 100.0))
            .collect();
        rows.push(vec![name.to_string(), cells.join("  ")]);
    }
    report.table(&["approach", "trace (wall clock : best accuracy)"], &rows);

    // Time to reach a common accuracy target — the speed-up the paper quotes
    // ("on average our approach is 1.5x and 2x faster than V1 and V2").
    let peak_common = pt
        .convergence
        .iter()
        .map(|p| p.accuracy)
        .fold(0.0f32, f32::max)
        .min(v1.convergence.iter().map(|p| p.accuracy).fold(0.0f32, f32::max));
    let target = peak_common * 0.8;
    let tt_pt = time_to_accuracy(&pt.convergence, target);
    let tt_v1 = time_to_accuracy(&v1.convergence, target);
    let tt_v2 = time_to_accuracy(&v2.convergence, target);
    report.line(&format!(
        "\ntime to {:.0}% accuracy: PipeTune {:?}s, V1 {:?}s, V2 {:?}s",
        target * 100.0,
        tt_pt.map(|t| t as i64),
        tt_v1.map(|t| t as i64),
        tt_v2.map(|t| t as i64)
    ));
    if let (Some(p), Some(a)) = (tt_pt, tt_v1) {
        report.line(&format!("speed-up vs V1: {:.2}x (paper: ~1.5x)", a / p));
    }

    // Fig. 10: per-trial duration trace (trial time convergence).
    report.line("\n(Fig. 10) trial durations over tuning wall clock");
    let mut rows10 = Vec::new();
    for (name, out) in [("TuneV1", &v1), ("TuneV2", &v2), ("PipeTune", &pt)] {
        let cells: Vec<String> = out
            .convergence
            .iter()
            .step_by((out.convergence.len() / 8).max(1))
            .map(|p| format!("{:.0}s:{:.0}s", p.wall_secs, p.trial_secs))
            .collect();
        rows10.push(vec![name.to_string(), cells.join("  ")]);
    }
    report.table(&["approach", "trace (wall clock : trial time)"], &rows10);

    // PipeTune's mean trial time should be the shortest (Fig. 10's claim:
    // "PipeTune consistently presents shorter trial times").
    let mean_trial = |o: &pipetune::TuningOutcome| {
        o.convergence.iter().map(|p| p.trial_secs).sum::<f64>() / o.convergence.len() as f64
    };
    let (m_pt, m_v1) = (mean_trial(&pt), mean_trial(&v1));
    report.line(&format!(
        "\nmean trial time: PipeTune {m_pt:.0}s, V1 {m_v1:.0}s, V2 {:.0}s",
        mean_trial(&v2)
    ));
    report.json(
        "convergence",
        [("v1", &v1.convergence), ("v2", &v2.convergence), ("pipetune", &pt.convergence)],
    );
    report.finish();
    assert!(m_pt < m_v1, "PipeTune trials should be shorter than V1's");
    if let (Some(p), Some(a)) = (tt_pt, tt_v1) {
        assert!(p <= a * 1.05, "PipeTune should reach target accuracy no later than V1");
    }
}
