//! Figure 8: k-means (k = 2) over profiling data groups workloads into the
//! Type-I and Type-II families, both when grouped by model and by dataset.

use pipetune::prelude::*;
use pipetune::{EpochWorkload, warm_start_ground_truth};
use pipetune_bench::{tuner_options, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("fig08_clustering");
    let options = tuner_options();
    let env = ExperimentEnvBuilder::distributed(88).build().expect("valid experiment config");
    let specs = WorkloadSpec::all_type12();
    let gt = warm_start_ground_truth(&env, &specs, &options).expect("warm start");

    // Fresh probe profiles for each workload; ask the fitted model where
    // they land and what the default-config epoch duration is (the bar
    // height in Fig. 8).
    let mut rng = StdRng::seed_from_u64(888);
    let mut rows = Vec::new();
    let mut assignments: Vec<(String, usize, f64)> = Vec::new();
    for spec in &specs {
        let spec = spec.with_scale(options.scale);
        let w = spec.instantiate(&HyperParams::default(), 99).expect("builds");
        let dur = env.cost.epoch_duration(&w.work_units(), &env.default_system, 1.0);
        let profile =
            env.profiler.profile_epoch(&w.signature(), env.default_system.cores, dur, &mut rng);
        let cluster = gt.cluster_of(&profile.features()).expect("model fitted");
        rows.push(vec![
            spec.name().to_string(),
            spec.model_name().to_string(),
            spec.dataset_name().to_string(),
            spec.job_type().label().to_string(),
            format!("cluster{}", cluster + 1),
            format!("{dur:.0} s"),
        ]);
        assignments.push((spec.name().to_string(), cluster, dur));
    }
    report.table(&["workload", "model", "dataset", "type", "cluster", "epoch duration"], &rows);

    // The paper's claim: Type-I lands in one cluster, Type-II in the other.
    let t1: Vec<usize> = assignments
        .iter()
        .filter(|(n, _, _)| n.starts_with("lenet"))
        .map(|(_, c, _)| *c)
        .collect();
    let t2: Vec<usize> = assignments
        .iter()
        .filter(|(n, _, _)| !n.starts_with("lenet"))
        .map(|(_, c, _)| *c)
        .collect();
    let t1_uniform = t1.windows(2).all(|w| w[0] == w[1]);
    let t2_uniform = t2.windows(2).all(|w| w[0] == w[1]);
    report.line(&format!(
        "\nType-I uniform: {t1_uniform}; Type-II uniform: {t2_uniform}; families separated: {}",
        t1[0] != t2[0]
    ));
    report.json("assignments", &assignments);
    report.finish();
    assert!(t1_uniform && t2_uniform && t1[0] != t2[0], "clusters must separate the families");
}
