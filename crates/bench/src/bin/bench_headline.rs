//! `bench_headline`: the paper-claim regression gate.
//!
//! Runs the headline single-tenancy experiments (Tune V1, Tune V2 and
//! PipeTune with the §7.2 warm-started ground truth) under live
//! telemetry, extracts the paper's claims from the traces — tuning-time
//! reduction vs V1, speedup, energy reduction, final accuracy — and
//! writes them as stable sorted-key JSON. A multi-tenant section then
//! runs the same Poisson job stream through the `pipetune-service`
//! scheduler under every policy, adding gated
//! `multitenant.{policy}.{mean,p95,...}_response_secs` metrics.
//!
//! ```text
//! bench_headline [--chaos] [--out PATH] [--check BASELINE]
//! ```
//!
//! With `--check`, the fresh metrics are compared against the committed
//! baseline (`BENCH_pipetune.json`) under
//! [`pipetune_insight::GateConfig::headline_defaults`]; the process exits
//! non-zero when any gated metric regressed beyond tolerance, which is
//! what fails the CI job.
//!
//! With `--chaos`, the single-tenancy section is skipped and the
//! multi-tenant streams run under the pinned
//! [`pipetune_cluster::ServiceFaultPlan::mixed`] fault schedule with a
//! deadline SLO — node churn, job crashes with checkpointed resubmission
//! and shedding all active. Each chaos stream also runs under live
//! telemetry with the online monitor's full detector set
//! ([`pipetune_monitor::MonitorConfig::standard`]): the report (default
//! out `BENCH_pipetune.chaos.json`) adds `multitenant.{policy}.{shed_rate,
//! abandoned_rate,completed_jobs,recovery_overhead_secs,...}` and
//! `multitenant.{policy}.monitor.{alerts_total,stall,crash_loop,...}`
//! metrics, each stream's incident timeline lands in
//! `target/incidents.{policy}.json` (the artefact CI uploads on gate
//! failure), and `--check` gates under
//! [`pipetune_insight::GateConfig::chaos_defaults`].
//!
//! Everything is simulated-deterministic: re-running produces the same
//! file byte for byte, so the committed baselines only change when the
//! pipeline's behaviour does.

use std::process::ExitCode;

use pipetune::prelude::*;
use pipetune::{warm_start_ground_truth};
use pipetune_cluster::{PoissonArrivals, ServiceFaultPlan};
use pipetune_insight::{
    cache_speedup_metrics, check, headline_metrics, multitenant_metrics, service_fault_metrics,
    BenchReport, GateConfig,
};
use pipetune_monitor::{MonitorConfig, MonitorHandle};
use pipetune_service::{JobOutcome, JobSubmission, SchedulingPolicy, ServiceConfig, TuningService};
use pipetune_telemetry::{TelemetryHandle, TelemetrySnapshot};

const SEED: u64 = 41;
/// Multi-tenant section: jobs per stream and the Poisson arrival rate
/// (mean inter-arrival 1500 simulated seconds keeps the queue busy).
const SERVICE_JOBS: usize = 6;
const SERVICE_RATE: f64 = 1.0 / 1500.0;
/// Chaos section: the deadline SLO sits near the clean streams' p95
/// response (most jobs finish; the tail is shed), and churn/crash draws
/// come from the pinned mixed plan.
const CHAOS_DEADLINE_SECS: f64 = 20_000.0;

/// Runs one approach over `spec` under a fresh telemetry handle and
/// returns its trace.
fn traced<F>(spec: &WorkloadSpec, run: F) -> TelemetrySnapshot
where
    F: FnOnce(&ExperimentEnv, &WorkloadSpec),
{
    let telemetry = TelemetryHandle::enabled();
    let env = ExperimentEnvBuilder::distributed(SEED).telemetry(telemetry.clone()).build().expect("valid experiment config");
    run(&env, spec);
    telemetry.snapshot().expect("enabled handle")
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut chaos = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--chaos" => chaos = true,
            "--out" => match args.next() {
                Some(path) => out_path = Some(path),
                None => return usage(),
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        if chaos { "BENCH_pipetune.chaos.json".into() } else { "BENCH_pipetune.json".into() }
    });
    let label = if chaos { "bench_chaos" } else { "bench_headline" };

    let options = TunerOptions::fast();
    let mut report = BenchReport { label: label.into(), ..Default::default() };
    if !chaos {
        for spec in [WorkloadSpec::lenet_mnist(), WorkloadSpec::lstm_news20()] {
            let key = spec.name().replace('/', "_");
            eprintln!("{label}: running {} (TuneV1, TuneV2, PipeTune)...", spec.name());
            let v1 = traced(&spec, |env, spec| {
                TuneV1::new(options).run(env, spec).expect("TuneV1 runs");
            });
            let v2 = traced(&spec, |env, spec| {
                TuneV2::new(options).run(env, spec).expect("TuneV2 runs");
            });
            let pt = traced(&spec, |env, spec| {
                let gt = warm_start_ground_truth(env, &WorkloadSpec::all_type12(), &options)
                    .expect("warm start");
                PipeTune::with_ground_truth(options, gt).run(env, spec).expect("PipeTune runs");
            });
            report.metrics.extend(headline_metrics(&key, &v1, &v2, &pt));
        }

        // Epoch-reuse cache headline: a cold PipeTune run fills a shared
        // cache, then an identical rerun adopts its prefixes. The warm
        // rerun must reproduce the cold result exactly — only faster —
        // and `cache.{workload}.warm_speedup` is the gated metric.
        for spec in [WorkloadSpec::lenet_mnist(), WorkloadSpec::lstm_news20()] {
            let key = spec.name().replace('/', "_");
            eprintln!("{label}: running {} (cold/warm epoch cache)...", spec.name());
            let cache = EpochCacheHandle::with_config(EpochCacheConfig::default());
            let env = ExperimentEnvBuilder::distributed(SEED).epoch_cache(cache).build().expect("valid experiment config");
            let cold = PipeTune::new(options).run(&env, &spec).expect("cold cache run");
            let warm = PipeTune::new(options).run(&env, &spec).expect("warm cache run");
            assert_eq!(
                warm.best_accuracy.to_bits(),
                cold.best_accuracy.to_bits(),
                "warm cache rerun must reproduce the cold result"
            );
            report.metrics.extend(cache_speedup_metrics(
                &key,
                cold.tuning_secs,
                warm.tuning_secs,
                warm.cache_stats.saved_secs,
            ));
        }
    }

    // Multi-tenant headline: the same arrival stream under every
    // scheduling policy, summarised as response-time percentiles (plus
    // fault-tolerance rates in chaos mode).
    let specs = [WorkloadSpec::lenet_mnist(), WorkloadSpec::lstm_news20()];
    let submissions: Vec<JobSubmission> = {
        let mut arrivals = PoissonArrivals::new(SERVICE_RATE, SEED);
        (0..SERVICE_JOBS)
            .map(|i| JobSubmission::new(arrivals.next_arrival().as_secs_f64(), specs[i % specs.len()]))
            .collect()
    };
    for policy in SchedulingPolicy::ALL {
        eprintln!("{label}: running {SERVICE_JOBS}-job service stream ({})...", policy.name());
        let mut env = ExperimentEnvBuilder::distributed(SEED).build().expect("valid experiment config");
        let mut config = ServiceConfig::default().with_policy(policy);
        // Chaos streams run under live telemetry with the online monitor's
        // full detector set; clean streams stay uninstrumented, keeping
        // BENCH_pipetune.json byte-identical to monitor-less builds.
        let mut watch: Option<(TelemetryHandle, MonitorHandle)> = None;
        if chaos {
            config = config
                .with_service_faults(ServiceFaultPlan::mixed(SEED))
                .with_deadline(CHAOS_DEADLINE_SECS);
            let telemetry = TelemetryHandle::enabled();
            let monitor = MonitorHandle::with_config(&MonitorConfig::standard());
            env = env.with_telemetry(telemetry.clone()).with_monitor(monitor.clone());
            watch = Some((telemetry, monitor));
        }
        let service = TuningService::new(config);
        let outcome = service.run(&env, &submissions, &options).expect("service runs");
        let prefix = format!("multitenant.{}", policy.name());
        let responses: Vec<f64> = outcome.jobs.iter().map(|r| r.response_secs).collect();
        report.metrics.extend(multitenant_metrics(&prefix, &responses));
        report.metrics.insert(format!("{prefix}.makespan_secs"), outcome.makespan_secs);
        if chaos {
            let completed = outcome
                .jobs
                .iter()
                .filter(|r| r.status == JobOutcome::Completed)
                .count();
            report.metrics.extend(service_fault_metrics(
                &prefix,
                &outcome.service_fault_report,
                outcome.jobs.len(),
                completed,
            ));
        }
        if let Some((telemetry, monitor)) = watch {
            let timeline = monitor.finish(&telemetry).expect("live monitor");
            report
                .metrics
                .insert(format!("{prefix}.monitor.alerts_total"), timeline.len() as f64);
            for detector in ["stall", "crash_loop", "slo_burn", "cache_thrash", "queue_growth"] {
                report.metrics.insert(
                    format!("{prefix}.monitor.{detector}"),
                    timeline.count_for(detector) as f64,
                );
            }
            // The incident timeline artefact CI uploads on chaos-gate
            // failure (sorted keys: byte-identical across reruns).
            let incident_path = format!("target/incidents.{}.json", policy.name());
            let _ = std::fs::create_dir_all("target");
            if let Err(e) =
                std::fs::write(&incident_path, format!("{}\n", timeline.to_json_string()))
            {
                eprintln!("{label}: cannot write {incident_path}: {e}");
                return ExitCode::from(1);
            }
            eprintln!(
                "{label}: {} incident(s) under {} -> {incident_path}",
                timeline.len(),
                policy.name(),
            );
        }
    }

    let text = report.to_json_string();
    if let Err(e) = std::fs::write(&out_path, format!("{text}\n")) {
        eprintln!("{label}: cannot write {out_path}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("{label}: wrote {} metrics to {out_path}", report.metrics.len());

    if let Some(baseline_path) = check_path {
        let baseline = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| BenchReport::from_json_str(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{label}: cannot load baseline {baseline_path}: {e}");
                return ExitCode::from(1);
            }
        };
        let config =
            if chaos { GateConfig::chaos_defaults() } else { GateConfig::headline_defaults() };
        let outcome = check(&baseline, &report, &config);
        print!("{}", outcome.render());
        if !outcome.passed() {
            eprintln!("{label}: regression vs {baseline_path}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_headline [--chaos] [--out PATH] [--check BASELINE]");
    ExitCode::from(1)
}
