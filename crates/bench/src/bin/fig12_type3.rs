//! Figure 12: the same single-tenancy metrics for the Type-III kernels
//! (Jacobi, spk-means, BFS) on the single-node testbed — the short-epoch
//! stress test for PipeTune's per-epoch profiling.

use pipetune::prelude::*;
use pipetune::{single_tenancy};
use pipetune_bench::{kj, pct, secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("fig12_type3");
    let options = tuner_options();
    let env = ExperimentEnvBuilder::single_node(112).build().expect("valid experiment config");
    let specs = WorkloadSpec::all_type3();
    let rows = single_tenancy(&env, &specs, &options).expect("type-3 single tenancy runs");

    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            r.workload.clone(),
            r.approach.to_string(),
            format!("{:.1}%", r.accuracy * 100.0),
            secs(r.training_secs),
            secs(r.tuning_secs),
            kj(r.tuning_energy_j),
        ]);
    }
    report.table(
        &["kernel", "approach", "score", "training", "tuning", "tuning energy"],
        &table,
    );

    let mut v1_tuning = 0.0;
    let mut pt_tuning = 0.0;
    let mut v1_energy = 0.0;
    let mut pt_energy = 0.0;
    let mut score_gaps = Vec::new();
    for w in rows.chunks(3) {
        let (v1, _v2, pt) = (&w[0], &w[1], &w[2]);
        v1_tuning += v1.tuning_secs;
        pt_tuning += pt.tuning_secs;
        v1_energy += v1.tuning_energy_j;
        pt_energy += pt.tuning_energy_j;
        score_gaps.push(f64::from(pt.accuracy - v1.accuracy));
    }
    let tuning_red = -pct(pt_tuning, v1_tuning);
    let energy_red = -pct(pt_energy, v1_energy);
    report.line(&format!(
        "\nPipeTune vs Tune V1 (short epochs): tuning −{tuning_red:.1}%, energy −{energy_red:.1}%"
    ));
    report.line(&format!(
        "score gap PipeTune − V1: {:?} (paper: comparable or better)",
        score_gaps.iter().map(|g| format!("{:+.1}pp", g * 100.0)).collect::<Vec<_>>()
    ));
    report.json("rows", &rows);
    report.finish();

    // Paper §7.3: "PipeTune also achieves the expected results in this more
    // challenging scenario and reduces both training and tuning time".
    assert!(tuning_red > 0.0, "PipeTune must still win with short epochs, got {tuning_red:.1}%");
    assert!(
        score_gaps.iter().all(|g| *g > -0.10),
        "kernel scores must stay comparable: {score_gaps:?}"
    );
}
