//! Figure 14: multi-tenancy average response time for the Type-III kernels
//! on the single-node testbed, per kernel and all together.

use pipetune::prelude::*;
use pipetune::{MultiTenancyOptions, multi_tenancy};
use pipetune_bench::{pct, secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("fig14_multitenant_type3");
    let options = tuner_options();
    let quick = pipetune_bench::quick_mode();
    let jobs_single = if quick { 3 } else { 6 };

    let mut all_groups = Vec::new();
    let singles = [
        ("jacobi", vec![WorkloadSpec::jacobi()], 141u64),
        ("bfs", vec![WorkloadSpec::bfs()], 142),
        ("spkmeans", vec![WorkloadSpec::spkmeans()], 143),
        ("all", WorkloadSpec::all_type3(), 144),
    ];
    for (label, specs, seed) in singles {
        let env = ExperimentEnvBuilder::single_node(seed).build().expect("valid experiment config");
        let mt = MultiTenancyOptions { jobs: jobs_single, arrival_rate_per_sec: 1.0 / 500.0, seed };
        let outcomes = multi_tenancy(&env, &specs, &options, &mt).expect("trace runs");
        let mut rows = Vec::new();
        for o in &outcomes {
            rows.push(vec![o.approach.to_string(), secs(o.overall_secs)]);
        }
        report.line(&format!("\n{label} ({jobs_single} jobs, single node):"));
        report.table(&["approach", "avg response time"], &rows);
        let v1 = outcomes.iter().find(|o| o.approach == "TuneV1").unwrap().overall_secs;
        let pt = outcomes.iter().find(|o| o.approach == "PipeTune").unwrap().overall_secs;
        report.line(&format!(
            "PipeTune response-time reduction vs V1: {:.0}% (paper: up to 65%)",
            -pct(pt, v1)
        ));
        all_groups.push((label, v1, pt));
    }
    report.json("groups", &all_groups);
    report.finish();

    // Paper: "the performance gain trends earlier observed become even more
    // evident" — PipeTune must beat V1 overall.
    let (_, v1_all, pt_all) = all_groups.last().unwrap();
    assert!(pt_all < v1_all, "PipeTune {pt_all:.0}s should beat V1 {v1_all:.0}s on the mixed trace");
}
