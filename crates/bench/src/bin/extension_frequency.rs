//! Extension: CPU frequency as a third system parameter.
//!
//! §7.1.4: "the same mechanisms can be applied to any other parameter of
//! interest (e.g., CPU frequency, CPU voltage)". This experiment enables
//! DVFS candidates in the system space and shows that energy-goal probing
//! discovers down-clocked configurations (dynamic power falls with f³ while
//! compute time only grows with 1/f), while runtime-goal probing sticks to
//! the nominal clock.

use pipetune::prelude::*;
use pipetune::{ProbeGoal};
use pipetune_bench::{kj, secs, tuner_options, Report};
use pipetune_cluster::SystemConfig;

fn main() {
    let mut report = Report::new("extension_frequency");
    let base = tuner_options();
    let spec = WorkloadSpec::lenet_mnist();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (name, goal, dvfs) in [
        ("runtime, no DVFS", ProbeGoal::Runtime, false),
        ("runtime, DVFS", ProbeGoal::Runtime, true),
        ("energy, DVFS", ProbeGoal::Energy, true),
        ("energy-delay, DVFS", ProbeGoal::EnergyDelay, true),
    ] {
        let options = TunerOptions { probe_goal: goal, ..base };
        let mut env = ExperimentEnvBuilder::distributed(460).build().expect("valid experiment config");
        if dvfs {
            env.system_space.freq_mhz = vec![1800, 2600, SystemConfig::NOMINAL_FREQ_MHZ];
        }
        // Two jobs: first probes (now including a frequency sweep), second
        // reuses; report the second.
        let mut tuner = PipeTune::new(options);
        let _ = tuner.run(&env, &spec).expect("first job");
        let out = tuner.run(&env, &spec).expect("second job");
        rows.push(vec![
            name.to_string(),
            out.best_system.to_string(),
            secs(out.tuning_secs),
            kj(out.tuning_energy_j),
        ]);
        series.push((name, out.best_system.freq_mhz, out.tuning_secs, out.tuning_energy_j));
    }
    report.table(&["probe goal / DVFS", "chosen config", "tuning time", "tuning energy"], &rows);
    report.line("\nenergy-goal probing exploits the f**3 dynamic-power law; runtime probing keeps the clock high.");
    report.json("series", &series);
    report.finish();

    let runtime_dvfs = series.iter().find(|s| s.0 == "runtime, DVFS").unwrap();
    let energy_dvfs = series.iter().find(|s| s.0 == "energy, DVFS").unwrap();
    assert_eq!(
        runtime_dvfs.1,
        SystemConfig::NOMINAL_FREQ_MHZ,
        "runtime goal should keep the nominal clock"
    );
    assert!(
        energy_dvfs.3 < runtime_dvfs.3,
        "energy-goal DVFS should consume less energy: {} vs {}",
        energy_dvfs.3,
        runtime_dvfs.3
    );
}
