//! Assembles the headline paper-vs-measured table from the JSON artefacts
//! the figure binaries wrote to `target/experiments/` (run `run_all` first).

use pipetune_bench::{artifacts_dir, pct, Report};
use serde_json::Value;

fn load(name: &str) -> Option<Value> {
    let path = artifacts_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn main() {
    let mut report = Report::new("summary");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut missing = Vec::new();

    // Table 2: tuning reduction & training speed-up on LeNet/MNIST.
    if let Some(t2) = load("table2_approaches") {
        let find = |name: &str| -> Option<(f64, f64, f64)> {
            t2["rows"].as_array()?.iter().find_map(|r| {
                let a = r.as_array()?;
                if a[0].as_str()? == name {
                    Some((a[1].as_f64()?, a[2].as_f64()?, a[3].as_f64().unwrap_or(f64::NAN)))
                } else {
                    None
                }
            })
        };
        if let (Some(v1), Some(pt)) = (find("TuneV1"), find("PipeTune")) {
            rows.push(vec![
                "tuning-time reduction vs V1 (Table 2)".into(),
                "−25 %".into(),
                format!("{:+.1} %", pct(pt.2, v1.2)),
            ]);
            rows.push(vec![
                "training speed-up (Table 2)".into(),
                "up to 1.7x".into(),
                format!("{:.2}x", v1.1 / pt.1),
            ]);
            rows.push(vec![
                "accuracy gap vs V1 (Table 2)".into(),
                "on par".into(),
                format!("{:+.1} pp", (pt.0 - v1.0) * 100.0),
            ]);
        }
    } else {
        missing.push("table2_approaches");
    }

    // Fig. 11: aggregate tuning & energy reduction.
    if let Some(f11) = load("fig11_single_tenancy") {
        if let Some(rows11) = f11["rows"].as_array() {
            let sum = |approach: &str, field: &str| -> f64 {
                rows11
                    .iter()
                    .filter(|r| r["approach"] == approach)
                    .filter_map(|r| r[field].as_f64())
                    .sum()
            };
            let (v1t, ptt) = (sum("TuneV1", "tuning_secs"), sum("PipeTune", "tuning_secs"));
            let (v1e, pte) =
                (sum("TuneV1", "tuning_energy_j"), sum("PipeTune", "tuning_energy_j"));
            rows.push(vec![
                "tuning reduction, Type-I/II (Fig. 11c)".into(),
                "up to 23 %".into(),
                format!("{:.1} %", -pct(ptt, v1t)),
            ]);
            rows.push(vec![
                "energy reduction, Type-I/II (Fig. 11d)".into(),
                "up to 29 %".into(),
                format!("{:.1} %", -pct(pte, v1e)),
            ]);
        }
    } else {
        missing.push("fig11_single_tenancy");
    }

    // Fig. 13: multi-tenancy response-time reduction ("all" group).
    if let Some(f13) = load("fig13_multitenant") {
        if let Some(groups) = f13["groups"].as_array() {
            if let Some(all) = groups.iter().find(|g| g[0] == "all") {
                let (v1, pt) = (all[1].as_f64().unwrap_or(0.0), all[3].as_f64().unwrap_or(0.0));
                rows.push(vec![
                    "response-time reduction (Fig. 13)".into(),
                    "up to 30 %".into(),
                    format!("{:.1} %", -pct(pt, v1)),
                ]);
            }
        }
    } else {
        missing.push("fig13_multitenant");
    }

    // Fig. 3: the crossover magnitudes.
    if let Some(f3) = load("fig03_param_impact") {
        if let Some(bc) = f3["bc"].as_array() {
            let cell = |batch: i64, cores: i64| -> Option<f64> {
                bc.iter().find_map(|e| {
                    let a = e.as_array()?;
                    (a[0].as_i64()? == batch && a[1].as_i64()? == cores)
                        .then(|| a[2].as_f64())?
                })
            };
            if let (Some(slow), Some(fast)) = (cell(64, 8), cell(1024, 8)) {
                rows.push(vec![
                    "Fig. 3b crossover (batch 64 / 1024 @ 8 cores)".into(),
                    "≈ +45 % / −40 %".into(),
                    format!("{slow:+.0} % / {fast:+.0} %"),
                ]);
            }
        }
    } else {
        missing.push("fig03_param_impact");
    }

    report.table(&["claim", "paper", "measured"], &rows);
    if !missing.is_empty() {
        report.line(&format!(
            "\nmissing artefacts (run `run_all` first): {missing:?}"
        ));
    }
    report.finish();
    assert!(!rows.is_empty(), "no artefacts found — run run_all first");
}
