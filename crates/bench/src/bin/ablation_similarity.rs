//! Ablation: pluggable similarity functions (§5.4).
//!
//! The paper fixes k-means (k = 2) but stresses that scikit-learn's other
//! clusterers plug in. This compares k-means against DBSCAN as the
//! ground-truth gate, on the same warm-started history and workload.

use pipetune::prelude::*;
use pipetune::{SimilarityKind, warm_start_ground_truth};
use pipetune_bench::{secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("ablation_similarity");
    let base = tuner_options();
    let spec = WorkloadSpec::lenet_mnist();

    let kinds = [
        ("kmeans k=2", SimilarityKind::KMeans { k: 2 }),
        ("kmeans k=4", SimilarityKind::KMeans { k: 4 }),
        ("dbscan", SimilarityKind::Dbscan { min_points: 4, eps_factor: 3.0 }),
    ];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (name, kind) in kinds {
        let options = TunerOptions { similarity: kind, ..base };
        let env = ExperimentEnvBuilder::distributed(450).build().expect("valid experiment config");
        let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options)
            .expect("warm start");
        let out =
            PipeTune::with_ground_truth(options, gt).run(&env, &spec).expect("job runs");
        rows.push(vec![
            name.to_string(),
            out.gt_stats.hits.to_string(),
            out.gt_stats.misses.to_string(),
            secs(out.tuning_secs),
            format!("{:.1}%", out.best_accuracy * 100.0),
        ]);
        series.push((name, out.gt_stats.hits, out.gt_stats.misses, out.tuning_secs));
    }
    report.table(&["similarity", "hits", "misses", "tuning", "accuracy"], &rows);
    report.line("\nthe gate is pluggable (§5.4): any function that recognises a family enables reuse.");
    report.json("series", &series);
    report.finish();

    // Both k-means variants and DBSCAN must enable reuse on a workload the
    // warm start has seen.
    for (name, hits, _, _) in &series {
        assert!(*hits > 0, "{name} produced no reuse");
    }
}
