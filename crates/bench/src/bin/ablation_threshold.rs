//! Ablation: similarity-threshold sensitivity.
//!
//! Sweeps the confidence threshold factor (§5.6): too tight and every job
//! probes (no reuse), too loose and dissimilar jobs reuse configurations
//! tuned for someone else.

use pipetune::prelude::*;
use pipetune::{warm_start_ground_truth};
use pipetune_bench::{secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("ablation_threshold");
    let base = tuner_options();
    let spec = WorkloadSpec::cnn_news20();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for factor in [0.0f64, 0.5, 1.0, 3.0, 10.0, 100.0] {
        let options = TunerOptions { threshold_factor: factor, ..base };
        let env = ExperimentEnvBuilder::distributed(410).build().expect("valid experiment config");
        let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options)
            .expect("warm start");
        let mut tuner = PipeTune::with_ground_truth(options, gt);
        let out = tuner.run(&env, &spec).expect("job runs");
        rows.push(vec![
            format!("{factor}"),
            out.gt_stats.hits.to_string(),
            out.gt_stats.misses.to_string(),
            secs(out.tuning_secs),
            format!("{:.1}%", out.best_accuracy * 100.0),
        ]);
        series.push((factor, out.gt_stats.hits, out.gt_stats.misses, out.tuning_secs));
    }
    report.table(&["threshold", "hits", "misses", "tuning", "accuracy"], &rows);
    report.line("\nthreshold 0 disables reuse (all misses); large thresholds accept everything.");
    report.json("series", &series);
    report.finish();

    let zero = &series[0];
    let loose = series.last().unwrap();
    assert_eq!(zero.1, 0, "zero threshold must never hit");
    assert!(loose.1 > 0, "loose threshold must hit");
    assert!(
        loose.3 <= zero.3,
        "reuse should not be slower than probe-always here"
    );
}
