//! `pipetune-trace`: offline analysis of exported telemetry traces.
//!
//! ```text
//! pipetune-trace report   <trace.json>           critical-path report
//! pipetune-trace diff     <a.json> <b.json>      compare two traces
//! pipetune-trace validate <trace.json>           check the span tree
//! pipetune-trace watch    <trace.json>           replay the online monitor
//! ```
//!
//! Traces are the JSON dumps written by
//! [`pipetune_telemetry::TelemetrySnapshot::to_json_string`] (see
//! `examples/telemetry.rs`). All analysis is a pure function of the trace,
//! so the output is byte-identical no matter how many executor workers
//! produced it.
//!
//! `watch` re-runs the full [`pipetune_monitor`] detector set
//! ([`MonitorConfig::standard`]) over the exported trace and prints the
//! incident timeline as sorted-key JSON — byte-identical to the timeline
//! a live run of the same trace produced, because the engine's
//! observation stream is invariant to scan granularity (see
//! `docs/monitoring.md`).
//!
//! Exit codes: `0` success, `1` usage or I/O error, `2` invalid trace.

use std::process::ExitCode;

use pipetune_insight::{TraceDiff, TraceReport};
use pipetune_monitor::{MonitorConfig, MonitorEngine};
use pipetune_telemetry::TelemetrySnapshot;

const USAGE: &str = "usage: pipetune-trace <report|diff|validate|watch> <trace.json> [b.json]";

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("pipetune-trace: cannot read {path}: {e}");
        ExitCode::from(1)
    })
}

fn parse(path: &str, text: &str) -> Result<TelemetrySnapshot, ExitCode> {
    TelemetrySnapshot::from_json_str(text).map_err(|e| {
        eprintln!("pipetune-trace: {path}: {e}");
        ExitCode::from(2)
    })
}

fn run() -> Result<(), ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invalid = |e| {
        eprintln!("pipetune-trace: {e}");
        ExitCode::from(2)
    };
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        ["report", path] => {
            let snap = parse(path, &read(path)?)?;
            let report = TraceReport::from_snapshot(&snap).map_err(invalid)?;
            print!("{}", report.render());
            Ok(())
        }
        ["diff", a, b] => {
            let snap_a = parse(a, &read(a)?)?;
            let snap_b = parse(b, &read(b)?)?;
            let diff = TraceDiff::between(&snap_a, &snap_b).map_err(invalid)?;
            print!("{}", diff.render());
            Ok(())
        }
        ["watch", path] => {
            let snap = parse(path, &read(path)?)?;
            snap.validate().map_err(invalid)?;
            let mut engine = MonitorEngine::new(&MonitorConfig::standard());
            engine.observe_snapshot(&snap);
            let timeline = engine.finish(&snap.metrics);
            println!("{}", timeline.to_json_string());
            eprintln!(
                "pipetune-trace: {} alert(s) over {} spans, {} events",
                timeline.len(),
                snap.spans.len(),
                snap.events.len()
            );
            Ok(())
        }
        ["validate", path] => {
            let snap = parse(path, &read(path)?)?;
            snap.validate().map_err(invalid)?;
            println!(
                "{path}: valid trace ({} spans, {} events)",
                snap.spans.len(),
                snap.events.len()
            );
            Ok(())
        }
        _ => {
            eprintln!("{USAGE}");
            Err(ExitCode::from(1))
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}
