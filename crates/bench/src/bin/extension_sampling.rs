//! Extension: profiling through the full 1 Hz sampling pipeline.
//!
//! §7.3: "Long epochs work in favor of PipeTune since low-overhead profiling
//! is performed across the first couple of epochs to classify new
//! workloads." With sample-level profiling enabled, short Type-III epochs
//! leave many of the 58 events unmeasured (blind spots), degrading profile
//! quality exactly as the paper warns — while the minutes-long Type-I epochs
//! are unaffected.

use pipetune::prelude::*;
use pipetune::{warm_start_ground_truth};
use pipetune_bench::{tuner_options, Report};
use pipetune_perfmon::WorkloadSignature;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("extension_sampling");
    let options = tuner_options();

    // Part 1: measure the blind-spot rate directly per epoch length.
    let profiler = pipetune_perfmon::Profiler::default();
    let sig = WorkloadSignature {
        flops_per_epoch: 1e11,
        working_set_bytes: 3e9,
        memory_intensity: 0.5,
        branch_ratio: 0.1,
    };
    let mut rng = StdRng::seed_from_u64(480);
    let mut rows = Vec::new();
    let mut blind_by_len = Vec::new();
    for epoch_secs in [3.0f64, 10.0, 30.0, 120.0] {
        let trace = profiler.sample_epoch(&sig, 8, epoch_secs, &mut rng);
        let blind = trace.coverage().iter().filter(|&&c| c == 0.0).count();
        rows.push(vec![
            format!("{epoch_secs:.0} s"),
            trace.windows().len().to_string(),
            format!("{blind}/58"),
        ]);
        blind_by_len.push((epoch_secs, blind));
    }
    report.line("(a) blind spots vs epoch length (2 generic counters, 1 Hz)");
    report.table(&["epoch", "sample windows", "events never measured"], &rows);

    // Part 2: end-to-end — does PipeTune still reuse under sampled profiles?
    let mut rows2 = Vec::new();
    for (label, spec, testbed_single) in [
        ("lenet/mnist (long epochs)", WorkloadSpec::lenet_mnist(), false),
        ("jacobi (short epochs)", WorkloadSpec::jacobi(), true),
    ] {
        let builder = if testbed_single {
            ExperimentEnvBuilder::single_node(481)
        } else {
            ExperimentEnvBuilder::distributed(481)
        };
        let env = builder.sampled_profiling(true).build().expect("valid experiment config");
        let gt = warm_start_ground_truth(&env, std::slice::from_ref(&spec), &options)
            .expect("warm start");
        let out =
            PipeTune::with_ground_truth(options, gt).run(&env, &spec).expect("job runs");
        rows2.push(vec![
            label.to_string(),
            out.gt_stats.hits.to_string(),
            out.gt_stats.misses.to_string(),
            format!("{:.1}%", out.best_accuracy * 100.0),
        ]);
    }
    report.line("\n(b) PipeTune under sampled profiling");
    report.table(&["workload", "hits", "misses", "accuracy"], &rows2);
    report.json("blind_by_len", &blind_by_len);
    report.finish();

    // Short epochs must leave more blind spots than long ones.
    assert!(
        blind_by_len.first().unwrap().1 > blind_by_len.last().unwrap().1,
        "blind spots should shrink with epoch length: {blind_by_len:?}"
    );
    assert_eq!(blind_by_len.last().unwrap().1, 0, "2-minute epochs cover everything");
}
