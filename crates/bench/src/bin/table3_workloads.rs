//! Table 3: the workload inventory — paper-scale metadata next to the
//! scaled synthetic sizes this reproduction actually trains on.

use pipetune::{EpochWorkload, HyperParams, WorkloadSpec};
use pipetune_bench::Report;
use pipetune_data::DATASET_META;

fn main() {
    let mut report = Report::new("table3_workloads");
    let mut rows = Vec::new();
    for spec in WorkloadSpec::all_type12().into_iter().chain(WorkloadSpec::all_type3()) {
        let meta = DATASET_META
            .iter()
            .find(|m| m.name.to_lowercase().starts_with(&spec.dataset_name()[..4.min(spec.dataset_name().len())]))
            .or_else(|| DATASET_META.iter().find(|m| m.name == "Rodinia"));
        let w = spec.with_scale(1.0).instantiate(&HyperParams::default(), 1).expect("builds");
        let (size_mb, train_files, test_files) = meta
            .map(|m| (m.datasize_mb, m.train_files, m.test_files))
            .unwrap_or((0, 0, 0));
        rows.push(vec![
            spec.job_type().label().to_string(),
            spec.model_name().to_string(),
            spec.dataset_name().to_string(),
            format!("{size_mb} MB"),
            train_files.to_string(),
            test_files.to_string(),
            format!("{:.1e}", w.work_units().flops),
        ]);
    }
    report.table(
        &["type", "model", "dataset", "datasize", "train files", "test files", "flops/epoch (sim)"],
        &rows,
    );
    report.line("\npaper sizes from Table 3; the synthetic substrate trains scaled-down splits (DESIGN.md).");
    report.finish();
    assert_eq!(rows.len(), 7, "all seven workloads must be present");
}
