//! Extension: choosing `k` with silhouette analysis, and the §5.3
//! correlated-event filter.
//!
//! The paper fixes `k = 2` and leaves other values "for future work"
//! (§5.4); silhouette scores over the real warm-start profile history let
//! the data pick. It also states that highly correlated events are filtered
//! before profiling (§5.3); part (b) measures how much of the 58-event list
//! actually carries independent information.

use pipetune::prelude::*;
use pipetune::{warm_start_ground_truth};
use pipetune_bench::{tuner_options, Report};
use pipetune_clustering::select_k;
use pipetune_perfmon::decorrelated_events;

fn main() {
    let mut report = Report::new("extension_k_selection");
    let options = tuner_options();
    let env = ExperimentEnvBuilder::distributed(490).build().expect("valid experiment config");
    let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options)
        .expect("warm start");
    let features = gt.feature_history();

    // (a) k selection by silhouette over the real profile history.
    let (best_k, scores) =
        select_k(&features, &[2, 3, 4, 5, 6], env.subseed(0x4B)).expect("selection runs");
    let rows: Vec<Vec<String>> =
        scores.iter().map(|(k, s)| vec![k.to_string(), format!("{s:.3}")]).collect();
    report.line("(a) silhouette score per k over the §7.2 profile history");
    report.table(&["k", "silhouette"], &rows);
    report.line(&format!("best k = {best_k} (the paper's choice is k = 2)"));

    // (b) §5.3's correlation filter over the same history.
    let profiles: Vec<pipetune_perfmon::EpochProfile> = {
        // Rebuild epoch profiles from fresh probes (features lost raw counts).
        use pipetune::{EpochWorkload, HyperParams};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(env.subseed(0x4C));
        WorkloadSpec::all_type12()
            .into_iter()
            .flat_map(|spec| {
                let spec = spec.with_scale(options.scale);
                (0..4u64).map(move |rep| (spec, rep))
            })
            .map(|(spec, rep)| {
                let hp = HyperParams {
                    batch_size: [32, 64, 512, 1024][rep as usize % 4],
                    ..HyperParams::default()
                };
                let w = spec.instantiate(&hp, 600 + rep).expect("builds");
                let dur = env.cost.epoch_duration(&w.work_units(), &env.default_system, 1.0);
                env.profiler.profile_epoch(&w.signature(), env.default_system.cores, dur, &mut rng)
            })
            .collect()
    };
    let mut rows2 = Vec::new();
    for threshold in [0.99f64, 0.9, 0.7] {
        let kept = decorrelated_events(&profiles, threshold);
        rows2.push(vec![format!("{threshold}"), format!("{}/58", kept.len())]);
    }
    report.line("\n(b) events surviving the §5.3 correlation filter");
    report.table(&["|corr| threshold", "events kept"], &rows2);
    report.json("k_scores", &scores);
    report.finish();

    // The two workload families are the dominant structure, so silhouette
    // must prefer a small k (the paper's k = 2 regime).
    assert!(best_k <= 3, "silhouette picked k = {best_k}, expected the family structure");
}
