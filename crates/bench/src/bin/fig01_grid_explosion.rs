//! Figure 1: exhaustive grid tuning time and EC2 cost grow exponentially in
//! the number of tuned parameters (LeNet/MNIST, 1–6 parameters × 3 values,
//! three ML-optimised instance types).

use pipetune::prelude::*;
use pipetune_bench::{pct, Report};
use pipetune_search::{GridSearch, ParamSpec, SearchSpace};

/// On-demand hourly prices (us-east-1, 2020) for the paper's instances.
const INSTANCES: [(&str, f64); 3] =
    [("m4.4xlarge", 0.80), ("m5.12xlarge", 2.304), ("m5.24xlarge", 4.608)];

/// Relative throughput of each instance vs. the reference node.
const SPEEDUP: [f64; 3] = [1.0, 2.4, 4.4];

fn main() {
    let mut report = Report::new("fig01_grid_explosion");
    let env = ExperimentEnvBuilder::distributed(1).build().expect("valid experiment config");
    // The six parameters in the order they are added to the grid; each takes
    // 3 values (the paper: "each parameter was configured to take up to 3
    // different values").
    let all_params = [
        ParamSpec::int_choice("batch_size", &[32, 256, 1024]),
        ParamSpec::float_choice("learning_rate", &[0.001, 0.01, 0.1]),
        ParamSpec::float_choice("dropout", &[0.0, 0.25, 0.5]),
        ParamSpec::int_choice("epochs", &[10, 30, 50]),
        ParamSpec::int_choice("embedding_dim", &[8, 32, 64]),
        ParamSpec::float_choice("momentum", &[0.0, 0.5, 0.9]),
    ];

    // Reference epoch duration for the default LeNet/MNIST trial.
    let spec = WorkloadSpec::lenet_mnist().with_scale(0.2);
    let hp = HyperParams::default();
    let workload = spec.instantiate(&hp, 1).expect("workload builds");
    use pipetune::EpochWorkload;
    let epoch_secs = env.cost.epoch_duration(&workload.work_units(), &env.default_system, 1.0);

    let mut rows = Vec::new();
    let mut series: Vec<(usize, f64, [f64; 3])> = Vec::new();
    for n in 1..=all_params.len() {
        let space = SearchSpace::new(all_params[..n].to_vec());
        // Average epochs hyperparameter value = 30 (middle of the grid).
        let grid = GridSearch::new(space, 3, 30);
        let trials = grid.num_trials();
        let serial_secs = trials as f64 * 30.0 * epoch_secs;
        // The paper runs the grid on one instance at a time.
        let hours = serial_secs / 3600.0;
        let mut costs = [0.0f64; 3];
        let mut row = vec![n.to_string(), trials.to_string(), format!("{hours:.2} h")];
        for (i, ((_, price), speed)) in INSTANCES.iter().zip(SPEEDUP).enumerate() {
            costs[i] = hours / speed * price;
            row.push(format!("${:.2}", costs[i]));
        }
        rows.push(row);
        series.push((n, hours, costs));
    }
    report.table(
        &["params", "grid points", "tuning time", INSTANCES[0].0, INSTANCES[1].0, INSTANCES[2].0],
        &rows,
    );

    // Paper claim: growth is exponential — each added parameter multiplies
    // the cost by the value count (3x).
    let growth = pct(series[5].1, series[4].1) / 100.0 + 1.0;
    report.line(&format!(
        "\ngrowth factor per added parameter: {growth:.1}x (expected 3x — exponential blow-up)"
    ));
    report.json("series", &series);
    report.finish();
    assert!((2.5..3.5).contains(&growth), "grid growth should be ~3x");
}
