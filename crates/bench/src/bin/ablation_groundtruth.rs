//! Ablation: ground-truth reuse on/off.
//!
//! PipeTune with a warm similarity model vs. PipeTune forced to probe every
//! job from scratch (cold ground truth, never carried across jobs). The gap
//! is the value of §5.4's history sharing.

use pipetune::prelude::*;
use pipetune::{warm_start_ground_truth};
use pipetune_bench::{pct, secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("ablation_groundtruth");
    let options = tuner_options();
    let spec = WorkloadSpec::lenet_mnist();
    let jobs = 3usize;

    // Warm: shared ground truth bootstrapped from the §7.2 campaign.
    let env = ExperimentEnvBuilder::distributed(400).build().expect("valid experiment config");
    let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options).expect("gt");
    let mut warm = PipeTune::with_ground_truth(options, gt);
    let warm_total: f64 =
        (0..jobs).map(|_| warm.run(&env, &spec).expect("job runs").tuning_secs).sum();

    // Cold: a fresh tuner per job — every job profiles and probes anew.
    let cold_total: f64 = (0..jobs)
        .map(|_| {
            PipeTune::new(options).run(&env, &spec).expect("job runs").tuning_secs
        })
        .sum();

    // Shared-but-initially-empty: the ground truth builds up over the jobs.
    let mut building = PipeTune::new(options);
    let building_each: Vec<f64> =
        (0..jobs).map(|_| building.run(&env, &spec).expect("job runs").tuning_secs).collect();
    let building_total: f64 = building_each.iter().sum();

    report.table(
        &["variant", "total tuning (3 jobs)", "vs cold"],
        &[
            vec!["cold (probe every job)".into(), secs(cold_total), "0.0%".into()],
            vec![
                "shared, built online".into(),
                secs(building_total),
                format!("{:+.1}%", pct(building_total, cold_total)),
            ],
            vec![
                "warm-started".into(),
                secs(warm_total),
                format!("{:+.1}%", pct(warm_total, cold_total)),
            ],
        ],
    );
    report.line(&format!(
        "\nonline build per-job trend: {:?} (later jobs benefit from earlier probes)",
        building_each.iter().map(|s| format!("{s:.0}s")).collect::<Vec<_>>()
    ));
    report.json("totals", [("cold", cold_total), ("online", building_total), ("warm", warm_total)]);
    report.finish();

    assert!(warm_total <= cold_total, "warm ground truth must not be slower than cold");
    assert!(
        building_total <= cold_total * 1.02,
        "online sharing must roughly amortise probing"
    );
}
