//! Regenerates every table and figure by running all experiment binaries in
//! sequence. Artefacts land in `target/experiments/`.
//!
//! Pass `--quick` to forward quick mode to every child.

use std::process::Command;

const BINARIES: [&str; 16] = [
    "table1_related_matrix",
    "table3_workloads",
    "fig01_grid_explosion",
    "fig02_profile_heatmap",
    "fig03_param_impact",
    "fig05_tune_characterization",
    "table2_approaches",
    "fig08_clustering",
    "fig09_accuracy_convergence",
    "fig10_trialtime_convergence",
    "fig11_single_tenancy",
    "fig12_type3",
    "fig13_multitenant",
    "fig14_multitenant_type3",
    "ablation_groundtruth",
    "ablation_threshold",
];

/// Slower ablations appended when not in quick mode.
const SLOW: [&str; 8] = [
    "ablation_probe_goal",
    "ablation_profiling_overhead",
    "ablation_scheduler",
    "ablation_similarity",
    "extension_frequency",
    "extension_shared_cluster",
    "extension_sampling",
    "extension_k_selection",
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures = Vec::new();
    let list: Vec<&str> = if quick {
        BINARIES.to_vec()
    } else {
        BINARIES.iter().chain(SLOW.iter()).copied().collect()
    };
    for bin in &list {
        println!("\n########## {bin} ##########");
        let mut cmd = Command::new(exe_dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{bin} exited with {status}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to launch: {e}");
                failures.push(*bin);
            }
        }
    }
    // Assemble the headline paper-vs-measured table from the artefacts.
    println!("\n########## summarize ##########");
    let _ = Command::new(exe_dir.join("summarize")).status();

    println!("\n==================================================");
    if failures.is_empty() {
        println!("all {} experiments reproduced; artefacts in target/experiments/", list.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
