//! Figure 2: 58 hardware events averaged per epoch while training a CNN on
//! News20 — the repetitive per-epoch pattern PipeTune exploits.
//!
//! Prints the heatmap as magnitude buckets (the paper's legend: >1e8,
//! 1e8–1e6, 1e6–1e4, 1e4–1e2, <1e2) for the initialisation phase plus five
//! epochs.

use pipetune::prelude::*;
use pipetune::{EpochWorkload};
use pipetune_bench::Report;
use pipetune_perfmon::EVENT_NAMES;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bucket(v: f64) -> char {
    // One glyph per legend bucket, dark → light.
    if v > 1e8 {
        '#'
    } else if v > 1e6 {
        '+'
    } else if v > 1e4 {
        'o'
    } else if v > 1e2 {
        '.'
    } else {
        ' '
    }
}

fn main() {
    let mut report = Report::new("fig02_profile_heatmap");
    let env = ExperimentEnvBuilder::distributed(2).build().expect("valid experiment config");
    let spec = WorkloadSpec::cnn_news20().with_scale(0.3);
    let hp = HyperParams { batch_size: 64, embedding_dim: 32, ..HyperParams::default() };
    let workload = spec.instantiate(&hp, 2).expect("workload builds");
    let sig = workload.signature();
    // Paper setup: 16 cores, 32 GB.
    let sys = pipetune_cluster::SystemConfig::new(16, 32);
    let epoch_secs = env.cost.epoch_duration(&workload.work_units(), &sys, 1.0);

    let mut rng = StdRng::seed_from_u64(22);
    // Initialisation phase: a fraction of an epoch's work (JVM + data load).
    let init_sig = pipetune_perfmon::WorkloadSignature {
        flops_per_epoch: sig.flops_per_epoch * 0.1,
        memory_intensity: sig.memory_intensity * 1.5,
        ..sig
    };
    let mut columns = vec![env.profiler.profile_epoch(&init_sig, sys.cores, epoch_secs * 0.3, &mut rng)];
    for _ in 0..5 {
        columns.push(env.profiler.profile_epoch(&sig, sys.cores, epoch_secs, &mut rng));
    }

    report.line("event (rows) x {Init, epoch 1..5} (cols); glyphs: '#'>1e8  '+'1e8-1e6  'o'1e6-1e4  '.'1e4-1e2  ' '<1e2\n");
    let mut json_rows = Vec::new();
    for (i, name) in EVENT_NAMES.iter().enumerate() {
        let cells: String =
            columns.iter().map(|c| bucket(c.counts()[i])).collect::<Vec<char>>().iter().map(|ch| format!(" {ch}")).collect();
        report.line(&format!("{name:<36}{cells}"));
        json_rows.push((name.to_string(), columns.iter().map(|c| c.counts()[i]).collect::<Vec<f64>>()));
    }

    // The Fig. 2 observation: per-event counts repeat across epochs. Verify
    // the relative spread of the training epochs is small for a busy event.
    let idx = pipetune_perfmon::event_index("instructions").expect("known event");
    let vals: Vec<f64> = columns[1..].iter().map(|c| c.counts()[idx]).collect();
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let sd = (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt();
    report.line(&format!(
        "\ninstructions/epoch relative spread across epochs: {:.1}% (repetitive, as in Fig. 2)",
        sd / mean * 100.0
    ));
    report.json("heatmap", &json_rows);
    report.finish();
    assert!(sd / mean < 0.2, "epochs should repeat");
}
