//! Wall-clock speedup of the multi-threaded trial executor.
//!
//! Runs the same seeded PipeTune job at increasing worker counts and
//! records real (not simulated) wall-clock time. The determinism contract
//! makes the runs byte-identical, so this measures pure execution speedup;
//! the binary asserts that identity alongside the timings.

use std::time::Instant;

use pipetune::prelude::*;
use pipetune_bench::Report;

fn timed_run(workers: usize) -> (TuningOutcome, f64) {
    let env = ExperimentEnvBuilder::distributed(77).workers(workers).build().expect("valid experiment config");
    let mut tuner = PipeTune::new(TunerOptions::fast());
    let start = Instant::now();
    let out = tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("tuning job runs");
    (out, start.elapsed().as_secs_f64())
}

fn main() {
    let mut report = Report::new("parallel_speedup");
    let worker_counts: &[usize] = if pipetune_bench::quick_mode() { &[1, 4] } else { &[1, 2, 4, 8] };

    // Warm-up: touch the allocator and page cache so worker count 1 is not
    // penalised for going first.
    let _ = timed_run(1);

    let (baseline_out, baseline_secs) = timed_run(1);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for &w in worker_counts {
        let (out, secs) = if w == 1 { (baseline_out.clone(), baseline_secs) } else { timed_run(w) };
        assert_eq!(
            out.best_accuracy.to_bits(),
            baseline_out.best_accuracy.to_bits(),
            "worker count changed the result — determinism contract broken"
        );
        assert_eq!(out.tuning_secs.to_bits(), baseline_out.tuning_secs.to_bits());
        let speedup = baseline_secs / secs.max(1e-9);
        rows.push(vec![
            w.to_string(),
            format!("{:.2} s", secs),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push((w, secs, speedup));
    }
    report.table(&["workers", "wall-clock", "speedup"], &rows);
    report.line("\nresults byte-identical across all worker counts");
    report.json(
        "rows",
        json_rows
            .iter()
            .map(|&(w, secs, speedup)| (w as u64, secs, speedup))
            .collect::<Vec<_>>(),
    );
    report.finish();
}
