//! Figure 3: impact of hyper and system parameters on accuracy, runtime and
//! energy for LeNet/MNIST.
//!
//! (a) batch-size impact vs. the batch-32 baseline (accuracy from *real*
//!     training; duration/energy from the calibrated models);
//! (b) cores impact on duration per batch size vs. 1 core;
//! (c) cores impact on energy per batch size vs. 1 core.

use pipetune::prelude::*;
use pipetune::{EpochWorkload, SystemTuner, TrialExecution};
use pipetune_bench::{pct, Report};
use pipetune_cluster::SystemConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_once(
    env: &ExperimentEnv,
    batch: usize,
    sys: SystemConfig,
    epochs: u32,
    scale: f32,
) -> (f32, f64, f64) {
    let hp = HyperParams { batch_size: batch, learning_rate: 0.02, epochs, ..HyperParams::default() };
    let spec = WorkloadSpec::lenet_mnist().with_scale(scale);
    let workload = spec.instantiate(&hp, 33).expect("workload builds");
    let mut trial = TrialExecution::new(workload, SystemTuner::Fixed(sys));
    let mut rng = StdRng::seed_from_u64(33);
    trial.run_epochs(env, epochs, None, 1.0, &mut rng).expect("epochs run");
    let acc = trial.accuracy().expect("eval");
    (acc, trial.duration_secs(), trial.energy_j())
}

fn main() {
    let quick = pipetune_bench::quick_mode();
    let scale = if quick { 0.2 } else { 0.6 };
    let epochs = if quick { 4 } else { 10 };
    let mut report = Report::new("fig03_param_impact");
    let env = ExperimentEnvBuilder::distributed(3).build().expect("valid experiment config");

    // (a) batch size at the paper's fixed system configuration.
    let sys = SystemConfig::new(8, 16);
    let (acc0, dur0, en0) = run_once(&env, 32, sys, epochs, scale);
    let mut rows = Vec::new();
    let mut series_a = Vec::new();
    for batch in [64usize, 256, 1024] {
        let (acc, dur, en) = run_once(&env, batch, sys, epochs, scale);
        let d_acc = pct(f64::from(acc), f64::from(acc0));
        let d_dur = pct(dur, dur0);
        let d_en = pct(en, en0);
        rows.push(vec![
            batch.to_string(),
            format!("{d_acc:+.1}%"),
            format!("{d_dur:+.1}%"),
            format!("{d_en:+.1}%"),
        ]);
        series_a.push((batch, d_acc, d_dur, d_en));
    }
    report.line("(a) batch-size impact vs batch = 32 (accuracy / duration / energy)");
    report.table(&["batch", "accuracy", "duration", "energy"], &rows);

    // (b)+(c): cores impact per batch size vs 1 core. Accuracy is untouched
    // (same hyperparameters); only time/energy move.
    let mut rows_d = Vec::new();
    let mut rows_e = Vec::new();
    let mut series_bc = Vec::new();
    for batch in [64usize, 256, 1024] {
        let hp = HyperParams { batch_size: batch, ..HyperParams::default() };
        let spec = WorkloadSpec::lenet_mnist().with_scale(scale);
        let workload = spec.instantiate(&hp, 33).expect("workload builds");
        let work = workload.work_units();
        let base_sys = SystemConfig::new(1, 16);
        let base_dur = env.cost.epoch_duration(&work, &base_sys, 1.0);
        let base_en = env.trial_power_watts(1) * base_dur;
        let mut row_d = vec![format!("batch {batch}")];
        let mut row_e = vec![format!("batch {batch}")];
        for cores in [2u32, 4, 8] {
            let s = SystemConfig::new(cores, 16);
            let dur = env.cost.epoch_duration(&work, &s, 1.0);
            let en = env.trial_power_watts(cores) * dur;
            row_d.push(format!("{:+.1}%", pct(dur, base_dur)));
            row_e.push(format!("{:+.1}%", pct(en, base_en)));
            series_bc.push((batch, cores, pct(dur, base_dur), pct(en, base_en)));
        }
        rows_d.push(row_d);
        rows_e.push(row_e);
    }
    report.line("\n(b) cores impact on duration vs 1 core");
    report.table(&["", "2 cores", "4 cores", "8 cores"], &rows_d);
    report.line("\n(c) cores impact on energy vs 1 core");
    report.table(&["", "2 cores", "4 cores", "8 cores"], &rows_e);

    // Shape checks from the paper:
    // batch 1024 trains faster but less accurately than batch 32 (a);
    let (_, a1024_acc, a1024_dur, _) = series_a[2];
    assert!(a1024_acc < 5.0, "large batch should not beat small batch accuracy");
    assert!(a1024_dur < 0.0, "large batch should be faster");
    // batch 64 slows down at 8 cores, batch 1024 speeds up (b).
    let slow = series_bc.iter().find(|x| x.0 == 64 && x.1 == 8).unwrap().2;
    let fast = series_bc.iter().find(|x| x.0 == 1024 && x.1 == 8).unwrap().2;
    report.line(&format!(
        "\ncrossover: batch 64 @8 cores {slow:+.0}% vs batch 1024 @8 cores {fast:+.0}% (paper: ≈+45% / −40%)"
    ));
    report.json("a", &series_a);
    report.json("bc", &series_bc);
    report.finish();
    assert!(slow > 0.0 && fast < 0.0, "Fig. 3b crossover must reproduce");
}
