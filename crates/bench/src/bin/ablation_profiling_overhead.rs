//! Ablation: profiling overhead.
//!
//! §7.3 argues the per-epoch profiling cost is outweighed by the tuning
//! gains. This ablation sweeps the profiled-epoch overhead from 0 to 30 %
//! and finds where PipeTune's advantage over Tune V1 disappears.

use pipetune::prelude::*;
use pipetune::{warm_start_ground_truth};
use pipetune_bench::{pct, secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("ablation_profiling_overhead");
    let options = tuner_options();
    let spec = WorkloadSpec::lenet_mnist();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for overhead in [0.0f64, 0.02, 0.10, 0.30] {
        let env = ExperimentEnvBuilder::distributed(430)
            .profile_overhead(overhead)
            .build()
            .expect("valid experiment config");
        let v1 = TuneV1::new(options).run(&env, &spec).expect("v1 runs");
        let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options)
            .expect("warm start");
        let pt = PipeTune::with_ground_truth(options, gt).run(&env, &spec).expect("pipetune runs");
        let gain = -pct(pt.tuning_secs, v1.tuning_secs);
        rows.push(vec![
            format!("{:.0}%", overhead * 100.0),
            secs(pt.tuning_secs),
            secs(v1.tuning_secs),
            format!("{gain:+.1}%"),
        ]);
        series.push((overhead, pt.tuning_secs, v1.tuning_secs, gain));
    }
    report.table(&["profile overhead", "PipeTune tuning", "V1 tuning", "PipeTune gain"], &rows);
    report.line("\npaper §7.3: the profiling overhead is outweighed by the tuning gains.");
    report.json("series", &series);
    report.finish();

    // At the paper's (small) overhead the gain must survive; gains shrink as
    // the overhead grows.
    assert!(series[1].3 > 0.0, "PipeTune must win at 2% overhead");
    assert!(
        series[0].3 >= series[3].3,
        "gains must not grow with overhead: {series:?}"
    );
}
