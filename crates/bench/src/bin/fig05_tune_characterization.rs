//! Figure 5: Tune V2's error and runtime improvement relative to a single
//! Tune V1 job, under varying cores × co-located jobs (the paper pins the
//! tuning job and its background jobs to the same cores).

use pipetune::prelude::*;
use pipetune_bench::{pct, tuner_options, Report};
use pipetune_cluster::SystemConfig;

fn main() {
    let mut report = Report::new("fig05_tune_characterization");
    let options = tuner_options();
    let spec = WorkloadSpec::lenet_mnist();

    // Baseline: one Tune V1 job on dedicated default cores.
    let env = ExperimentEnvBuilder::distributed(55).build().expect("valid experiment config");
    let base = TuneV1::new(options).run(&env, &spec).expect("baseline runs");
    let base_err = f64::from(1.0 - base.best_accuracy);
    let base_train = base.training_secs;
    report.line(&format!(
        "baseline Tune V1: error {:.1}%, training {:.0}s\n",
        base_err * 100.0,
        base_train
    ));

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for jobs in [2usize, 3, 4] {
        let mut row = vec![format!("{jobs} jobs")];
        for cores in [1u32, 2, 4, 8] {
            // The V2 tuning job shares `cores` with `jobs-1` background jobs
            // pinned to the same logical cores: its searchable core counts
            // are capped and its busy time is multiplied by the job count.
            // Each cell is an independent run (own seed), as in the paper's
            // characterization campaign.
            let mut env = ExperimentEnvBuilder::distributed(5500 + u64::from(cores) * 10 + jobs as u64).build().expect("valid experiment config");
            env.system_space.cores = match cores {
                1 => vec![1],
                2 => vec![1, 2],
                4 => vec![2, 4],
                _ => vec![4, 8],
            };
            env.default_system = SystemConfig { cores, memory_gb: 8, ..SystemConfig::default() };
            let contention = jobs as f64;
            let out = TuneV2::new(options)
                .run_with_contention(&env, &spec, contention)
                .expect("v2 runs");
            let err = f64::from(1.0 - out.best_accuracy);
            let err_impr = pct(base_err, err); // positive = error improved
            let rt_impr = pct(base_train, out.training_secs);
            row.push(format!("{err_impr:+.0}%/{rt_impr:+.0}%"));
            series.push((jobs, cores, err_impr, rt_impr));
        }
        rows.push(row);
    }
    report.line("cells: error improvement % / runtime improvement % vs single Tune V1 job");
    report.table(&["", "1 core", "2 cores", "4 cores", "8 cores"], &rows);

    // Paper observation: "only a few system configurations yielded
    // improvements over the baseline for error and training time".
    let both_better = series.iter().filter(|(_, _, e, r)| *e > 0.0 && *r > 0.0).count();
    report.line(&format!(
        "\nconfigurations improving BOTH error and runtime: {both_better}/{} (paper: only a few)",
        series.len()
    ));
    report.json("series", &series);
    report.finish();
    assert!(
        both_better < series.len(),
        "some configurations must trade accuracy for speed"
    );
}
