//! Figure 11: single-tenancy evaluation of accuracy, training duration,
//! tuning duration and tuning energy for the four Type-I/II workloads under
//! Tune V1, Tune V2 and PipeTune.

use pipetune::prelude::*;
use pipetune::{single_tenancy};
use pipetune_bench::{kj, pct, secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("fig11_single_tenancy");
    let options = tuner_options();
    let env = ExperimentEnvBuilder::distributed(111).build().expect("valid experiment config");
    let specs = if pipetune_bench::quick_mode() {
        vec![WorkloadSpec::lenet_mnist(), WorkloadSpec::cnn_news20()]
    } else {
        WorkloadSpec::all_type12()
    };
    let rows = single_tenancy(&env, &specs, &options).expect("single tenancy runs");

    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            r.workload.clone(),
            r.approach.to_string(),
            format!("{:.1}%", r.accuracy * 100.0),
            secs(r.training_secs),
            secs(r.tuning_secs),
            kj(r.tuning_energy_j),
        ]);
    }
    report.table(
        &["workload", "approach", "accuracy", "training", "tuning", "tuning energy"],
        &table,
    );

    // Summaries per the paper's §7.3 bullets.
    let mut v1_tuning = 0.0;
    let mut pt_tuning = 0.0;
    let mut v1_energy = 0.0;
    let mut pt_energy = 0.0;
    let mut acc_gaps = Vec::new();
    for w in rows.chunks(3) {
        let (v1, v2, pt) = (&w[0], &w[1], &w[2]);
        assert_eq!(v1.approach, "TuneV1");
        assert_eq!(v2.approach, "TuneV2");
        v1_tuning += v1.tuning_secs;
        pt_tuning += pt.tuning_secs;
        v1_energy += v1.tuning_energy_j;
        pt_energy += pt.tuning_energy_j;
        acc_gaps.push(f64::from(pt.accuracy - v1.accuracy));
    }
    let tuning_red = -pct(pt_tuning, v1_tuning);
    let energy_red = -pct(pt_energy, v1_energy);
    report.line(&format!(
        "\nPipeTune vs Tune V1: tuning time −{tuning_red:.1}% (paper: up to 23%), energy −{energy_red:.1}% (paper: up to 29%)"
    ));
    report.line(&format!(
        "accuracy gap PipeTune − V1 per workload: {:?} (paper: negligible)",
        acc_gaps.iter().map(|g| format!("{:+.1}pp", g * 100.0)).collect::<Vec<_>>()
    ));
    report.json("rows", &rows);
    report.finish();

    assert!(tuning_red > 5.0, "PipeTune must reduce aggregate tuning time, got {tuning_red:.1}%");
    assert!(energy_red > 5.0, "PipeTune must reduce aggregate tuning energy, got {energy_red:.1}%");
    assert!(
        acc_gaps.iter().all(|g| *g > -0.10),
        "PipeTune accuracy must stay close to V1: {acc_gaps:?}"
    );
}
