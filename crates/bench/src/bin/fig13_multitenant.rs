//! Figure 13: multi-tenancy average response time for Type-I and Type-II
//! workloads (grouped by type, plus all together), under Poisson arrivals
//! and FIFO scheduling.

use pipetune::prelude::*;
use pipetune::{MultiTenancyOptions, multi_tenancy};
use pipetune_bench::{pct, secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("fig13_multitenant");
    let options = tuner_options();
    let quick = pipetune_bench::quick_mode();
    let jobs = if quick { 4 } else { 8 };

    let mut all_groups = Vec::new();
    for (label, specs, seed) in [
        ("Type-I", vec![WorkloadSpec::lenet_mnist(), WorkloadSpec::lenet_fashion()], 131u64),
        ("Type-II", vec![WorkloadSpec::cnn_news20(), WorkloadSpec::lstm_news20()], 132),
        ("all", WorkloadSpec::all_type12(), 133),
    ] {
        let env = ExperimentEnvBuilder::distributed(seed).build().expect("valid experiment config");
        let mt = MultiTenancyOptions { jobs, arrival_rate_per_sec: 1.0 / 4000.0, seed };
        let outcomes = multi_tenancy(&env, &specs, &options, &mt).expect("trace runs");
        let mut rows = Vec::new();
        for o in &outcomes {
            rows.push(vec![o.approach.to_string(), secs(o.overall_secs)]);
        }
        report.line(&format!("\n{label} ({jobs} jobs):"));
        report.table(&["approach", "avg response time"], &rows);
        let v1 = outcomes.iter().find(|o| o.approach == "TuneV1").unwrap().overall_secs;
        let pt = outcomes.iter().find(|o| o.approach == "PipeTune").unwrap().overall_secs;
        let v2 = outcomes.iter().find(|o| o.approach == "TuneV2").unwrap().overall_secs;
        let red_v1 = -pct(pt, v1);
        let red_v2 = -pct(pt, v2);
        report.line(&format!(
            "PipeTune response-time reduction: {red_v1:.0}% vs V1, {red_v2:.0}% vs V2 (paper: up to 30%)"
        ));
        all_groups.push((label, v1, v2, pt));
    }
    report.json("groups", &all_groups);
    report.finish();

    // PipeTune must reduce the average response time vs V1 in every group.
    for (label, v1, _v2, pt) in &all_groups {
        assert!(pt < v1, "{label}: PipeTune {pt:.0}s should beat V1 {v1:.0}s");
    }
}
