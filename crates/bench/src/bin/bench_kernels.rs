//! `bench_kernels`: the wall-clock kernel benchmark.
//!
//! Measures real (not simulated) throughput of the blocked GEMM behind
//! [`Tensor::matmul`] and the workspace-backed im2col convolution
//! ([`pipetune_tensor::conv2d_gemm_with`]) against frozen copies of the
//! pre-overhaul naive kernels, inlined below so the baseline can never
//! silently improve. Every comparison first asserts the two paths produce
//! **byte-identical** results — the overhaul's contract is "same bits,
//! less time" (see `docs/performance.md`).
//!
//! ```text
//! bench_kernels [--out PATH] [--check BASELINE] [--strict] [--quick]
//! ```
//!
//! The report (default out `BENCH_pipetune.perf.json`) carries
//! `gemm.{m}x{k}x{n}.{gflops_naive,gflops_blocked,speedup_vs_naive}` and
//! the matching `conv2d.*` metrics. Wall-clock numbers vary across
//! machines, so `--check` gates under
//! [`pipetune_insight::GateConfig::perf_defaults`] — metric *presence*
//! and catastrophic collapse only, never absolute time. `--strict`
//! additionally fails the process when any committed shape's speedup
//! drops below 2× (used when refreshing the committed baseline on a
//! quiet machine, not in CI). `--quick` halves the repetitions for a
//! fast smoke run.

use std::process::ExitCode;
use std::time::Instant;

use pipetune_insight::{check, BenchReport, GateConfig};
use pipetune_tensor::{conv2d_gemm_with, Tensor, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Speedup floor asserted under `--strict` for every committed shape.
const STRICT_FLOOR: f64 = 2.0;

/// GEMM shapes `(m, k, n)` the committed baseline carries. Chosen so the
/// B operand (k×n) far exceeds the L2 cache: that is the regime the
/// blocked kernel's packed panels are built for, and the regime the
/// pre-overhaul streaming kernel re-reads B from L3/DRAM once per output
/// row.
const GEMM_SHAPES: [(usize, usize, usize); 3] =
    [(512, 1024, 1024), (512, 1536, 1536), (256, 2048, 2048)];

/// Conv shapes `(batch, cin, cout, ksize, hw)` the committed baseline
/// carries; the im2col-lowered GEMM dominates each.
const CONV_SHAPES: [(usize, usize, usize, usize, usize); 2] =
    [(8, 128, 512, 3, 32), (2, 256, 512, 3, 16)];

// ---------------------------------------------------------------------
// Frozen pre-overhaul kernels (the baseline). Do not "improve" these:
// they exist to pin what the repository shipped before the blocked
// kernels landed, and they double as the bit-identity reference.
// ---------------------------------------------------------------------

/// The pre-overhaul streaming `matmul` kernel: i-k-j loops with the
/// zero-skip, exactly as `Tensor::matmul` computed before blocking.
fn naive_gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aip * bv;
            }
        }
    }
}

/// The pre-overhaul im2col + GEMM convolution: fresh allocations for the
/// unfolded matrix, the transposed kernel matrix, the product and the
/// bias-broadcast copy, with the naive streaming GEMM in the middle.
fn naive_conv2d_gemm(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
) -> (Vec<f32>, [usize; 4]) {
    let wd = weight.shape().dims();
    let (cout, cin, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let d = input.shape().dims();
    let (n, h, w) = (d[0], d[2], d[3]);
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let (rows, k) = (n * oh * ow, cin * kh * kw);

    let cols = pipetune_tensor::im2col(input, kh, kw).expect("im2col");
    let mut wmat = vec![0.0f32; k * cout];
    for r in 0..cout {
        for c in 0..k {
            wmat[c * cout + r] = weight.data()[r * k + c];
        }
    }
    let mut prod = vec![0.0f32; rows * cout];
    naive_gemm(cols.data(), &wmat, &mut prod, rows, k, cout);
    let mut biased = prod.clone();
    for row in biased.chunks_exact_mut(cout) {
        for (v, &bv) in row.iter_mut().zip(bias.data()) {
            *v += bv;
        }
    }
    let mut out = vec![0.0f32; n * cout * oh * ow];
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let src = ((b * oh + oy) * ow + ox) * cout;
                for oc in 0..cout {
                    out[((b * cout + oc) * oh + oy) * ow + ox] = biased[src + oc];
                }
            }
        }
    }
    (out, [n, cout, oh, ow])
}

/// Wall-clock of the fastest of `reps` runs of `f` (after one warm-up).
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page in buffers, grow workspaces to steady state
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() -> ExitCode {
    let mut out_path = "BENCH_pipetune.perf.json".to_string();
    let mut check_path: Option<String> = None;
    let mut strict = false;
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--quick" => reps = 1,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => return usage(),
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let mut report = BenchReport { label: "bench_kernels".into(), ..Default::default() };
    let mut floor_ok = true;
    let mut rng = StdRng::seed_from_u64(4242);

    for (m, k, n) in GEMM_SHAPES {
        let key = format!("gemm.{m}x{k}x{n}");
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let gflop = (2.0 * m as f64 * k as f64 * n as f64) / 1e9;

        // Bit-identity first: the blocked kernel must reproduce the
        // frozen baseline exactly.
        let mut reference = vec![0.0f32; m * n];
        naive_gemm(a.data(), b.data(), &mut reference, m, k, n);
        let blocked = a.matmul(&b).expect("matmul");
        assert_eq!(
            bits(&reference),
            bits(blocked.data()),
            "{key}: blocked GEMM diverged from the frozen baseline"
        );

        let naive_secs = best_secs(reps, || {
            let mut out = vec![0.0f32; m * n];
            naive_gemm(a.data(), b.data(), &mut out, m, k, n);
            std::hint::black_box(&out);
        });
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(&[m, n]);
        let blocked_secs = best_secs(reps, || {
            a.matmul_into(&b, &mut out, &mut ws).expect("matmul_into");
            std::hint::black_box(out.data());
        });
        floor_ok &= record(&mut report, &key, gflop, naive_secs, blocked_secs);
    }

    for (batch, cin, cout, ksize, hw) in CONV_SHAPES {
        let key = format!("conv2d.b{batch}_c{cin}_o{cout}_k{ksize}_s{hw}");
        let x = Tensor::randn(&[batch, cin, hw, hw], 1.0, &mut rng);
        let w = Tensor::randn(&[cout, cin, ksize, ksize], 0.5, &mut rng);
        let bias = Tensor::randn(&[cout], 0.1, &mut rng);
        let o = hw - ksize + 1;
        let gflop = (2.0 * (batch * o * o) as f64
            * (cin * ksize * ksize) as f64
            * cout as f64)
            / 1e9;

        let (reference, ref_dims) = naive_conv2d_gemm(&x, &w, &bias);
        let mut ws = Workspace::new();
        let blocked = conv2d_gemm_with(&x, &w, &bias, &mut ws).expect("conv2d_gemm_with");
        assert_eq!(ref_dims.as_slice(), blocked.shape().dims());
        assert_eq!(
            bits(&reference),
            bits(blocked.data()),
            "{key}: workspace conv diverged from the frozen baseline"
        );

        let naive_secs = best_secs(reps, || {
            let (out, _) = naive_conv2d_gemm(&x, &w, &bias);
            std::hint::black_box(&out);
        });
        let blocked_secs = best_secs(reps, || {
            let out = conv2d_gemm_with(&x, &w, &bias, &mut ws).expect("conv2d_gemm_with");
            std::hint::black_box(out.data());
        });
        floor_ok &= record(&mut report, &key, gflop, naive_secs, blocked_secs);
    }

    let text = report.to_json_string();
    if let Err(e) = std::fs::write(&out_path, format!("{text}\n")) {
        eprintln!("bench_kernels: cannot write {out_path}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("bench_kernels: wrote {} metrics to {out_path}", report.metrics.len());

    if let Some(baseline_path) = check_path {
        let baseline = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| BenchReport::from_json_str(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_kernels: cannot load baseline {baseline_path}: {e}");
                return ExitCode::from(1);
            }
        };
        let outcome = check(&baseline, &report, &GateConfig::perf_defaults());
        print!("{}", outcome.render());
        if !outcome.passed() {
            eprintln!("bench_kernels: regression vs {baseline_path}");
            return ExitCode::from(2);
        }
    }
    if strict && !floor_ok {
        eprintln!("bench_kernels: a committed shape fell below the {STRICT_FLOOR}x floor");
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}

/// Adds one shape's three metrics and logs it; returns whether the shape
/// met the strict speedup floor.
fn record(
    report: &mut BenchReport,
    key: &str,
    gflop: f64,
    naive_secs: f64,
    blocked_secs: f64,
) -> bool {
    let speedup = naive_secs / blocked_secs;
    report.metrics.insert(format!("{key}.gflops_naive"), gflop / naive_secs);
    report.metrics.insert(format!("{key}.gflops_blocked"), gflop / blocked_secs);
    report.metrics.insert(format!("{key}.speedup_vs_naive"), speedup);
    eprintln!(
        "bench_kernels: {key}: naive {:.2} GF/s, blocked {:.2} GF/s, speedup {speedup:.2}x",
        gflop / naive_secs,
        gflop / blocked_secs,
    );
    speedup >= STRICT_FLOOR
}

/// Reinterprets a float slice as bit patterns for exact comparison.
fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_kernels [--out PATH] [--check BASELINE] [--strict] [--quick]");
    ExitCode::from(1)
}
