//! Ablation: pluggable trial schedulers (Fig. 7's hyperparameter-tuning
//! box). PipeTune's system-parameter pipeline is scheduler-agnostic; this
//! runs the same workload under every supported scheduler and compares the
//! accuracy/budget/time envelope.

use pipetune::prelude::*;
use pipetune::{warm_start_ground_truth};
use pipetune_bench::{secs, tuner_options, Report};

fn main() {
    let mut report = Report::new("ablation_scheduler");
    let base = tuner_options();
    let spec = WorkloadSpec::lenet_mnist();

    let kinds = [
        SchedulerKind::HyperBand,
        SchedulerKind::Random { trials: 12 },
        SchedulerKind::Grid { per_param: 2 },
        SchedulerKind::Tpe { trials: 12 },
        SchedulerKind::Genetic { population: 6, generations: 3 },
        SchedulerKind::Asha { trials: 12 },
    ];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for kind in kinds {
        let options = TunerOptions { scheduler: kind, ..base };
        let env = ExperimentEnvBuilder::distributed(440).build().expect("valid experiment config");
        let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options)
            .expect("warm start");
        let out =
            PipeTune::with_ground_truth(options, gt).run(&env, &spec).expect("job runs");
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}%", out.best_accuracy * 100.0),
            out.epochs_total.to_string(),
            secs(out.tuning_secs),
        ]);
        series.push((kind.name(), f64::from(out.best_accuracy), out.epochs_total, out.tuning_secs));
    }
    report.table(&["scheduler", "accuracy", "epochs issued", "tuning time"], &rows);
    report.line(
        "\nPipeTune's pipeline is scheduler-agnostic (§6): every algorithm completes with the\nsystem-parameter tuning riding along; HyperBand spends its budget on the most trials.",
    );
    report.json("series", &series);
    report.finish();

    // Every scheduler must complete and produce a usable model.
    assert!(series.iter().all(|(_, acc, epochs, secs)| {
        *acc > 0.05 && *epochs > 0 && *secs > 0.0
    }));
    // Grid with 2 points/param over 5 params = 32 trials × r_max epochs:
    // the most expensive, as Fig. 1 predicts.
    let grid = series.iter().find(|s| s.0 == "grid").unwrap();
    let hyperband = series.iter().find(|s| s.0 == "hyperband").unwrap();
    assert!(
        grid.2 >= hyperband.2,
        "grid should spend at least as many epochs as HyperBand"
    );
}
