//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary regenerates one table or figure of the paper: it prints a
//! human-readable table to stdout and writes the same data as JSON under
//! `target/experiments/` so `EXPERIMENTS.md` can be assembled from artefacts.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Percent difference of `new` relative to `base` (the paper's Fig. 3/5
/// convention: negative = improvement for durations).
pub fn pct(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

/// A report being assembled by one experiment binary.
#[derive(Debug)]
pub struct Report {
    name: String,
    text: String,
    json: serde_json::Map<String, serde_json::Value>,
}

impl Report {
    /// Starts a report for `name` (e.g. `fig11_single_tenancy`).
    pub fn new(name: &str) -> Self {
        let mut r = Report { name: name.to_string(), text: String::new(), json: Default::default() };
        r.line(&format!("== {name} =="));
        r
    }

    /// Appends a free-form line.
    pub fn line(&mut self, text: &str) {
        self.text.push_str(text);
        self.text.push('\n');
    }

    /// Appends an aligned table.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut line = String::new();
        for (h, w) in headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        self.line(line.trim_end());
        let sep: String = widths.iter().map(|w| format!("{}  ", "-".repeat(*w))).collect();
        self.line(sep.trim_end());
        for row in rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            self.line(line.trim_end());
        }
    }

    /// Attaches a JSON value to the machine-readable artefact.
    pub fn json(&mut self, key: &str, value: impl serde::Serialize) {
        if let Ok(v) = serde_json::to_value(value) {
            self.json.insert(key.to_string(), v);
        }
    }

    /// Prints the report and writes `target/experiments/<name>.{txt,json}`.
    pub fn finish(self) {
        println!("{}", self.text);
        let dir = artifacts_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{}.txt", self.name)), &self.text);
            if !self.json.is_empty() {
                if let Ok(js) = serde_json::to_string_pretty(&self.json) {
                    let _ = std::fs::write(dir.join(format!("{}.json", self.name)), js);
                }
            }
        }
    }
}

/// Directory experiment artefacts land in.
pub fn artifacts_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Formats seconds compactly.
pub fn secs(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2}e3 s", v / 1000.0)
    } else {
        format!("{v:.1} s")
    }
}

/// Formats joules as kJ.
pub fn kj(v: f64) -> String {
    format!("{:.2} kJ", v / 1000.0)
}

/// `--quick` on the command line shrinks experiment scale for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Tuner options honouring `--quick`.
pub fn tuner_options() -> pipetune::TunerOptions {
    if quick_mode() {
        pipetune::TunerOptions::fast()
    } else {
        // Harness profile: paper-shaped budgets but sized so the whole
        // `run_all` suite completes in minutes of real training.
        pipetune::TunerOptions {
            r_max: 9,
            eta: 3,
            epochs_range: (3, 9),
            scale: 0.5,
            probe_goal: pipetune::ProbeGoal::Runtime,
            threshold_factor: 3.0,
            scheduler: pipetune::SchedulerKind::HyperBand,
            similarity: pipetune::SimilarityKind::KMeans { k: 2 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_matches_paper_convention() {
        assert_eq!(pct(150.0, 100.0), 50.0);
        assert_eq!(pct(50.0, 100.0), -50.0);
        assert_eq!(pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn report_renders_aligned_tables() {
        let mut r = Report::new("t");
        r.table(&["a", "bbb"], &[vec!["1".into(), "2".into()]]);
        assert!(r.text.contains("bbb"));
        assert!(r.text.contains("---"));
    }
}
