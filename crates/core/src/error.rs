use std::error::Error;
use std::fmt;

use pipetune_cluster::ClusterError;
use pipetune_clustering::ClusteringError;
use pipetune_dnn::DnnError;
use pipetune_tsdb::TsdbError;

/// Error type for PipeTune middleware operations.
#[derive(Debug)]
pub enum PipeTuneError {
    /// Training substrate failure.
    Dnn(DnnError),
    /// Cluster allocation failure.
    Cluster(ClusterError),
    /// Ground-truth clustering failure.
    Clustering(ClusteringError),
    /// Metric-store failure.
    Tsdb(TsdbError),
    /// An experiment or tuner configuration is invalid.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for PipeTuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipeTuneError::Dnn(e) => write!(f, "training error: {e}"),
            PipeTuneError::Cluster(e) => write!(f, "cluster error: {e}"),
            PipeTuneError::Clustering(e) => write!(f, "clustering error: {e}"),
            PipeTuneError::Tsdb(e) => write!(f, "metric store error: {e}"),
            PipeTuneError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl Error for PipeTuneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipeTuneError::Dnn(e) => Some(e),
            PipeTuneError::Cluster(e) => Some(e),
            PipeTuneError::Clustering(e) => Some(e),
            PipeTuneError::Tsdb(e) => Some(e),
            PipeTuneError::InvalidConfig { .. } => None,
        }
    }
}

impl From<DnnError> for PipeTuneError {
    fn from(e: DnnError) -> Self {
        PipeTuneError::Dnn(e)
    }
}

impl From<ClusterError> for PipeTuneError {
    fn from(e: ClusterError) -> Self {
        PipeTuneError::Cluster(e)
    }
}

impl From<ClusteringError> for PipeTuneError {
    fn from(e: ClusteringError) -> Self {
        PipeTuneError::Clustering(e)
    }
}

impl From<TsdbError> for PipeTuneError {
    fn from(e: TsdbError) -> Self {
        PipeTuneError::Tsdb(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sub_errors_with_sources() {
        let e: PipeTuneError = DnnError::InvalidConfig { reason: "x".into() }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("training error"));
        let e = PipeTuneError::InvalidConfig { reason: "bad".into() };
        assert!(e.source().is_none());
    }
}
