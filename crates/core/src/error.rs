use std::error::Error;
use std::fmt;

use pipetune_cluster::ClusterError;
use pipetune_clustering::ClusteringError;
use pipetune_dnn::DnnError;
use pipetune_tsdb::TsdbError;

/// Error type for PipeTune middleware operations.
#[derive(Debug)]
pub enum PipeTuneError {
    /// Training substrate failure.
    Dnn(DnnError),
    /// Cluster allocation failure.
    Cluster(ClusterError),
    /// Ground-truth clustering failure.
    Clustering(ClusteringError),
    /// Metric-store failure.
    Tsdb(TsdbError),
    /// An experiment or tuner configuration is invalid.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// A trial exhausted its fault-recovery retry budget and was abandoned
    /// (see `RetryPolicy` and the fault model in `DESIGN.md`).
    RetriesExhausted {
        /// Scheduler id of the abandoned trial.
        trial_id: u64,
        /// Attempts made on the failing epoch before giving up.
        attempts: u32,
    },
}

impl fmt::Display for PipeTuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipeTuneError::Dnn(e) => write!(f, "training error: {e}"),
            PipeTuneError::Cluster(e) => write!(f, "cluster error: {e}"),
            PipeTuneError::Clustering(e) => write!(f, "clustering error: {e}"),
            PipeTuneError::Tsdb(e) => write!(f, "metric store error: {e}"),
            PipeTuneError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            PipeTuneError::RetriesExhausted { trial_id, attempts } => {
                write!(
                    f,
                    "trial {trial_id} abandoned after {attempts} failed attempts on one epoch"
                )
            }
        }
    }
}

impl Error for PipeTuneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipeTuneError::Dnn(e) => Some(e),
            PipeTuneError::Cluster(e) => Some(e),
            PipeTuneError::Clustering(e) => Some(e),
            PipeTuneError::Tsdb(e) => Some(e),
            PipeTuneError::InvalidConfig { .. } | PipeTuneError::RetriesExhausted { .. } => None,
        }
    }
}

impl From<DnnError> for PipeTuneError {
    fn from(e: DnnError) -> Self {
        PipeTuneError::Dnn(e)
    }
}

impl From<ClusterError> for PipeTuneError {
    fn from(e: ClusterError) -> Self {
        PipeTuneError::Cluster(e)
    }
}

impl From<ClusteringError> for PipeTuneError {
    fn from(e: ClusteringError) -> Self {
        PipeTuneError::Clustering(e)
    }
}

impl From<TsdbError> for PipeTuneError {
    fn from(e: TsdbError) -> Self {
        PipeTuneError::Tsdb(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sub_errors_with_sources() {
        let e: PipeTuneError = DnnError::InvalidConfig { reason: "x".into() }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("training error"));
        let e = PipeTuneError::InvalidConfig { reason: "bad".into() };
        assert!(e.source().is_none());
    }

    #[test]
    fn retries_exhausted_names_the_trial_and_budget() {
        let e = PipeTuneError::RetriesExhausted { trial_id: 12, attempts: 3 };
        assert!(e.source().is_none());
        let msg = e.to_string();
        assert!(msg.contains("12") && msg.contains('3') && msg.contains("abandoned"), "{msg}");
    }
}
