use std::error::Error as StdError;
use std::fmt;

use pipetune_cluster::ClusterError;
use pipetune_clustering::ClusteringError;
use pipetune_dnn::DnnError;
use pipetune_perfmon::PerfmonError;
use pipetune_telemetry::TraceError;
use pipetune_tsdb::TsdbError;

/// Error type for PipeTune middleware operations.
#[derive(Debug)]
pub enum PipeTuneError {
    /// Training substrate failure.
    Dnn(DnnError),
    /// Cluster allocation failure.
    Cluster(ClusterError),
    /// Ground-truth clustering failure.
    Clustering(ClusteringError),
    /// Metric-store failure.
    Tsdb(TsdbError),
    /// An experiment or tuner configuration is invalid.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// A trial exhausted its fault-recovery retry budget and was abandoned
    /// (see `RetryPolicy` and the fault model in `DESIGN.md`).
    RetriesExhausted {
        /// Scheduler id of the abandoned trial.
        trial_id: u64,
        /// Attempts made on the failing epoch before giving up.
        attempts: u32,
    },
}

impl fmt::Display for PipeTuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipeTuneError::Dnn(e) => write!(f, "training error: {e}"),
            PipeTuneError::Cluster(e) => write!(f, "cluster error: {e}"),
            PipeTuneError::Clustering(e) => write!(f, "clustering error: {e}"),
            PipeTuneError::Tsdb(e) => write!(f, "metric store error: {e}"),
            PipeTuneError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            PipeTuneError::RetriesExhausted { trial_id, attempts } => {
                write!(
                    f,
                    "trial {trial_id} abandoned after {attempts} failed attempts on one epoch"
                )
            }
        }
    }
}

impl StdError for PipeTuneError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            PipeTuneError::Dnn(e) => Some(e),
            PipeTuneError::Cluster(e) => Some(e),
            PipeTuneError::Clustering(e) => Some(e),
            PipeTuneError::Tsdb(e) => Some(e),
            PipeTuneError::InvalidConfig { .. } | PipeTuneError::RetriesExhausted { .. } => None,
        }
    }
}

impl From<DnnError> for PipeTuneError {
    fn from(e: DnnError) -> Self {
        PipeTuneError::Dnn(e)
    }
}

impl From<ClusterError> for PipeTuneError {
    fn from(e: ClusterError) -> Self {
        PipeTuneError::Cluster(e)
    }
}

impl From<ClusteringError> for PipeTuneError {
    fn from(e: ClusteringError) -> Self {
        PipeTuneError::Clustering(e)
    }
}

impl From<TsdbError> for PipeTuneError {
    fn from(e: TsdbError) -> Self {
        PipeTuneError::Tsdb(e)
    }
}

/// A configuration rejected by a validating constructor, carrying the
/// human-readable rule that was violated.
///
/// Produced by [`crate::ExperimentEnvBuilder::build`] (and any future
/// fallible builder); convertible into [`PipeTuneError::InvalidConfig`] and
/// the top-level [`Error`] with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfig {
    reason: String,
}

impl InvalidConfig {
    /// An invalid-config error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        InvalidConfig { reason: reason.into() }
    }

    /// The rule that was violated.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.reason)
    }
}

impl StdError for InvalidConfig {}

impl From<InvalidConfig> for PipeTuneError {
    fn from(e: InvalidConfig) -> Self {
        PipeTuneError::InvalidConfig { reason: e.reason }
    }
}

/// Umbrella error for applications built on the `pipetune` facade.
///
/// Each subsystem keeps its own precise error type ([`PipeTuneError`],
/// [`TsdbError`], [`PerfmonError`], [`TraceError`]); this enum exists so a
/// binary that drives several subsystems can use one `Result<_,
/// pipetune::Error>` and let `?` converge everything.
///
/// ```
/// use pipetune::{Error, InvalidConfig, PipeTuneError};
///
/// fn run() -> Result<(), Error> {
///     Err(InvalidConfig::new("demo"))?
/// }
/// let err = run().unwrap_err();
/// assert!(matches!(err, Error::PipeTune(PipeTuneError::InvalidConfig { .. })));
/// ```
#[derive(Debug)]
pub enum Error {
    /// Middleware failure (tuning, training, cluster, configuration).
    PipeTune(PipeTuneError),
    /// Metric-store failure.
    Tsdb(TsdbError),
    /// Hardware-counter profiling failure.
    Perfmon(PerfmonError),
    /// Telemetry trace validation/export failure.
    Trace(TraceError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PipeTune(e) => write!(f, "{e}"),
            Error::Tsdb(e) => write!(f, "metric store error: {e}"),
            Error::Perfmon(e) => write!(f, "profiling error: {e}"),
            Error::Trace(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::PipeTune(e) => Some(e),
            Error::Tsdb(e) => Some(e),
            Error::Perfmon(e) => Some(e),
            Error::Trace(e) => Some(e),
        }
    }
}

impl From<PipeTuneError> for Error {
    fn from(e: PipeTuneError) -> Self {
        Error::PipeTune(e)
    }
}

impl From<InvalidConfig> for Error {
    fn from(e: InvalidConfig) -> Self {
        Error::PipeTune(e.into())
    }
}

impl From<TsdbError> for Error {
    fn from(e: TsdbError) -> Self {
        Error::Tsdb(e)
    }
}

impl From<PerfmonError> for Error {
    fn from(e: PerfmonError) -> Self {
        Error::Perfmon(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sub_errors_with_sources() {
        let e: PipeTuneError = DnnError::InvalidConfig { reason: "x".into() }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("training error"));
        let e = PipeTuneError::InvalidConfig { reason: "bad".into() };
        assert!(e.source().is_none());
    }

    #[test]
    fn umbrella_error_converges_subsystem_errors() {
        let e: Error = PipeTuneError::InvalidConfig { reason: "x".into() }.into();
        assert!(e.source().is_some());
        let e: Error = InvalidConfig::new("bad workers").into();
        assert!(matches!(&e, Error::PipeTune(PipeTuneError::InvalidConfig { reason }) if reason == "bad workers"));
        assert!(e.to_string().contains("bad workers"));
        let e: Error = TsdbError::InvalidPoint { reason: "empty".into() }.into();
        assert!(matches!(e, Error::Tsdb(_)) && e.source().is_some());
    }

    #[test]
    fn invalid_config_reports_reason() {
        let e = InvalidConfig::new("workers must be at least 1");
        assert_eq!(e.reason(), "workers must be at least 1");
        assert!(e.to_string().starts_with("invalid configuration:"));
        let p: PipeTuneError = e.into();
        assert!(matches!(p, PipeTuneError::InvalidConfig { .. }));
    }

    #[test]
    fn retries_exhausted_names_the_trial_and_budget() {
        let e = PipeTuneError::RetriesExhausted { trial_id: 12, attempts: 3 };
        assert!(e.source().is_none());
        let msg = e.to_string();
        assert!(msg.contains("12") && msg.contains('3') && msg.contains("abandoned"), "{msg}");
    }
}
