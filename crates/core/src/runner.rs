//! Scheduler-driven run loop: a real multi-threaded trial executor mapped
//! onto simulated parallel slots.
//!
//! Each scheduler batch is fanned out to [`ExperimentEnv::workers`] OS
//! threads pulling work items off a shared cursor. Determinism contract:
//! the results — accuracies, simulated clocks, ground-truth contents and
//! stats — are byte-identical for every worker count, because
//!
//! 1. every trial draws from its own RNG seeded from
//!    `(env.seed, trial id)`, never from a shared stream;
//! 2. all trials of a batch read one ground-truth snapshot taken at batch
//!    start, and their mutations are buffered and flushed in scheduler
//!    request order ([`crate::SharedGroundTruth`]);
//! 3. batch results are merged back in request order, so completion-time
//!    bookkeeping, best-trial selection and scheduler reports never depend
//!    on which OS thread finished first.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use pipetune_cluster::{observe as cluster_observe, FaultReport};
use pipetune_search::{Config, TrialId, TrialRequest, TrialReport, TrialScheduler};
use pipetune_telemetry::{EventKind, SpanId, SpanKind, COUNT_BUCKETS, RATIO_BUCKETS};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{self, CacheEntry, CacheEvent, CacheKey, CacheSession, CacheStats};
use crate::groundtruth::{GroundTruthAccess, GtSession, SharedGroundTruth};
use crate::objective::Objective;
use crate::observe;
use crate::trial::{SystemTuner, TrialExecution};
use crate::workload::EpochWorkload;
use crate::{ExperimentEnv, GroundTruth, HyperParams, PipeTuneError, WorkloadSpec};

/// Completion record for one trial request (one scheduler rung's worth of
/// epochs for one configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Scheduler trial id.
    pub id: u64,
    /// Hyperparameters of the trial.
    pub hp: HyperParams,
    /// Held-out accuracy after this request's epochs.
    pub accuracy: f32,
    /// Cumulative trial duration so far (simulated seconds).
    pub trial_secs: f64,
    /// Simulated wall-clock time at which the request finished.
    pub completed_at_secs: f64,
}

/// Greedy FIFO list scheduling onto `slots` parallel executors.
///
/// Returns per-item completion offsets (relative to the round start) and the
/// round makespan. This is how a batch of asynchronous trials shares the
/// cluster: each new trial goes to the least-loaded slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotSchedule;

impl SlotSchedule {
    /// Assigns `durations` (in arrival order) to `slots` executors.
    pub fn assign(durations: &[f64], slots: usize) -> (Vec<f64>, f64) {
        let slots = slots.max(1);
        let mut load = vec![0.0f64; slots];
        let mut completions = Vec::with_capacity(durations.len());
        for &d in durations {
            let (idx, _) = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("at least one slot");
            load[idx] += d.max(0.0);
            completions.push(load[idx]);
        }
        let makespan = load.iter().copied().fold(0.0, f64::max);
        (completions, makespan)
    }

    /// Like [`SlotSchedule::assign`], but each slot runs at a relative
    /// `speed` (1.0 = healthy, < 1.0 = straggling slot): a duration `d`
    /// occupies slot `i` for `d / speeds[i]`. Each item goes to the slot
    /// that would finish it earliest, so work is steered away from slow
    /// slots — the re-assignment half of straggler mitigation. With all
    /// speeds at 1.0 this reduces exactly to `assign`.
    pub fn assign_weighted(durations: &[f64], speeds: &[f64]) -> (Vec<f64>, f64) {
        let slots = speeds.len().max(1);
        let mut load = vec![0.0f64; slots];
        let mut completions = Vec::with_capacity(durations.len());
        for &d in durations {
            let d = d.max(0.0);
            let (idx, done) = load
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    let speed = speeds.get(i).copied().unwrap_or(1.0).max(1e-3);
                    (i, l + d / speed)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("at least one slot");
            load[idx] = done;
            completions.push(done);
        }
        let makespan = load.iter().copied().fold(0.0, f64::max);
        (completions, makespan)
    }
}

/// Result of driving one scheduler to completion.
#[derive(Debug, Clone)]
pub(crate) struct RunResult {
    pub best_accuracy: f32,
    /// Scheduler trial id of the winner (its workload seed is
    /// `env.subseed(best_trial_id)`).
    pub best_trial_id: u64,
    /// Trained weights of the selected model (None for kernel workloads).
    pub best_weights: Option<Vec<pipetune_tensor::Tensor>>,
    pub best_hp: HyperParams,
    pub best_final_system: pipetune_cluster::SystemConfig,
    pub best_training_secs: f64,
    pub tuning_secs: f64,
    pub tuning_energy_j: f64,
    pub epochs_total: u64,
    pub outcomes: Vec<TrialOutcome>,
    /// Faults injected and recovered from over the whole run (clean when
    /// the environment's fault plan is empty).
    pub fault_report: FaultReport,
    /// Epoch-reuse cache activity this run added (all-zero when the
    /// environment's cache handle is disabled).
    pub cache_stats: CacheStats,
}

/// One trial's executor-side state: the live execution plus its private RNG.
///
/// The RNG is derived from `(env.seed, trial id)` and persists across
/// scheduler rungs, so a trial's stochastic profile noise is a function of
/// its identity alone — never of which worker ran it or what ran before it.
#[derive(Debug)]
struct TrialSlot {
    exec: TrialExecution,
    rng: StdRng,
}

/// Seed of the private RNG of trial `id` (decorrelated from the workload
/// instantiation seed `env.subseed(id)` by the golden-ratio stride). Also
/// one of the epoch-reuse cache's identity components: two trials share a
/// cached prefix only if their RNG streams are identical.
fn trial_rng_seed(env: &ExperimentEnv, id: TrialId) -> u64 {
    env.subseed(0xEE).wrapping_add(id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Derives the private RNG of trial `id`.
fn trial_rng(env: &ExperimentEnv, id: TrialId) -> StdRng {
    StdRng::seed_from_u64(trial_rng_seed(env, id))
}

/// The epoch-reuse cache address of one trial: the hyperparameter-prefix
/// fingerprint extended with everything else that pins the trained state
/// bit for bit — instantiation seed, RNG seed, tuner policy, contention.
/// Computed identically at lookup (fresh trials) and insert (all trials),
/// so a trial always re-addresses its own prefixes, and never anyone
/// else's.
fn cache_identity(
    env: &ExperimentEnv,
    spec: &WorkloadSpec,
    hp: &HyperParams,
    id: TrialId,
    tuner: &SystemTuner,
    contention: f64,
) -> u64 {
    cache::trial_identity(
        cache::fingerprint(spec, hp),
        env.subseed(id.0),
        trial_rng_seed(env, id),
        cache::tuner_policy(tuner),
        contention,
    )
}

/// A claimed unit of work: one scheduler request plus what is needed to run
/// it (`slot` for resumed trials, `tuner` for fresh ones).
struct WorkItem {
    req: TrialRequest,
    slot: Option<TrialSlot>,
    tuner: Option<SystemTuner>,
}

/// What one executed work item hands back to the coordinator.
struct ItemResult<'s, 'a> {
    id: TrialId,
    slot: TrialSlot,
    session: Option<GtSession<'s, 'a>>,
    accuracy: f32,
    score: f64,
    /// Epochs the scheduler requested for this rung.
    epochs: u32,
    delta_secs: f64,
    delta_energy: f64,
    /// Fault counters this rung added to the trial's report.
    faults: FaultReport,
    /// `Some(attempts)` when the trial exhausted its retry budget this
    /// rung and was abandoned (its score is already `NEG_INFINITY`).
    abandoned: Option<u32>,
    /// Buffered epoch-reuse cache events (`None` when the cache is
    /// disabled); the coordinator flushes them in request order.
    cache_session: Option<CacheSession>,
}

/// Trains one work item to completion (worker-thread body).
fn execute_item<'s, 'a>(
    env: &ExperimentEnv,
    spec: &WorkloadSpec,
    objective: Objective,
    contention: f64,
    shared: Option<&'s SharedGroundTruth<'a>>,
    item: WorkItem,
) -> Result<ItemResult<'s, 'a>, PipeTuneError> {
    let WorkItem { req, slot, tuner } = item;
    let was_resumed = slot.is_some();
    let mut cache_session =
        if env.epoch_cache.is_enabled() { Some(CacheSession::default()) } else { None };
    // Epochs already covered by an adopted cache prefix (fresh trials only).
    let mut adopted_epochs = 0u32;
    let mut slot = match slot {
        Some(s) => s,
        None => {
            let hp = HyperParams::from_config(&req.config);
            let mut rng = trial_rng(env, req.id);
            let tuner = tuner.expect("fresh trials carry a tuner");
            // Fresh trial: consult the epoch-reuse cache for the deepest
            // prefix within this rung's budget. `peek` is read-only — the
            // hit/miss bookkeeping is buffered in `cache_session` and
            // applied by the coordinator in request order. The address is
            // the trial's full identity, so a hit only ever serves state
            // this exact trial would have trained itself.
            let fp = cache_session
                .as_ref()
                .map(|_| cache_identity(env, spec, &hp, req.id, &tuner, contention));
            match fp.and_then(|fp| env.epoch_cache.peek(fp, req.epochs)) {
                Some(prefix) => {
                    let session = cache_session.as_mut().expect("cache enabled on hit");
                    session.events.push(CacheEvent::Hit {
                        key: prefix.key,
                        saved_secs: prefix.saved_secs,
                    });
                    adopted_epochs = prefix.key.epochs;
                    // The scheduler-assigned `tuner` is dropped in favour
                    // of the donor's evolved state: the key's policy
                    // discriminant guarantees both started from the same
                    // policy, and the identity components guarantee the
                    // donor evolved exactly as this trial would have.
                    let exec =
                        TrialExecution::from_cached_prefix(env, prefix, req.id.0, &mut rng);
                    TrialSlot { exec, rng }
                }
                None => {
                    let workload = spec.instantiate(&hp, env.subseed(req.id.0))?;
                    let mut exec =
                        TrialExecution::new(workload, tuner).with_trial_id(req.id.0);
                    if let Some(session) = cache_session.as_mut() {
                        session.events.push(CacheEvent::Miss);
                        exec.note_cache_miss(env);
                    }
                    TrialSlot { exec, rng }
                }
            }
        }
    };
    let mut session = shared.map(SharedGroundTruth::session);
    // A fresh trial that adopted a prefix already carries the charged
    // reload time; the whole of it belongs to this rung's slot occupancy.
    let (secs_before, energy_before) = if was_resumed {
        (slot.exec.duration_secs(), slot.exec.energy_j())
    } else {
        (0.0, 0.0)
    };
    let faults_before = slot.exec.fault_report();
    let run = slot.exec.run_epochs(
        env,
        req.epochs - adopted_epochs,
        session.as_mut().map(|s| s as &mut dyn GroundTruthAccess),
        contention,
        &mut slot.rng,
    );
    let abandoned = match run {
        Ok(()) => None,
        Err(PipeTuneError::RetriesExhausted { attempts, .. }) => Some(attempts),
        Err(e) => return Err(e),
    };
    let (accuracy, score) = if abandoned.is_some() {
        // An abandoned trial has no usable measurement: it scores
        // `NEG_INFINITY` so the scheduler never promotes it.
        (f32::NAN, f64::NEG_INFINITY)
    } else {
        let accuracy = slot.exec.accuracy()?;
        (accuracy, objective.score(f64::from(accuracy), slot.exec.duration_secs()))
    };
    let delta_secs = slot.exec.duration_secs() - secs_before;
    let delta_energy = slot.exec.energy_j() - energy_before;
    let faults = slot.exec.fault_report().delta_since(&faults_before);
    if abandoned.is_none() {
        if let Some(cache_session) = cache_session.as_mut() {
            // Remember this trial's state at its new depth. Totals are
            // *trained-equivalent*: charged time plus whatever this trial
            // itself saved by adoption, so chained adoption never compounds
            // the reload discount. The insert address recomputes the same
            // identity the lookup used (the tuner-policy discriminant is
            // invariant over tuner evolution), so resumed trials keep
            // addressing their own prefix line.
            let exec = &slot.exec;
            let key = CacheKey {
                fingerprint: cache_identity(
                    env,
                    exec.workload().spec(),
                    exec.workload().hyperparams(),
                    req.id,
                    exec.tuner(),
                    contention,
                ),
                epochs: exec.workload().epochs_run(),
            };
            cache_session.events.push(CacheEvent::Insert {
                key,
                entry: Box::new(CacheEntry::new(
                    exec.workload().clone(),
                    exec.tuner().clone(),
                    slot.rng.clone(),
                    exec.records().to_vec(),
                    exec.duration_secs() + exec.cache_saved_secs(),
                    exec.energy_j() + exec.cache_saved_energy_j(),
                )),
            });
        }
    }
    Ok(ItemResult {
        id: req.id,
        slot,
        session,
        accuracy,
        score,
        epochs: req.epochs,
        delta_secs,
        delta_energy,
        faults,
        abandoned,
        cache_session,
    })
}

/// Drives `scheduler` to completion for one workload.
///
/// `policy` builds each new trial's [`SystemTuner`] from its configuration
/// (fixed default for V1, fixed per-config system for V2, pipelined for
/// PipeTune). The ground truth, when supplied, is shared across trials (and,
/// via the caller, across jobs). Each batch really executes on
/// `env.workers` threads; see the module docs for the determinism contract.
///
/// `run_label` names the root `tuning_run` telemetry span when
/// [`ExperimentEnv::telemetry`] is enabled; telemetry recording happens
/// entirely on the coordinator (spans) or in per-trial buffers merged in
/// request order (everything inside a trial), so traces are byte-identical
/// for every worker count — `env.workers` is deliberately never recorded.
#[allow(clippy::too_many_arguments)] // crate-internal driver; the three call sites read best flat
pub(crate) fn run_scheduler<F>(
    env: &ExperimentEnv,
    spec: &WorkloadSpec,
    scheduler: &mut dyn TrialScheduler,
    objective: Objective,
    run_label: &str,
    mut policy: F,
    ground_truth: Option<&mut GroundTruth>,
    contention: f64,
) -> Result<RunResult, PipeTuneError>
where
    F: FnMut(&Config) -> SystemTuner,
{
    let shared: Option<SharedGroundTruth<'_>> = ground_truth.map(SharedGroundTruth::new);
    let cache_stats_before = env.epoch_cache.stats().unwrap_or_default();
    let telemetry = &env.telemetry;
    let run_span = telemetry.open_span(
        SpanId::NONE,
        SpanKind::TuningRun,
        run_label,
        0.0,
        vec![
            ("workload", spec.name().into()),
            ("seed", env.seed.into()),
            ("parallel_slots", env.parallel_slots.into()),
        ],
    );
    let mut trials: HashMap<TrialId, TrialSlot> = HashMap::new();
    let mut clock = 0.0f64;
    let mut energy = 0.0f64;
    let mut outcomes = Vec::new();
    let mut best: Option<(f64, TrialId)> = None;
    let mut fault_report = FaultReport::default();
    let mut round = 0u64;
    let mut round_guard = 0usize;

    while !scheduler.is_finished() {
        let reqs = scheduler.next_trials();
        if reqs.is_empty() {
            round_guard += 1;
            if round_guard > 10_000 {
                return Err(PipeTuneError::InvalidConfig {
                    reason: "scheduler made no progress for 10000 rounds".into(),
                });
            }
            continue;
        }
        round_guard = 0;

        // Claim the batch in request order. Fresh trials get their tuner
        // from `policy` here on the coordinator (it may be an FnMut);
        // workload instantiation — the expensive part — happens on workers.
        let n = reqs.len();
        let rung_span = telemetry.open_span(
            run_span,
            SpanKind::Rung,
            format!("round {round}"),
            clock,
            vec![("round", round.into()), ("trials", n.into())],
        );
        let batch_span = telemetry.open_span(
            rung_span,
            SpanKind::Batch,
            format!("batch of {n}"),
            clock,
            vec![],
        );
        let mut items: Vec<Mutex<Option<WorkItem>>> = Vec::with_capacity(n);
        for req in reqs {
            let slot = trials.remove(&req.id);
            let tuner = if slot.is_none() { Some(policy(&req.config)) } else { None };
            items.push(Mutex::new(Some(WorkItem { req, slot, tuner })));
        }
        let results: Vec<Mutex<Option<Result<ItemResult<'_, '_>, PipeTuneError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        let workers = env.workers.max(1).min(n);
        if workers <= 1 {
            for (item, result) in items.iter().zip(&results) {
                let item = item.lock().take().expect("item claimed once");
                *result.lock() =
                    Some(execute_item(env, spec, objective, contention, shared.as_ref(), item));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            crossbeam::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = items[i].lock().take().expect("item claimed once");
                        *results[i].lock() = Some(execute_item(
                            env,
                            spec,
                            objective,
                            contention,
                            shared.as_ref(),
                            item,
                        ));
                    });
                }
            })
            .expect("executor scope");
        }

        // Merge in request order: first error (if any) in request order,
        // ground-truth flush in request order, fault deltas and reports in
        // request order.
        let mut durations = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        let mut sessions: Vec<GtSession<'_, '_>> = Vec::new();
        let mut cache_sessions: Vec<CacheSession> = Vec::new();
        for cell in results {
            let mut item = cell.into_inner().expect("every item executed")?;
            durations.push(item.delta_secs);
            energy += item.delta_energy;
            fault_report.merge(&item.faults);
            if telemetry.is_enabled() {
                // Trial span on the trial-cumulative clock, then the
                // worker-local buffer (epoch spans, pipeline events, trial
                // metrics) merged under it — all in request order.
                let end_secs = item.slot.exec.duration_secs();
                let mut attrs = vec![("trial", item.id.0.into()), ("epochs", item.epochs.into())];
                match item.abandoned {
                    None => {
                        attrs.push(("accuracy", item.accuracy.into()));
                        attrs.push(("score", item.score.into()));
                    }
                    Some(attempts) => attrs.push(("abandoned_after_attempts", attempts.into())),
                }
                let trial_span = telemetry.open_span(
                    batch_span,
                    SpanKind::Trial,
                    format!("trial {}", item.id.0),
                    end_secs - item.delta_secs,
                    attrs,
                );
                let faults = item.faults;
                telemetry
                    .with_metrics(|m| cluster_observe::record_fault_report(&faults, m));
                telemetry.merge_buffer(trial_span, item.slot.exec.telemetry_mut());
                telemetry.close_span(trial_span, end_secs);
            }
            reports.push((item.id, item.accuracy, item.score, item.abandoned));
            sessions.extend(item.session);
            cache_sessions.extend(item.cache_session);
            if item.abandoned.is_none() {
                trials.insert(item.id, item.slot);
            }
        }
        if let Some(shared) = shared.as_ref() {
            shared.flush(sessions)?;
        }

        // Slot-level stragglers: this round's simulated executors may run
        // below nominal speed; work is re-assigned to whichever slot would
        // finish it earliest. The unweighted path is kept verbatim so empty
        // plans stay bit-identical to pre-fault builds.
        let slots = env.parallel_slots.max(1);
        let speeds: Vec<f64> = (0..slots).map(|s| env.fault_plan.slot_speed(round, s)).collect();
        let (completions, makespan) = if speeds.iter().all(|&s| s >= 1.0) {
            SlotSchedule::assign(&durations, slots)
        } else {
            let (completions, weighted) = SlotSchedule::assign_weighted(&durations, &speeds);
            let (_, unweighted) = SlotSchedule::assign(&durations, slots);
            let slow = speeds.iter().filter(|&&s| s < 1.0).count() as u64;
            fault_report.injected += slow;
            fault_report.stragglers += slow;
            fault_report.recovered += slow;
            fault_report.wasted_epoch_secs += (weighted - unweighted).max(0.0);
            if telemetry.is_enabled() {
                for (slot, &speed) in speeds.iter().enumerate() {
                    if speed < 1.0 {
                        telemetry.event(
                            rung_span,
                            EventKind::Fault,
                            clock,
                            vec![
                                ("fault", "slot_straggler".into()),
                                ("slot", slot.into()),
                                ("speed", speed.into()),
                            ],
                        );
                    }
                }
                telemetry.with_metrics(|m| {
                    m.counter_add(cluster_observe::FAULTS_INJECTED, slow);
                    m.counter_add(cluster_observe::FAULTS_STRAGGLERS, slow);
                    m.counter_add(cluster_observe::FAULTS_RECOVERED, slow);
                });
            }
            (completions, weighted)
        };
        telemetry.with_metrics(|m| {
            cluster_observe::record_slot_speeds(&speeds, m);
            m.counter_add(observe::ROUNDS, 1);
            m.observe(observe::BATCH_TRIALS, COUNT_BUCKETS, n as f64);
            m.observe(observe::QUEUE_OCCUPANCY, RATIO_BUCKETS, n as f64 / slots as f64);
        });
        round += 1;

        for ((id, accuracy, score, abandoned), offset) in reports.iter().zip(&completions) {
            if abandoned.is_none() {
                let trial = &trials[id].exec;
                outcomes.push(TrialOutcome {
                    id: id.0,
                    hp: *trial.workload().hyperparams(),
                    accuracy: *accuracy,
                    trial_secs: trial.duration_secs(),
                    completed_at_secs: clock + offset,
                });
                if best.as_ref().is_none_or(|(s, _)| *score > *s) {
                    best = Some((*score, *id));
                }
            }
            scheduler.report(TrialReport { id: *id, score: *score, epochs_run: 0 });
        }
        clock += makespan;
        // Cache mutations land at the post-batch clock, in request order —
        // same discipline as the ground-truth flush above, so contents and
        // LRU stamps never depend on worker timing.
        if !cache_sessions.is_empty() {
            env.epoch_cache.flush(cache_sessions, clock);
        }
        telemetry.close_span(batch_span, clock);
        telemetry.close_span(rung_span, clock);
        // Online monitoring: stream everything this round recorded through
        // the configured detectors. Incremental (cursor-based), and a
        // strict no-op when either handle is disabled — the live scan and
        // an offline replay of the exported trace see the same stream.
        env.monitor.scan(telemetry);
    }

    let (_, best_id) = best.ok_or_else(|| {
        if fault_report.abandoned > 0 {
            PipeTuneError::InvalidConfig {
                reason: format!(
                    "every trial was abandoned under the fault plan \
                     ({} abandoned); relax the plan or raise the retry budget",
                    fault_report.abandoned
                ),
            }
        } else {
            PipeTuneError::InvalidConfig {
                reason: "scheduler finished without any trial".into(),
            }
        }
    })?;
    telemetry.gauge_set(observe::SCHEDULER_EPOCHS, scheduler.epochs_issued() as f64);
    telemetry.gauge_set(cluster_observe::FAULTS_WASTED_SECS, fault_report.wasted_epoch_secs);
    telemetry
        .gauge_set(cluster_observe::FAULTS_RECOVERY_SECS, fault_report.recovery_overhead_secs);
    let cache_stats =
        env.epoch_cache.stats().unwrap_or_default().delta_since(&cache_stats_before);
    if env.epoch_cache.is_enabled() {
        telemetry.with_metrics(|m| {
            m.counter_add(observe::CACHE_HITS, cache_stats.hits);
            m.counter_add(observe::CACHE_MISSES, cache_stats.misses);
            m.counter_add(observe::CACHE_INSERTS, cache_stats.inserts);
            m.counter_add(observe::CACHE_EVICTIONS, cache_stats.evictions);
        });
        if cache_stats.hits > 0 {
            telemetry.gauge_set(observe::CACHE_SAVED_SECS, cache_stats.saved_secs);
        }
    }
    telemetry.close_span(run_span, clock);

    let best_trial = &mut trials.get_mut(&best_id).expect("best trial exists").exec;
    let best_accuracy = best_trial.accuracy()?;
    let best_hp = *best_trial.workload().hyperparams();
    let best_final_system = best_trial.final_system(env);
    let best_training_secs = best_trial.training_time_secs(env, best_hp.epochs);
    let best_weights = best_trial.workload_mut().export_weights();

    Ok(RunResult {
        best_accuracy,
        best_trial_id: best_id.0,
        best_weights,
        best_hp,
        best_final_system,
        best_training_secs,
        tuning_secs: clock,
        tuning_energy_j: energy,
        epochs_total: scheduler.epochs_issued(),
        outcomes,
        fault_report,
        cache_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_schedule_packs_greedily() {
        let (completions, makespan) = SlotSchedule::assign(&[4.0, 3.0, 2.0, 1.0], 2);
        // Slot A: 4 → +1 = 5; Slot B: 3 → +2 = 5.
        assert_eq!(completions, vec![4.0, 3.0, 5.0, 5.0]);
        assert_eq!(makespan, 5.0);
    }

    #[test]
    fn one_slot_serialises() {
        let (completions, makespan) = SlotSchedule::assign(&[1.0, 2.0, 3.0], 1);
        assert_eq!(completions, vec![1.0, 3.0, 6.0]);
        assert_eq!(makespan, 6.0);
    }

    #[test]
    fn empty_and_zero_inputs_are_safe() {
        let (c, m) = SlotSchedule::assign(&[], 4);
        assert!(c.is_empty());
        assert_eq!(m, 0.0);
        let (c, m) = SlotSchedule::assign(&[0.0, -1.0], 0);
        assert_eq!(c.len(), 2);
        assert_eq!(m, 0.0);
    }

    #[test]
    fn more_slots_never_increase_makespan() {
        let d = [5.0, 4.0, 3.0, 2.0, 1.0, 1.0];
        let (_, m1) = SlotSchedule::assign(&d, 1);
        let (_, m2) = SlotSchedule::assign(&d, 2);
        let (_, m4) = SlotSchedule::assign(&d, 4);
        assert!(m1 >= m2 && m2 >= m4);
    }

    #[test]
    fn weighted_assign_with_healthy_slots_matches_assign() {
        let d = [4.0, 3.0, 2.0, 1.0, 0.5, 6.0];
        let (c_plain, m_plain) = SlotSchedule::assign(&d, 3);
        let (c_w, m_w) = SlotSchedule::assign_weighted(&d, &[1.0, 1.0, 1.0]);
        assert_eq!(c_plain, c_w);
        assert_eq!(m_plain, m_w);
    }

    #[test]
    fn weighted_assign_steers_work_away_from_slow_slot() {
        // Slot 1 runs at half speed: the greedy earliest-finish rule should
        // route most work to slot 0 and finish sooner than naive least-load
        // assignment onto the slow slot would.
        let d = [2.0; 8];
        let (completions, makespan) = SlotSchedule::assign_weighted(&d, &[1.0, 0.5]);
        assert_eq!(completions.len(), d.len());
        // Fast slot absorbs ~2/3 of the items: 16 total units of work at
        // combined speed 1.5 bounds the makespan near 16/1.5 ≈ 10.67.
        assert!(makespan < 14.0, "makespan {makespan}");
        // A straggling slot strictly inflates the makespan vs two healthy
        // slots (8.0).
        let (_, healthy) = SlotSchedule::assign_weighted(&d, &[1.0, 1.0]);
        assert!(makespan > healthy);
    }
}
