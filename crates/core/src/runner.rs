//! Scheduler-driven run loop: executes trials on simulated parallel slots.

use std::collections::HashMap;

use pipetune_search::{Config, TrialId, TrialReport, TrialScheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::objective::Objective;
use crate::trial::{SystemTuner, TrialExecution};
use crate::{ExperimentEnv, GroundTruth, HyperParams, PipeTuneError, WorkloadSpec};

/// Completion record for one trial request (one scheduler rung's worth of
/// epochs for one configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Scheduler trial id.
    pub id: u64,
    /// Hyperparameters of the trial.
    pub hp: HyperParams,
    /// Held-out accuracy after this request's epochs.
    pub accuracy: f32,
    /// Cumulative trial duration so far (simulated seconds).
    pub trial_secs: f64,
    /// Simulated wall-clock time at which the request finished.
    pub completed_at_secs: f64,
}

/// Greedy FIFO list scheduling onto `slots` parallel executors.
///
/// Returns per-item completion offsets (relative to the round start) and the
/// round makespan. This is how a batch of asynchronous trials shares the
/// cluster: each new trial goes to the least-loaded slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotSchedule;

impl SlotSchedule {
    /// Assigns `durations` (in arrival order) to `slots` executors.
    pub fn assign(durations: &[f64], slots: usize) -> (Vec<f64>, f64) {
        let slots = slots.max(1);
        let mut load = vec![0.0f64; slots];
        let mut completions = Vec::with_capacity(durations.len());
        for &d in durations {
            let (idx, _) = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("at least one slot");
            load[idx] += d.max(0.0);
            completions.push(load[idx]);
        }
        let makespan = load.iter().copied().fold(0.0, f64::max);
        (completions, makespan)
    }
}

/// Result of driving one scheduler to completion.
#[derive(Debug, Clone)]
pub(crate) struct RunResult {
    pub best_accuracy: f32,
    /// Scheduler trial id of the winner (its workload seed is
    /// `env.subseed(best_trial_id)`).
    pub best_trial_id: u64,
    /// Trained weights of the selected model (None for kernel workloads).
    pub best_weights: Option<Vec<pipetune_tensor::Tensor>>,
    pub best_hp: HyperParams,
    pub best_final_system: pipetune_cluster::SystemConfig,
    pub best_training_secs: f64,
    pub tuning_secs: f64,
    pub tuning_energy_j: f64,
    pub epochs_total: u64,
    pub outcomes: Vec<TrialOutcome>,
}

/// Drives `scheduler` to completion for one workload.
///
/// `policy` builds each new trial's [`SystemTuner`] from its configuration
/// (fixed default for V1, fixed per-config system for V2, pipelined for
/// PipeTune). The ground truth, when supplied, is shared across trials (and,
/// via the caller, across jobs).
pub(crate) fn run_scheduler<F>(
    env: &ExperimentEnv,
    spec: &WorkloadSpec,
    scheduler: &mut dyn TrialScheduler,
    objective: Objective,
    mut policy: F,
    mut ground_truth: Option<&mut GroundTruth>,
    contention: f64,
) -> Result<RunResult, PipeTuneError>
where
    F: FnMut(&Config) -> SystemTuner,
{
    let mut trials: HashMap<TrialId, TrialExecution> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(env.subseed(0xEE));
    let mut clock = 0.0f64;
    let mut energy = 0.0f64;
    let mut outcomes = Vec::new();
    let mut best: Option<(f64, TrialId)> = None;
    let mut round_guard = 0usize;

    while !scheduler.is_finished() {
        let reqs = scheduler.next_trials();
        if reqs.is_empty() {
            round_guard += 1;
            if round_guard > 10_000 {
                return Err(PipeTuneError::InvalidConfig {
                    reason: "scheduler made no progress for 10000 rounds".into(),
                });
            }
            continue;
        }
        round_guard = 0;

        let mut durations = Vec::with_capacity(reqs.len());
        let mut reports = Vec::with_capacity(reqs.len());
        for req in &reqs {
            let trial = match trials.entry(req.id) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let hp = HyperParams::from_config(&req.config);
                    let workload = spec.instantiate(&hp, env.subseed(req.id.0))?;
                    e.insert(TrialExecution::new(workload, policy(&req.config)))
                }
            };
            let secs_before = trial.duration_secs();
            let energy_before = trial.energy_j();
            trial.run_epochs(env, req.epochs, ground_truth.as_deref_mut(), contention, &mut rng)?;
            let delta_secs = trial.duration_secs() - secs_before;
            energy += trial.energy_j() - energy_before;
            durations.push(delta_secs);

            let accuracy = trial.accuracy()?;
            let score = objective.score(f64::from(accuracy), trial.duration_secs());
            reports.push((req.id, accuracy, score));
        }

        let (completions, makespan) = SlotSchedule::assign(&durations, env.parallel_slots);
        for (((id, accuracy, score), offset), _d) in
            reports.iter().zip(&completions).zip(&durations)
        {
            let trial = &trials[id];
            outcomes.push(TrialOutcome {
                id: id.0,
                hp: *trial.workload().hyperparams(),
                accuracy: *accuracy,
                trial_secs: trial.duration_secs(),
                completed_at_secs: clock + offset,
            });
            if best.as_ref().is_none_or(|(s, _)| *score > *s) {
                best = Some((*score, *id));
            }
            scheduler.report(TrialReport { id: *id, score: *score, epochs_run: 0 });
        }
        clock += makespan;
    }

    let (_, best_id) = best.ok_or_else(|| PipeTuneError::InvalidConfig {
        reason: "scheduler finished without any trial".into(),
    })?;
    let best_trial = trials.get_mut(&best_id).expect("best trial exists");
    let best_accuracy = best_trial.accuracy()?;
    let best_hp = *best_trial.workload().hyperparams();
    let best_final_system = best_trial.final_system(env);
    let best_training_secs = best_trial.training_time_secs(env, best_hp.epochs);
    let best_weights = best_trial.workload_mut().export_weights();

    Ok(RunResult {
        best_accuracy,
        best_trial_id: best_id.0,
        best_weights,
        best_hp,
        best_final_system,
        best_training_secs,
        tuning_secs: clock,
        tuning_energy_j: energy,
        epochs_total: scheduler.epochs_issued(),
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_schedule_packs_greedily() {
        let (completions, makespan) = SlotSchedule::assign(&[4.0, 3.0, 2.0, 1.0], 2);
        // Slot A: 4 → +1 = 5; Slot B: 3 → +2 = 5.
        assert_eq!(completions, vec![4.0, 3.0, 5.0, 5.0]);
        assert_eq!(makespan, 5.0);
    }

    #[test]
    fn one_slot_serialises() {
        let (completions, makespan) = SlotSchedule::assign(&[1.0, 2.0, 3.0], 1);
        assert_eq!(completions, vec![1.0, 3.0, 6.0]);
        assert_eq!(makespan, 6.0);
    }

    #[test]
    fn empty_and_zero_inputs_are_safe() {
        let (c, m) = SlotSchedule::assign(&[], 4);
        assert!(c.is_empty());
        assert_eq!(m, 0.0);
        let (c, m) = SlotSchedule::assign(&[0.0, -1.0], 0);
        assert_eq!(c.len(), 2);
        assert_eq!(m, 0.0);
    }

    #[test]
    fn more_slots_never_increase_makespan() {
        let d = [5.0, 4.0, 3.0, 2.0, 1.0, 1.0];
        let (_, m1) = SlotSchedule::assign(&d, 1);
        let (_, m2) = SlotSchedule::assign(&d, 2);
        let (_, m4) = SlotSchedule::assign(&d, 4);
        assert!(m1 >= m2 && m2 >= m4);
    }
}
