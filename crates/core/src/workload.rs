//! Workloads: the model × dataset tuples of Table 3, instantiable per trial.
//!
//! A [`WorkloadSpec`] names one of the paper's seven workloads. For each
//! trial, [`WorkloadSpec::instantiate`] builds a [`WorkloadInstance`]: a
//! *really training* scaled-down model (or a really iterating Type-III
//! kernel) plus the paper-scale accounting numbers ([`WorkUnits`], profiler
//! signature) that drive the simulated clock, energy meter and PMU.
//!
//! The split is the reproduction's key substitution: accuracy comes from
//! genuine gradient descent on synthetic data; durations come from the
//! calibrated cost model at the paper's dataset scale.

use pipetune_cluster::WorkUnits;
use pipetune_data::{fashion_like, mnist_like, news20_like, ImageSpec, TextSpec};
use pipetune_dnn::{
    Dataset, EpochMetrics, LeNet5, LstmClassifier, Model, ModelSignature, TextCnn, TrainConfig,
};
use pipetune_kernels::{
    Bfs, BfsConfig, Hotspot, HotspotConfig, IterativeKernel, Jacobi, JacobiConfig, SpKMeans,
    SpKMeansConfig,
};
use pipetune_perfmon::WorkloadSignature;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{HyperParams, PipeTuneError};

/// The paper's workload taxonomy (§5.1, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobType {
    /// Same model, different datasets (LeNet on MNIST / Fashion-MNIST).
    TypeI,
    /// Different models, same dataset (CNN / LSTM on News20).
    TypeII,
    /// Rodinia-style short-epoch kernels (Jacobi, spk-means, BFS).
    TypeIII,
}

impl JobType {
    /// Label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            JobType::TypeI => "Type-I",
            JobType::TypeII => "Type-II",
            JobType::TypeIII => "Type-III",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum SpecKind {
    LenetMnist,
    LenetFashion,
    CnnNews20,
    LstmNews20,
    Jacobi,
    SpKMeans,
    Bfs,
    Hotspot,
}

/// A named workload from Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    kind: SpecKind,
    /// Dataset-size multiplier for the *real* (scaled) training set; tests
    /// use small scales, the benchmark harness the default 1.0.
    scale: f32,
}

impl WorkloadSpec {
    /// LeNet-5 on MNIST (Type-I).
    pub fn lenet_mnist() -> Self {
        WorkloadSpec { kind: SpecKind::LenetMnist, scale: 1.0 }
    }

    /// LeNet-5 on Fashion-MNIST (Type-I).
    pub fn lenet_fashion() -> Self {
        WorkloadSpec { kind: SpecKind::LenetFashion, scale: 1.0 }
    }

    /// Text CNN on News20 (Type-II).
    pub fn cnn_news20() -> Self {
        WorkloadSpec { kind: SpecKind::CnnNews20, scale: 1.0 }
    }

    /// LSTM on News20 (Type-II).
    pub fn lstm_news20() -> Self {
        WorkloadSpec { kind: SpecKind::LstmNews20, scale: 1.0 }
    }

    /// Jacobi solver on Rodinia-style input (Type-III).
    pub fn jacobi() -> Self {
        WorkloadSpec { kind: SpecKind::Jacobi, scale: 1.0 }
    }

    /// Spark k-means on Rodinia-style input (Type-III).
    pub fn spkmeans() -> Self {
        WorkloadSpec { kind: SpecKind::SpKMeans, scale: 1.0 }
    }

    /// BFS on Rodinia-style input (Type-III).
    pub fn bfs() -> Self {
        WorkloadSpec { kind: SpecKind::Bfs, scale: 1.0 }
    }

    /// Hotspot thermal stencil (Type-III; Rodinia extension, not part of the
    /// paper's evaluation figures).
    pub fn hotspot() -> Self {
        WorkloadSpec { kind: SpecKind::Hotspot, scale: 1.0 }
    }

    /// The four DNN workloads of Figs. 8–11.
    pub fn all_type12() -> Vec<WorkloadSpec> {
        vec![
            Self::lenet_mnist(),
            Self::lenet_fashion(),
            Self::cnn_news20(),
            Self::lstm_news20(),
        ]
    }

    /// The three Type-III kernels of Figs. 12/14.
    pub fn all_type3() -> Vec<WorkloadSpec> {
        vec![Self::jacobi(), Self::spkmeans(), Self::bfs()]
    }

    /// Shrinks the real training datasets by `scale` (for fast tests).
    pub fn with_scale(mut self, scale: f32) -> Self {
        self.scale = scale.clamp(0.05, 4.0);
        self
    }

    /// The dataset-scale multiplier's exact bit pattern (epoch-reuse cache
    /// fingerprinting: two specs train the same dataset iff the name and
    /// these bits agree).
    pub(crate) fn scale_bits(&self) -> u32 {
        self.scale.to_bits()
    }

    /// Workload name as printed in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self.kind {
            SpecKind::LenetMnist => "lenet/mnist",
            SpecKind::LenetFashion => "lenet/fashion",
            SpecKind::CnnNews20 => "cnn/news20",
            SpecKind::LstmNews20 => "lstm/news20",
            SpecKind::Jacobi => "jacobi",
            SpecKind::SpKMeans => "spkmeans",
            SpecKind::Bfs => "bfs",
            SpecKind::Hotspot => "hotspot",
        }
    }

    /// Model half of the workload tuple.
    pub fn model_name(&self) -> &'static str {
        match self.kind {
            SpecKind::LenetMnist | SpecKind::LenetFashion => "lenet",
            SpecKind::CnnNews20 => "cnn",
            SpecKind::LstmNews20 => "lstm",
            SpecKind::Jacobi => "jacobi",
            SpecKind::SpKMeans => "spkmeans",
            SpecKind::Bfs => "bfs",
            SpecKind::Hotspot => "hotspot",
        }
    }

    /// Dataset half of the workload tuple.
    pub fn dataset_name(&self) -> &'static str {
        match self.kind {
            SpecKind::LenetMnist => "mnist",
            SpecKind::LenetFashion => "fashion",
            SpecKind::CnnNews20 | SpecKind::LstmNews20 => "news20",
            _ => "rodinia",
        }
    }

    /// Workload family.
    pub fn job_type(&self) -> JobType {
        match self.kind {
            SpecKind::LenetMnist | SpecKind::LenetFashion => JobType::TypeI,
            SpecKind::CnnNews20 | SpecKind::LstmNews20 => JobType::TypeII,
            _ => JobType::TypeIII,
        }
    }

    /// Training examples at the *paper's* scale (Table 3) — the number the
    /// simulated clock accounts for.
    pub fn paper_examples(&self) -> u64 {
        match self.job_type() {
            JobType::TypeI => 60_000,
            JobType::TypeII => 11_307,
            JobType::TypeIII => 1_650,
        }
    }

    /// Dataset size at the paper's scale, bytes (Table 3).
    pub fn paper_dataset_bytes(&self) -> f64 {
        match self.kind {
            SpecKind::LenetMnist => 12e6,
            SpecKind::LenetFashion => 31e6,
            SpecKind::CnnNews20 | SpecKind::LstmNews20 => 15e6,
            _ => 26e6,
        }
    }

    /// Effective-work multiplier lifting raw model flops to the paper's
    /// framework-level cost (BigDL/Spark serialisation, task dispatch and
    /// JVM overhead dominate raw arithmetic on CPU clusters). Calibrated per
    /// family so default-configuration epoch durations land in the paper's
    /// range; architecture dependence (e.g. embedding width) is preserved
    /// because the factor multiplies the *measured* per-sample flops.
    pub fn framework_overhead(&self) -> f64 {
        match self.kind {
            SpecKind::LenetMnist | SpecKind::LenetFashion => 38.0,
            SpecKind::CnnNews20 => 60.0,
            SpecKind::LstmNews20 => 50.0,
            _ => 40.0,
        }
    }

    /// Looks a workload up by its printed name (including the `hotspot`
    /// extension kernel).
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        Self::all_type12()
            .into_iter()
            .chain(Self::all_type3())
            .chain(std::iter::once(Self::hotspot()))
            .find(|w| w.name() == name)
    }

    /// Builds the trial instance: real model + real (scaled) data, seeded.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError`] when the hyperparameters cannot build the
    /// model (e.g. an invalid dropout rate).
    pub fn instantiate(&self, hp: &HyperParams, seed: u64) -> Result<WorkloadInstance, PipeTuneError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5049_5045);
        let s = self.scale;
        let scaled = |n: usize| ((n as f32 * s) as usize).max(16);
        let inner = match self.kind {
            SpecKind::LenetMnist | SpecKind::LenetFashion => {
                let spec =
                    ImageSpec { train: scaled(256), test: scaled(96), ..ImageSpec::default() };
                let (train, test) = if self.kind == SpecKind::LenetMnist {
                    mnist_like(&spec, seed)?
                } else {
                    fashion_like(&spec, seed)?
                };
                let model =
                    AnyModel::LeNet(LeNet5::with_input_size(16, 10, hp.dropout, &mut rng)?);
                InstanceKind::Dnn { model, train, test }
            }
            SpecKind::CnnNews20 => {
                let spec =
                    TextSpec { train: scaled(240), test: scaled(80), ..TextSpec::default() };
                let (train, test) = news20_like(&spec, seed)?;
                let model = AnyModel::TextCnn(TextCnn::new(
                    spec.vocab,
                    spec.seq_len,
                    hp.embedding_dim,
                    12,
                    spec.classes,
                    hp.dropout,
                    &mut rng,
                )?);
                InstanceKind::Dnn { model, train, test }
            }
            SpecKind::LstmNews20 => {
                let spec = TextSpec {
                    train: scaled(160),
                    test: scaled(64),
                    seq_len: 12,
                    ..TextSpec::default()
                };
                let (train, test) = news20_like(&spec, seed)?;
                let model = AnyModel::Lstm(LstmClassifier::new(
                    spec.vocab,
                    spec.seq_len,
                    hp.embedding_dim,
                    16,
                    spec.classes,
                    hp.dropout,
                    &mut rng,
                )?);
                InstanceKind::Dnn { model, train, test }
            }
            SpecKind::Jacobi => {
                // Map the generic hyperparameters onto the solver: the
                // learning rate plays the relaxation factor's role.
                let omega = (hp.learning_rate * 10.0).clamp(0.05, 1.0);
                let grid = scaled(40);
                InstanceKind::Jacobi(Jacobi::new(&JacobiConfig { grid, omega }, seed))
            }
            SpecKind::SpKMeans => {
                // Embedding dimension plays k; batch size the mini-batch
                // fraction.
                let k = (hp.embedding_dim / 8).clamp(2, 16);
                let frac = (hp.batch_size as f32 / 1024.0).clamp(0.05, 1.0);
                InstanceKind::SpKMeans(SpKMeans::new(
                    &SpKMeansConfig {
                        points: scaled(1600),
                        k,
                        batch_fraction: frac,
                        ..SpKMeansConfig::default()
                    },
                    seed,
                ))
            }
            SpecKind::Bfs => {
                let chunk = hp.batch_size.max(1);
                InstanceKind::Bfs(Bfs::new(
                    &BfsConfig { vertices: scaled(3000), chunk, ..BfsConfig::default() },
                    seed,
                ))
            }
            SpecKind::Hotspot => {
                // Learning rate plays the diffusion time-step (stability-
                // bounded, like the Jacobi relaxation factor).
                let dt = (hp.learning_rate * 2.0).clamp(0.01, 0.5);
                InstanceKind::Hotspot(Hotspot::new(
                    &HotspotConfig { grid: scaled(40), dt },
                    seed,
                ))
            }
        };
        let train_cfg = TrainConfig {
            batch_size: hp.batch_size,
            learning_rate: hp.learning_rate,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        Ok(WorkloadInstance { spec: *self, hp: *hp, train_cfg, inner, rng, epochs_run: 0, seed })
    }
}

/// Enum dispatch over the three DNN model families (the `Model` trait is not
/// object-safe because `train_epoch` is generic over the RNG).
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one live model per trial; clarity wins
pub enum AnyModel {
    /// LeNet-5.
    LeNet(LeNet5),
    /// Text CNN.
    TextCnn(TextCnn),
    /// LSTM classifier.
    Lstm(LstmClassifier),
}

impl AnyModel {
    fn train_epoch(
        &mut self,
        data: &Dataset,
        cfg: &TrainConfig,
        rng: &mut StdRng,
    ) -> Result<EpochMetrics, PipeTuneError> {
        Ok(match self {
            AnyModel::LeNet(m) => m.train_epoch(data, cfg, rng)?,
            AnyModel::TextCnn(m) => m.train_epoch(data, cfg, rng)?,
            AnyModel::Lstm(m) => m.train_epoch(data, cfg, rng)?,
        })
    }

    fn evaluate(&mut self, data: &Dataset) -> Result<f32, PipeTuneError> {
        Ok(match self {
            AnyModel::LeNet(m) => m.evaluate(data)?,
            AnyModel::TextCnn(m) => m.evaluate(data)?,
            AnyModel::Lstm(m) => m.evaluate(data)?,
        })
    }

    fn signature(&self) -> ModelSignature {
        match self {
            AnyModel::LeNet(m) => m.signature(),
            AnyModel::TextCnn(m) => m.signature(),
            AnyModel::Lstm(m) => m.signature(),
        }
    }
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one live instance per trial; clarity wins
enum InstanceKind {
    Dnn { model: AnyModel, train: Dataset, test: Dataset },
    Jacobi(Jacobi),
    SpKMeans(SpKMeans),
    Bfs(Bfs),
    Hotspot(Hotspot),
}

/// Result of one real epoch of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochOutcome {
    /// Training accuracy (DNNs) or quality score (kernels), in `[0, 1]`.
    pub train_score: f32,
    /// Training loss (DNNs) or a residual proxy (kernels).
    pub loss: f32,
}

/// Anything that runs epoch-by-epoch under PipeTune.
pub trait EpochWorkload {
    /// Runs one epoch of real work.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError`] on substrate failures.
    fn run_epoch(&mut self) -> Result<EpochOutcome, PipeTuneError>;

    /// Current held-out quality in `[0, 1]` (test accuracy / kernel score).
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError`] on substrate failures.
    fn accuracy(&mut self) -> Result<f32, PipeTuneError>;

    /// Epochs run so far.
    fn epochs_run(&self) -> u32;

    /// Profiler signature at the *paper's* dataset scale.
    fn signature(&self) -> WorkloadSignature;

    /// Cost-model work units per epoch at the *paper's* dataset scale.
    fn work_units(&self) -> WorkUnits;
}

/// A live trial workload (see [`WorkloadSpec::instantiate`]).
#[derive(Debug, Clone)]
pub struct WorkloadInstance {
    spec: WorkloadSpec,
    hp: HyperParams,
    train_cfg: TrainConfig,
    inner: InstanceKind,
    rng: StdRng,
    epochs_run: u32,
    /// The seed [`WorkloadSpec::instantiate`] was called with — kept so the
    /// epoch-reuse cache can persist an instance as a reconstruction recipe.
    seed: u64,
}

impl WorkloadInstance {
    /// The spec this instance was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The hyperparameters in effect.
    pub fn hyperparams(&self) -> &HyperParams {
        &self.hp
    }

    /// The seed this instance was built with (cache persistence recipe).
    pub(crate) fn instantiation_seed(&self) -> u64 {
        self.seed
    }

    /// The training RNG's raw state (cache persistence recipe).
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores the training RNG stream and epoch counter captured by
    /// [`WorkloadInstance::rng_state`] / [`EpochWorkload::epochs_run`] on a
    /// freshly re-instantiated instance (cache load path). Model state is
    /// restored separately via [`WorkloadInstance::import_params`].
    pub(crate) fn restore_training_state(&mut self, rng_state: [u64; 4], epochs_run: u32) {
        self.rng = StdRng::from_state(rng_state);
        self.epochs_run = epochs_run;
    }

    /// Snapshots the full trainable parameter state — weights plus the
    /// optimizer's gradient/momentum buffers — of a DNN workload (`None`
    /// for kernels). Restoring this snapshot resumes training bit for
    /// bit, which the epoch-cache persistence path requires; contrast
    /// [`WorkloadInstance::export_weights`], which captures values only.
    pub(crate) fn export_params(&mut self) -> Option<Vec<pipetune_dnn::Param>> {
        match &mut self.inner {
            InstanceKind::Dnn { model, .. } => Some(match model {
                AnyModel::LeNet(m) => m.export_params(),
                AnyModel::TextCnn(m) => m.export_params(),
                AnyModel::Lstm(m) => m.export_params(),
            }),
            _ => None,
        }
    }

    /// Restores parameter state exported by
    /// [`WorkloadInstance::export_params`] on an identically-configured
    /// instance.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Dnn`] on kernels or shape mismatches.
    pub(crate) fn import_params(
        &mut self,
        params: &[pipetune_dnn::Param],
    ) -> Result<(), PipeTuneError> {
        match &mut self.inner {
            InstanceKind::Dnn { model, .. } => {
                match model {
                    AnyModel::LeNet(m) => m.import_params(params)?,
                    AnyModel::TextCnn(m) => m.import_params(params)?,
                    AnyModel::Lstm(m) => m.import_params(params)?,
                }
                Ok(())
            }
            _ => Err(PipeTuneError::Dnn(pipetune_dnn::DnnError::WrongFeatureKind {
                expected: "image or token",
                actual: "kernel",
            })),
        }
    }

    /// Snapshots the current model's trainable weights (DNN workloads only;
    /// kernels have no weights). Together with the hyperparameters this is
    /// the "trained model + optimal parameters" output of Fig. 6.
    pub fn export_weights(&mut self) -> Option<Vec<pipetune_tensor::Tensor>> {
        match &mut self.inner {
            InstanceKind::Dnn { model, .. } => Some(match model {
                AnyModel::LeNet(m) => m.export_weights(),
                AnyModel::TextCnn(m) => m.export_weights(),
                AnyModel::Lstm(m) => m.export_weights(),
            }),
            _ => None,
        }
    }

    /// Restores model weights exported by [`WorkloadInstance::export_weights`]
    /// on an identically-configured instance.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Dnn`] on kernels or shape mismatches.
    pub fn import_weights(
        &mut self,
        weights: &[pipetune_tensor::Tensor],
    ) -> Result<(), PipeTuneError> {
        match &mut self.inner {
            InstanceKind::Dnn { model, .. } => {
                match model {
                    AnyModel::LeNet(m) => m.import_weights(weights)?,
                    AnyModel::TextCnn(m) => m.import_weights(weights)?,
                    AnyModel::Lstm(m) => m.import_weights(weights)?,
                }
                Ok(())
            }
            _ => Err(PipeTuneError::Dnn(pipetune_dnn::DnnError::WrongFeatureKind {
                expected: "image or token",
                actual: "kernel",
            })),
        }
    }

    /// Confusion matrix of the current model on the held-out split (DNN
    /// workloads only).
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Dnn`] for kernel workloads (which have no
    /// classification output) or on substrate failures.
    pub fn confusion(&mut self) -> Result<pipetune_dnn::ConfusionMatrix, PipeTuneError> {
        match &mut self.inner {
            InstanceKind::Dnn { model, test, .. } => {
                let test = test.clone();
                Ok(match model {
                    AnyModel::LeNet(m) => m.confusion(&test)?,
                    AnyModel::TextCnn(m) => m.confusion(&test)?,
                    AnyModel::Lstm(m) => m.confusion(&test)?,
                })
            }
            _ => Err(PipeTuneError::Dnn(pipetune_dnn::DnnError::WrongFeatureKind {
                expected: "image or token",
                actual: "kernel",
            })),
        }
    }

    fn kernel(&self) -> Option<&dyn IterativeKernel> {
        match &self.inner {
            InstanceKind::Jacobi(k) => Some(k),
            InstanceKind::SpKMeans(k) => Some(k),
            InstanceKind::Bfs(k) => Some(k),
            InstanceKind::Hotspot(k) => Some(k),
            InstanceKind::Dnn { .. } => None,
        }
    }

    fn kernel_mut(&mut self) -> Option<&mut dyn IterativeKernel> {
        match &mut self.inner {
            InstanceKind::Jacobi(k) => Some(k),
            InstanceKind::SpKMeans(k) => Some(k),
            InstanceKind::Bfs(k) => Some(k),
            InstanceKind::Hotspot(k) => Some(k),
            InstanceKind::Dnn { .. } => None,
        }
    }
}

impl EpochWorkload for WorkloadInstance {
    fn run_epoch(&mut self) -> Result<EpochOutcome, PipeTuneError> {
        self.epochs_run += 1;
        match &mut self.inner {
            InstanceKind::Dnn { model, train, .. } => {
                let m = model.train_epoch(train, &self.train_cfg, &mut self.rng)?;
                Ok(EpochOutcome { train_score: m.accuracy, loss: m.loss })
            }
            _ => {
                let k = self.kernel_mut().expect("non-DNN instance has a kernel");
                let m = k.step();
                Ok(EpochOutcome { train_score: m.score, loss: 1.0 - m.score })
            }
        }
    }

    fn accuracy(&mut self) -> Result<f32, PipeTuneError> {
        match &mut self.inner {
            InstanceKind::Dnn { model, test, .. } => {
                // Clone cheaply-sized test set borrow around the borrow rules.
                let test = test.clone();
                model.evaluate(&test)
            }
            _ => Ok(self.kernel().expect("non-DNN instance has a kernel").score()),
        }
    }

    fn epochs_run(&self) -> u32 {
        self.epochs_run
    }

    fn signature(&self) -> WorkloadSignature {
        match &self.inner {
            InstanceKind::Dnn { model, .. } => {
                let sig = model.signature();
                WorkloadSignature {
                    flops_per_epoch: sig.flops_per_sample
                        * self.spec.framework_overhead()
                        * self.spec.paper_examples() as f64,
                    working_set_bytes: self.work_units().working_set_bytes,
                    memory_intensity: sig.memory_intensity,
                    branch_ratio: sig.branch_ratio,
                }
            }
            _ => {
                let sig = self.kernel().expect("non-DNN instance has a kernel").signature();
                // Kernels run at their real scale; lift flops to the paper's
                // input sizes proportionally.
                WorkloadSignature {
                    flops_per_epoch: sig.flops_per_epoch * self.spec.framework_overhead(),
                    working_set_bytes: sig.working_set_bytes * 50.0,
                    memory_intensity: sig.memory_intensity,
                    branch_ratio: sig.branch_ratio,
                }
            }
        }
    }

    fn work_units(&self) -> WorkUnits {
        let examples = self.spec.paper_examples();
        let iterations = (examples / self.hp.batch_size as u64).max(1);
        match &self.inner {
            InstanceKind::Dnn { model, .. } => {
                let sig = model.signature();
                // Working set under BigDL/Spark: JVM+framework floor, cached
                // dataset replicas, and per-batch activation/shuffle
                // footprint (the term that makes the memory knob matter for
                // large batches). Calibration documented in DESIGN.md.
                let ws = 2.5e9
                    + self.spec.paper_dataset_bytes() * 40.0
                    + self.hp.batch_size as f64 * 2.0e7;
                WorkUnits {
                    flops: sig.flops_per_sample * self.spec.framework_overhead() * examples as f64,
                    iterations,
                    working_set_bytes: ws,
                    memory_intensity: sig.memory_intensity,
                }
            }
            _ => {
                let sig = self.kernel().expect("non-DNN instance has a kernel").signature();
                WorkUnits {
                    // Type-III epochs are short (seconds): real kernel scale
                    // lifted to the paper's inputs, but orders of magnitude
                    // less work per epoch than a DNN epoch.
                    flops: sig.flops_per_epoch * self.spec.framework_overhead(),
                    iterations: iterations.min(64),
                    working_set_bytes: 1.5e9 + sig.working_set_bytes * 50.0,
                    memory_intensity: sig.memory_intensity,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_hp() -> HyperParams {
        HyperParams { batch_size: 32, learning_rate: 0.02, embedding_dim: 16, ..HyperParams::default() }
    }

    #[test]
    fn all_seven_workloads_instantiate_and_step() {
        for spec in WorkloadSpec::all_type12().into_iter().chain(WorkloadSpec::all_type3()) {
            let spec = spec.with_scale(0.2);
            let mut w = spec.instantiate(&fast_hp(), 7).unwrap();
            let out = w.run_epoch().unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            assert!(out.loss.is_finite());
            assert_eq!(w.epochs_run(), 1);
            let acc = w.accuracy().unwrap();
            assert!((0.0..=1.0).contains(&acc), "{}: accuracy {acc}", spec.name());
            assert!(w.work_units().is_valid());
            assert!(w.signature().flops_per_epoch > 0.0);
        }
    }

    #[test]
    fn names_round_trip() {
        for spec in WorkloadSpec::all_type12().into_iter().chain(WorkloadSpec::all_type3()) {
            assert_eq!(WorkloadSpec::by_name(spec.name()).unwrap().name(), spec.name());
        }
        assert!(WorkloadSpec::by_name("nope").is_none());
    }

    #[test]
    fn type_assignment_matches_table3() {
        assert_eq!(WorkloadSpec::lenet_mnist().job_type(), JobType::TypeI);
        assert_eq!(WorkloadSpec::cnn_news20().job_type(), JobType::TypeII);
        assert_eq!(WorkloadSpec::bfs().job_type(), JobType::TypeIII);
        assert_eq!(WorkloadSpec::lenet_mnist().paper_examples(), 60_000);
    }

    #[test]
    fn batch_size_controls_iterations_and_working_set() {
        let small = WorkloadSpec::lenet_mnist()
            .with_scale(0.2)
            .instantiate(&HyperParams { batch_size: 32, ..fast_hp() }, 1)
            .unwrap();
        let large = WorkloadSpec::lenet_mnist()
            .with_scale(0.2)
            .instantiate(&HyperParams { batch_size: 1024, ..fast_hp() }, 1)
            .unwrap();
        assert!(small.work_units().iterations > large.work_units().iterations * 10);
        assert!(large.work_units().working_set_bytes > small.work_units().working_set_bytes);
    }

    #[test]
    fn embedding_dim_scales_text_flops() {
        let hp_small = HyperParams { embedding_dim: 8, ..fast_hp() };
        let hp_large = HyperParams { embedding_dim: 64, ..fast_hp() };
        let a = WorkloadSpec::cnn_news20().with_scale(0.2).instantiate(&hp_small, 1).unwrap();
        let b = WorkloadSpec::cnn_news20().with_scale(0.2).instantiate(&hp_large, 1).unwrap();
        assert!(b.work_units().flops > a.work_units().flops * 2.0);
    }

    #[test]
    fn dnn_training_improves_train_score() {
        let spec = WorkloadSpec::lenet_mnist().with_scale(0.3);
        let mut w = spec.instantiate(&fast_hp(), 5).unwrap();
        let first = w.run_epoch().unwrap().train_score;
        for _ in 0..5 {
            w.run_epoch().unwrap();
        }
        let last = w.run_epoch().unwrap().train_score;
        assert!(last > first, "{first} → {last}");
    }

    #[test]
    fn kernel_hyperparameter_mappings_are_clamped_and_effective() {
        // learning_rate → jacobi ω and hotspot dt; embedding_dim → k-means k;
        // batch_size → bfs chunk / spkmeans batch fraction. Extreme inputs
        // must clamp instead of panicking.
        let extreme = HyperParams {
            batch_size: 1,
            learning_rate: 10.0,
            embedding_dim: 10_000,
            ..fast_hp()
        };
        for spec in [
            WorkloadSpec::jacobi(),
            WorkloadSpec::spkmeans(),
            WorkloadSpec::bfs(),
            WorkloadSpec::hotspot(),
        ] {
            let mut w = spec.with_scale(0.2).instantiate(&extreme, 3).unwrap();
            let out = w.run_epoch().unwrap();
            assert!(out.loss.is_finite(), "{} must clamp extremes", spec.name());
        }
        // And the mapping is *effective*: a better learning rate converges
        // jacobi faster, as ω would.
        let run = |lr: f32| {
            let hp = HyperParams { learning_rate: lr, ..fast_hp() };
            let mut w = WorkloadSpec::jacobi().with_scale(0.2).instantiate(&hp, 4).unwrap();
            for _ in 0..15 {
                w.run_epoch().unwrap();
            }
            w.accuracy().unwrap()
        };
        assert!(run(0.095) > run(0.005), "omega mapping must matter");
    }

    #[test]
    fn hotspot_extension_is_reachable_by_name_but_not_in_type3_set() {
        assert_eq!(WorkloadSpec::by_name("hotspot").unwrap().name(), "hotspot");
        assert!(WorkloadSpec::all_type3().iter().all(|w| w.name() != "hotspot"));
        assert_eq!(WorkloadSpec::hotspot().job_type(), JobType::TypeIII);
    }

    #[test]
    fn weights_round_trip_through_the_instance_api() {
        let hp = fast_hp();
        let mut a = WorkloadSpec::cnn_news20().with_scale(0.2).instantiate(&hp, 9).unwrap();
        a.run_epoch().unwrap();
        let weights = a.export_weights().expect("dnn has weights");
        let mut b = WorkloadSpec::cnn_news20().with_scale(0.2).instantiate(&hp, 9).unwrap();
        b.import_weights(&weights).unwrap();
        assert_eq!(a.accuracy().unwrap(), b.accuracy().unwrap());
        // Kernels have no weights in either direction.
        let mut k = WorkloadSpec::bfs().with_scale(0.2).instantiate(&hp, 9).unwrap();
        assert!(k.export_weights().is_none());
        assert!(k.import_weights(&weights).is_err());
    }

    #[test]
    fn workload_signatures_separate_model_families() {
        let hp = fast_hp();
        let a = WorkloadSpec::lenet_mnist().with_scale(0.2).instantiate(&hp, 1).unwrap();
        let b = WorkloadSpec::lstm_news20().with_scale(0.2).instantiate(&hp, 1).unwrap();
        let sa = a.signature();
        let sb = b.signature();
        assert!(sa.branch_ratio != sb.branch_ratio || sa.flops_per_epoch != sb.flops_per_epoch);
    }
}
