//! # PipeTune: pipelined hyper- and system-parameter tuning
//!
//! Reproduction of *PipeTune: Pipeline Parallelism of Hyper and System
//! Parameters Tuning for Deep Learning Clusters* (Rocha et al., Middleware
//! 2020). PipeTune is a middleware between a hyperparameter tuner (HyperBand
//! over the paper's five hyperparameters) and the training substrate. While
//! each trial trains, PipeTune tunes **system parameters** (CPU cores,
//! memory) at epoch granularity:
//!
//! 1. **profile** the first epoch with hardware counters
//!    ([`pipetune_perfmon`]),
//! 2. consult the **ground truth** (k-means over historical profiles,
//!    [`GroundTruth`]) and reuse a known-best system configuration when the
//!    profile is similar enough,
//! 3. otherwise **probe**: one system configuration per epoch over the grid,
//!    then apply the best for the remaining epochs and remember it.
//!
//! The crate also implements the paper's baselines — [`TuneV1`]
//! (hyperparameters only, maximise accuracy) and [`TuneV2`] (system
//! parameters folded into the search space, maximise accuracy/time) — plus
//! single- and multi-tenancy experiment drivers used by the benchmark
//! harness to regenerate every figure and table.
//!
//! # Example
//!
//! ```no_run
//! use pipetune::{ExperimentEnv, PipeTune, TunerOptions, WorkloadSpec};
//!
//! let env = ExperimentEnv::distributed(42);
//! let spec = WorkloadSpec::lenet_mnist();
//! let outcome = PipeTune::new(TunerOptions::fast()).run(&env, &spec)?;
//! println!("accuracy {:.1}%, tuning {:.0}s", 100.0 * outcome.best_accuracy,
//!          outcome.tuning_secs);
//! # Ok::<(), pipetune::PipeTuneError>(())
//! ```

#![warn(missing_docs)]

mod baselines;
mod cache;
mod env;
mod error;
mod experiments;
mod groundtruth;
mod hyper;
mod objective;
pub mod observe;
mod related;
mod runner;
mod scheduler_choice;
mod sharing;
mod trial;
mod tuner;
mod workload;

pub use baselines::{run_arbitrary, TuneV1, TuneV2};
pub use cache::{
    fingerprint as epoch_cache_fingerprint, CacheKey, CacheSession, CacheStats, EpochCache,
    EpochCacheConfig, EpochCacheHandle,
};
pub use env::{ExperimentEnv, ExperimentEnvBuilder};
pub use error::{Error, InvalidConfig, PipeTuneError};
pub use pipetune_cluster::{FaultKind, FaultPlan, FaultReport, RetryPolicy};
pub use experiments::{
    multi_tenancy, multi_tenancy_shared, single_tenancy, warm_start_ground_truth,
    MultiTenancyOptions, MultiTenancyOutcome, SingleTenancyRow,
};
pub use groundtruth::{
    GroundTruth, GroundTruthAccess, GroundTruthStats, GtSession, SharedGroundTruth,
    SimilarityKind,
};
pub use hyper::{HyperParams, HyperSpace};
pub use objective::{Objective, ProbeGoal};
pub use related::{related_systems, RelatedSystem};
pub use runner::{SlotSchedule, TrialOutcome};
pub use scheduler_choice::SchedulerKind;
pub use sharing::{simulate_fifo, simulate_processor_sharing, SharedCompletion, SharedJob};
pub use trial::{EpochPhase, EpochRecord, SystemTuner, TrialCheckpoint, TrialExecution};
pub use tuner::{ConvergencePoint, PipeTune, TunerOptions, TuningOutcome};
pub use workload::{
    AnyModel, EpochOutcome, EpochWorkload, JobType, WorkloadInstance, WorkloadSpec,
};

/// One-stop import surface for applications driving PipeTune.
///
/// Pulls in the environment builder, the tuners and baselines, the
/// workload catalogue, the error types, and the observability handles
/// (telemetry, monitoring, epoch cache) under one `use`:
///
/// ```
/// use pipetune::prelude::*;
///
/// let env = ExperimentEnvBuilder::distributed(42).workers(1).build()?;
/// let spec = WorkloadSpec::lenet_mnist();
/// assert!(env.workers >= 1 && spec.name() == "lenet/mnist");
/// # Ok::<(), pipetune::InvalidConfig>(())
/// ```
pub mod prelude {
    pub use crate::baselines::{TuneV1, TuneV2};
    pub use crate::cache::{CacheStats, EpochCacheConfig, EpochCacheHandle};
    pub use crate::env::{ExperimentEnv, ExperimentEnvBuilder};
    pub use crate::error::{Error, InvalidConfig, PipeTuneError};
    pub use crate::hyper::{HyperParams, HyperSpace};
    pub use crate::objective::Objective;
    pub use crate::runner::TrialOutcome;
    pub use crate::scheduler_choice::SchedulerKind;
    pub use crate::tuner::{PipeTune, TunerOptions, TuningOutcome};
    pub use crate::workload::{JobType, WorkloadSpec};
    pub use pipetune_cluster::{FaultPlan, RetryPolicy, SystemConfig};
    pub use pipetune_monitor::{MonitorConfig, MonitorHandle};
    pub use pipetune_telemetry::TelemetryHandle;
}
