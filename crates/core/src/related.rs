//! Table 1: the state-of-the-art comparison matrix, as static data.
//!
//! The paper's related-work table is qualitative; encoding it here lets the
//! benchmark harness reprint it verbatim (`table1_related_matrix`).

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelatedSystem {
    /// System name.
    pub name: &'static str,
    /// Supports CPU processing nodes.
    pub cpu: bool,
    /// Supports GPU processing nodes.
    pub gpu: bool,
    /// Deployable over a distributed cluster.
    pub distributed_training: bool,
    /// Tunes hyperparameters.
    pub tunes_hyper: bool,
    /// Tunes system parameters.
    pub tunes_system: bool,
    /// Natively supported DL frameworks.
    pub frameworks: &'static [&'static str],
    /// Open source.
    pub open_source: bool,
}

/// The sixteen rows of Table 1, in the paper's order.
pub fn related_systems() -> &'static [RelatedSystem] {
    const T: bool = true;
    const F: bool = false;
    &[
        RelatedSystem { name: "Astra", cpu: F, gpu: T, distributed_training: F, tunes_hyper: T, tunes_system: T, frameworks: &["TensorFlow", "Keras"], open_source: F },
        RelatedSystem { name: "AutoKeras", cpu: T, gpu: T, distributed_training: F, tunes_hyper: T, tunes_system: T, frameworks: &["TensorFlow", "Keras"], open_source: T },
        RelatedSystem { name: "ByteScheduler", cpu: T, gpu: T, distributed_training: T, tunes_hyper: T, tunes_system: F, frameworks: &["TensorFlow", "Keras", "PyTorch", "MXNet"], open_source: T },
        RelatedSystem { name: "GRNN", cpu: T, gpu: T, distributed_training: F, tunes_hyper: T, tunes_system: F, frameworks: &["TensorFlow", "PyTorch"], open_source: F },
        RelatedSystem { name: "HyperDrive", cpu: T, gpu: T, distributed_training: T, tunes_hyper: T, tunes_system: T, frameworks: &["TensorFlow", "Keras"], open_source: F },
        RelatedSystem { name: "Hop", cpu: T, gpu: F, distributed_training: T, tunes_hyper: T, tunes_system: F, frameworks: &["TensorFlow"], open_source: F },
        RelatedSystem { name: "Optimus", cpu: T, gpu: T, distributed_training: T, tunes_hyper: T, tunes_system: F, frameworks: &["MXNet"], open_source: F },
        RelatedSystem { name: "Orion", cpu: T, gpu: F, distributed_training: T, tunes_hyper: T, tunes_system: F, frameworks: &["TensorFlow"], open_source: T },
        RelatedSystem { name: "Parallax", cpu: T, gpu: T, distributed_training: T, tunes_hyper: T, tunes_system: F, frameworks: &["TensorFlow"], open_source: T },
        RelatedSystem { name: "PipeDream", cpu: F, gpu: T, distributed_training: T, tunes_hyper: T, tunes_system: F, frameworks: &["TensorFlow", "MXNet"], open_source: T },
        RelatedSystem { name: "SageMaker", cpu: T, gpu: T, distributed_training: T, tunes_hyper: T, tunes_system: T, frameworks: &[], open_source: F },
        RelatedSystem { name: "STRADS", cpu: T, gpu: F, distributed_training: T, tunes_hyper: T, tunes_system: F, frameworks: &[], open_source: T },
        RelatedSystem { name: "STRADS-AP", cpu: T, gpu: F, distributed_training: T, tunes_hyper: T, tunes_system: T, frameworks: &["TensorFlow"], open_source: F },
        RelatedSystem { name: "Tune", cpu: T, gpu: T, distributed_training: T, tunes_hyper: T, tunes_system: T, frameworks: &["TensorFlow", "Keras"], open_source: T },
        RelatedSystem { name: "Vizier", cpu: T, gpu: T, distributed_training: T, tunes_hyper: T, tunes_system: T, frameworks: &[], open_source: F },
        RelatedSystem { name: "PipeTune", cpu: T, gpu: F, distributed_training: T, tunes_hyper: T, tunes_system: T, frameworks: &["BigDL", "TensorFlow", "Keras"], open_source: T },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows_ending_with_pipetune() {
        let rows = related_systems();
        assert_eq!(rows.len(), 16);
        assert_eq!(rows.last().unwrap().name, "PipeTune");
    }

    #[test]
    fn pipetune_is_the_only_cpu_system_tuning_both_with_bigdl() {
        let rows = related_systems();
        let pt = rows.last().unwrap();
        assert!(pt.tunes_hyper && pt.tunes_system && pt.open_source);
        assert!(pt.frameworks.contains(&"BigDL"));
        // No other row supports BigDL.
        assert!(rows[..15].iter().all(|r| !r.frameworks.contains(&"BigDL")));
    }
}
