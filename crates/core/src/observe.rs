//! Canonical metric names the executor records (see `docs/telemetry.md`).
//!
//! Every name lives here so exporters, dashboards and tests share one
//! vocabulary, declared through [`pipetune_telemetry::metric_names!`] so
//! the module also exports an `ALL_METRIC_NAMES` registry slice the
//! metric-name audit test checks emissions against. Counters are
//! cumulative over a [`crate::ExperimentEnv`] telemetry handle's
//! lifetime; histograms use the fixed bucket layouts from
//! [`pipetune_telemetry`]; gauges hold last-written values.
//!
//! Cluster-, PMU-, energy-, service- and monitor-level names live next
//! to their subsystems: [`pipetune_cluster::observe`],
//! [`pipetune_perfmon::observe`], [`pipetune_energy::observe`],
//! `pipetune_service::observe` and `pipetune_monitor::observe`.

pipetune_telemetry::metric_names! {
    /// Histogram of committed epoch durations, simulated seconds
    /// ([`pipetune_telemetry::DURATION_BUCKETS_SECS`]).
    pub const EPOCH_SECS = "trial.epoch_secs";

    /// Counter: epochs committed (crashed attempts excluded).
    pub const EPOCHS_TOTAL = "epochs.total";

    /// Counter: epochs that ran in [`crate::EpochPhase::Profile`].
    pub const EPOCHS_PROFILE = "epochs.profile";

    /// Counter: epochs that ran in [`crate::EpochPhase::Probe`].
    pub const EPOCHS_PROBE = "epochs.probe";

    /// Counter: epochs that ran in [`crate::EpochPhase::Tuned`] or
    /// [`crate::EpochPhase::Reused`] (a settled configuration in force).
    pub const EPOCHS_TUNED = "epochs.tuned";

    /// Counter: epochs that ran in [`crate::EpochPhase::Fixed`] (baselines).
    pub const EPOCHS_FIXED = "epochs.fixed";

    /// Counter: epochs adopted from the epoch-reuse cache instead of being
    /// trained (never included in [`EPOCHS_TOTAL`], which counts only epochs
    /// that really executed).
    pub const EPOCHS_CACHED = "epochs.cached";

    /// Counter: epoch-reuse cache lookups that adopted a cached prefix.
    pub const CACHE_HITS = "cache.hit";

    /// Counter: epoch-reuse cache lookups that fell through to a cold start.
    pub const CACHE_MISSES = "cache.miss";

    /// Counter: epoch prefixes inserted into the epoch-reuse cache.
    pub const CACHE_INSERTS = "cache.insert";

    /// Counter: cache entries evicted by the LRU-by-simulated-time policy.
    pub const CACHE_EVICTIONS = "cache.evict";

    /// Gauge: simulated epoch-seconds the epoch-reuse cache saved over the
    /// most recent job (unset until the first job with a cache hit finishes).
    pub const CACHE_SAVED_SECS = "cache.saved_secs";

    /// Counter: probe measurements kept (lost counter reads excluded).
    pub const PROBE_COUNT = "probe.count";

    /// Counter: ground-truth lookups answered with a configuration.
    pub const GT_HITS = "gt.hits";

    /// Counter: ground-truth lookups that fell through to probing.
    pub const GT_MISSES = "gt.misses";

    /// Counter: probed optima persisted into the ground truth.
    pub const GT_RECORDED = "gt.recorded";

    /// Counter: k-means refits the ground truth ran.
    pub const GT_REFITS = "gt.refits";

    /// Gauge: hits ÷ lookups over the most recent job (NaN-free: unset until
    /// the first job with at least one lookup finishes).
    pub const GT_HIT_RATE = "gt.hit_rate";

    /// Counter: scheduler rounds (= batches) the executor ran.
    pub const ROUNDS = "executor.rounds";

    /// Histogram of trials per scheduler batch
    /// ([`pipetune_telemetry::COUNT_BUCKETS`]).
    pub const BATCH_TRIALS = "executor.batch_trials";

    /// Histogram of batch-size ÷ parallel-slot occupancy
    /// ([`pipetune_telemetry::RATIO_BUCKETS`]); values above 1.0 mean trials
    /// queued behind busy simulated slots.
    pub const QUEUE_OCCUPANCY = "executor.queue_occupancy";

    /// Gauge: epochs the scheduler issued over its whole run.
    pub const SCHEDULER_EPOCHS = "scheduler.epochs_issued";
}
