//! Experiment drivers: single-tenancy (Figs. 11 & 12, Table 2) and
//! multi-tenancy (Figs. 13 & 14).

use pipetune_cluster::PoissonArrivals;
use serde::{Deserialize, Serialize};

use crate::baselines::{TuneV1, TuneV2};
use crate::tuner::{PipeTune, TunerOptions};
use crate::workload::EpochWorkload;
use crate::{ExperimentEnv, GroundTruth, PipeTuneError, WorkloadSpec};

/// One row of the single-tenancy comparison (one workload × one approach).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleTenancyRow {
    /// Workload name (`lenet/mnist`, …).
    pub workload: String,
    /// `TuneV1`, `TuneV2` or `PipeTune`.
    pub approach: &'static str,
    /// Accuracy of the selected model.
    pub accuracy: f32,
    /// Training duration of the selected model, seconds.
    pub training_secs: f64,
    /// Wall-clock tuning duration, seconds.
    pub tuning_secs: f64,
    /// Cluster tuning energy, joules.
    pub tuning_energy_j: f64,
}

/// Warm-starts a ground truth the way §7.2 does: profile every workload
/// under representative system configurations and store each family's best
/// configuration (judged by the probe goal on the cost model).
///
/// # Errors
///
/// Propagates substrate errors.
pub fn warm_start_ground_truth(
    env: &ExperimentEnv,
    specs: &[WorkloadSpec],
    options: &TunerOptions,
) -> Result<GroundTruth, PipeTuneError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut gt = GroundTruth::with_similarity(options.similarity, options.threshold_factor, env.subseed(0x57A7));
    let mut rng = StdRng::seed_from_u64(env.subseed(0x57A8));
    let grid = env.system_space.configurations();
    // §7.2's profiling campaign varies batch size (32/64/512/1024) and the
    // system configuration (48 combinations per workload, each repeated
    // twice). The variation is what gives each cluster a realistic spread,
    // so later trials with arbitrary hyperparameters still land inside the
    // confidence threshold.
    let batches = [32usize, 64, 512, 1024];
    let embeddings = [8usize, 64];
    for (wi, spec) in specs.iter().enumerate() {
        let spec = spec.with_scale(options.scale);
        for (vi, (&batch, &embedding)) in batches
            .iter()
            .flat_map(|b| embeddings.iter().map(move |e| (b, e)))
            .enumerate()
        {
            let hp = crate::HyperParams {
                batch_size: batch,
                embedding_dim: embedding,
                ..crate::HyperParams::default()
            };
            let workload =
                spec.instantiate(&hp, env.subseed(1000 + wi as u64 * 16 + vi as u64))?;
            let work = workload.work_units();
            let sig = workload.signature();
            // Best configuration over the grid by probe cost (what actual
            // probing would find for this working set).
            let (best, best_cost) = grid
                .iter()
                .map(|sys| {
                    let dur = env.cost.epoch_duration(&work, sys, 1.0);
                    let energy = env.trial_power(sys) * dur;
                    (*sys, options.probe_goal.cost(dur, energy))
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("non-empty grid");
            // Profile under several core allocations, twice each (§7.2
            // repeats every configuration to absorb unseen variation).
            for &cores in &env.system_space.cores {
                let sys = pipetune_cluster::SystemConfig {
                    cores,
                    ..env.default_system
                };
                let dur = env.cost.epoch_duration(&work, &sys, 1.0);
                for _rep in 0..2 {
                    let profile = env.profiler.profile_epoch(&sig, cores, dur, &mut rng);
                    gt.record(spec.name(), &profile.features(), best, best_cost)?;
                }
            }
        }
    }
    gt.refit()?;
    Ok(gt)
}

/// Runs the single-tenancy comparison: each workload tuned by Tune V1,
/// Tune V2 and PipeTune on a dedicated cluster (Figs. 11 & 12).
///
/// # Errors
///
/// Propagates substrate and configuration errors.
pub fn single_tenancy(
    env: &ExperimentEnv,
    specs: &[WorkloadSpec],
    options: &TunerOptions,
) -> Result<Vec<SingleTenancyRow>, PipeTuneError> {
    let mut rows = Vec::new();
    // PipeTune starts from the §7.2 warm-started similarity model.
    let gt = warm_start_ground_truth(env, specs, options)?;
    let mut pipetune = PipeTune::with_ground_truth(*options, gt);
    let mut v1 = TuneV1::new(*options);
    let mut v2 = TuneV2::new(*options);
    for spec in specs {
        let o1 = v1.run(env, spec)?;
        rows.push(SingleTenancyRow {
            workload: spec.name().to_string(),
            approach: "TuneV1",
            accuracy: o1.best_accuracy,
            training_secs: o1.training_secs,
            tuning_secs: o1.tuning_secs,
            tuning_energy_j: o1.tuning_energy_j,
        });
        let o2 = v2.run(env, spec)?;
        rows.push(SingleTenancyRow {
            workload: spec.name().to_string(),
            approach: "TuneV2",
            accuracy: o2.best_accuracy,
            training_secs: o2.training_secs,
            tuning_secs: o2.tuning_secs,
            tuning_energy_j: o2.tuning_energy_j,
        });
        let op = pipetune.run(env, spec)?;
        rows.push(SingleTenancyRow {
            workload: spec.name().to_string(),
            approach: "PipeTune",
            accuracy: op.best_accuracy,
            training_secs: op.training_secs,
            tuning_secs: op.tuning_secs,
            tuning_energy_j: op.tuning_energy_j,
        });
    }
    Ok(rows)
}

/// Multi-tenancy trace parameters (§7.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiTenancyOptions {
    /// Number of HPT jobs in the trace.
    pub jobs: usize,
    /// Poisson arrival rate, jobs per (simulated) second.
    pub arrival_rate_per_sec: f64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for MultiTenancyOptions {
    fn default() -> Self {
        MultiTenancyOptions { jobs: 8, arrival_rate_per_sec: 1.0 / 3000.0, seed: 7 }
    }
}

/// Per-approach response-time summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenancyOutcome {
    /// `TuneV1`, `TuneV2` or `PipeTune`.
    pub approach: &'static str,
    /// Mean response time (completion − arrival) per workload, seconds,
    /// keyed by workload name.
    pub per_workload_secs: Vec<(String, f64)>,
    /// Mean response time over all jobs, seconds.
    pub overall_secs: f64,
}

/// Runs the multi-tenancy experiment: jobs arrive with exponential
/// interarrival times and are served FIFO (§5.1); within a job, trials use
/// the whole cluster. Workloads rotate round-robin over `specs`, so later
/// jobs repeat families seen earlier — the repetition PipeTune's ground
/// truth exploits. The first arrival of each family plays the paper's
/// "unseen job" role (with `specs.len()` families and the default 8-job
/// trace this is ~25 % unseen, close to the paper's 20 %).
///
/// # Errors
///
/// Propagates substrate and configuration errors.
pub fn multi_tenancy(
    env: &ExperimentEnv,
    specs: &[WorkloadSpec],
    options: &TunerOptions,
    mt: &MultiTenancyOptions,
) -> Result<Vec<MultiTenancyOutcome>, PipeTuneError> {
    if specs.is_empty() || mt.jobs == 0 {
        return Err(PipeTuneError::InvalidConfig {
            reason: "multi-tenancy needs at least one spec and one job".into(),
        });
    }
    let mut arrivals = PoissonArrivals::new(mt.arrival_rate_per_sec, mt.seed);
    let schedule: Vec<(f64, WorkloadSpec)> = (0..mt.jobs)
        .map(|i| (arrivals.next_arrival().as_secs_f64(), specs[i % specs.len()]))
        .collect();

    let mut results = Vec::new();
    for approach in ["TuneV1", "TuneV2", "PipeTune"] {
        let mut v1 = TuneV1::new(*options);
        let mut v2 = TuneV2::new(*options);
        // PipeTune starts cold here: the ground truth is built *by the
        // trace itself* (§7.4 measures exactly this amortisation).
        let mut pt = PipeTune::new(*options);
        let mut prev_completion = 0.0f64;
        let mut per: std::collections::BTreeMap<String, (f64, usize)> = Default::default();
        let mut total = 0.0f64;
        for (arrival, spec) in &schedule {
            let tuning_secs = match approach {
                "TuneV1" => v1.run(env, spec)?.tuning_secs,
                "TuneV2" => v2.run(env, spec)?.tuning_secs,
                _ => pt.run(env, spec)?.tuning_secs,
            };
            let start = prev_completion.max(*arrival);
            let completion = start + tuning_secs;
            prev_completion = completion;
            let response = completion - arrival;
            total += response;
            let e = per.entry(spec.name().to_string()).or_insert((0.0, 0));
            e.0 += response;
            e.1 += 1;
        }
        results.push(MultiTenancyOutcome {
            approach,
            per_workload_secs: per
                .into_iter()
                .map(|(k, (sum, n))| (k, sum / n as f64))
                .collect(),
            overall_secs: total / mt.jobs as f64,
        });
    }
    Ok(results)
}

/// Shared-cluster variant of [`multi_tenancy`]: jobs start on arrival and
/// processor-share the cluster (Fig. 5's co-location regime) instead of
/// queueing FIFO. Service times are each approach's dedicated tuning times;
/// the sharing simulation converts them into overlapped completions.
///
/// # Errors
///
/// Propagates substrate and configuration errors.
pub fn multi_tenancy_shared(
    env: &ExperimentEnv,
    specs: &[WorkloadSpec],
    options: &TunerOptions,
    mt: &MultiTenancyOptions,
) -> Result<Vec<MultiTenancyOutcome>, PipeTuneError> {
    if specs.is_empty() || mt.jobs == 0 {
        return Err(PipeTuneError::InvalidConfig {
            reason: "multi-tenancy needs at least one spec and one job".into(),
        });
    }
    let mut arrivals = PoissonArrivals::new(mt.arrival_rate_per_sec, mt.seed);
    let schedule: Vec<(f64, WorkloadSpec)> = (0..mt.jobs)
        .map(|i| (arrivals.next_arrival().as_secs_f64(), specs[i % specs.len()]))
        .collect();

    let mut results = Vec::new();
    for approach in ["TuneV1", "TuneV2", "PipeTune"] {
        let mut v1 = TuneV1::new(*options);
        let mut v2 = TuneV2::new(*options);
        let mut pt = PipeTune::new(*options);
        let jobs: Vec<crate::SharedJob> = schedule
            .iter()
            .map(|(arrival, spec)| {
                let tuning_secs = match approach {
                    "TuneV1" => v1.run(env, spec)?.tuning_secs,
                    "TuneV2" => v2.run(env, spec)?.tuning_secs,
                    _ => pt.run(env, spec)?.tuning_secs,
                };
                Ok(crate::SharedJob { arrival_secs: *arrival, service_secs: tuning_secs })
            })
            .collect::<Result<_, PipeTuneError>>()?;
        let completions = crate::simulate_processor_sharing(&jobs)?;
        let mut per: std::collections::BTreeMap<String, (f64, usize)> = Default::default();
        let mut total = 0.0f64;
        for c in &completions {
            total += c.response_secs;
            let name = schedule[c.job].1.name().to_string();
            let e = per.entry(name).or_insert((0.0, 0));
            e.0 += c.response_secs;
            e.1 += 1;
        }
        results.push(MultiTenancyOutcome {
            approach,
            per_workload_secs: per
                .into_iter()
                .map(|(k, (sum, n))| (k, sum / n as f64))
                .collect(),
            overall_secs: total / mt.jobs as f64,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_start_builds_a_usable_ground_truth() {
        let env = ExperimentEnv::distributed(31);
        let specs = [WorkloadSpec::lenet_mnist(), WorkloadSpec::lstm_news20()];
        let gt = warm_start_ground_truth(&env, &specs, &TunerOptions::fast()).unwrap();
        assert_eq!(gt.len(), 96); // 2 workloads × 8 hp variants × 3 core counts × 2 reps
        assert!(gt.stats().refits >= 1);
    }

    #[test]
    fn single_tenancy_produces_three_rows_per_workload() {
        let env = ExperimentEnv::distributed(32);
        let specs = [WorkloadSpec::lenet_mnist()];
        let rows = single_tenancy(&env, &specs, &TunerOptions::fast()).unwrap();
        assert_eq!(rows.len(), 3);
        let approaches: Vec<&str> = rows.iter().map(|r| r.approach).collect();
        assert_eq!(approaches, vec!["TuneV1", "TuneV2", "PipeTune"]);
        assert!(rows.iter().all(|r| r.tuning_secs > 0.0 && r.accuracy > 0.0));
    }

    #[test]
    fn multi_tenancy_reports_all_three_approaches() {
        let env = ExperimentEnv::distributed(33);
        let specs = [WorkloadSpec::lenet_mnist()];
        let mt = MultiTenancyOptions { jobs: 2, arrival_rate_per_sec: 1.0 / 1000.0, seed: 3 };
        let out = multi_tenancy(&env, &specs, &TunerOptions::fast(), &mt).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|o| o.overall_secs > 0.0));
        assert!(out.iter().all(|o| o.per_workload_secs.len() == 1));
    }

    #[test]
    fn shared_mode_also_reports_and_pipetune_wins() {
        let env = ExperimentEnv::distributed(35);
        let specs = [WorkloadSpec::lenet_mnist()];
        let mt = MultiTenancyOptions { jobs: 3, arrival_rate_per_sec: 1.0 / 500.0, seed: 5 };
        let out = multi_tenancy_shared(&env, &specs, &TunerOptions::fast(), &mt).unwrap();
        assert_eq!(out.len(), 3);
        let v1 = out.iter().find(|o| o.approach == "TuneV1").unwrap().overall_secs;
        let pt = out.iter().find(|o| o.approach == "PipeTune").unwrap().overall_secs;
        assert!(pt < v1, "sharing should not erase PipeTune's advantage: {pt} vs {v1}");
    }

    #[test]
    fn multi_tenancy_rejects_empty_traces() {
        let env = ExperimentEnv::distributed(34);
        let mt = MultiTenancyOptions { jobs: 0, ..Default::default() };
        assert!(multi_tenancy(&env, &[WorkloadSpec::bfs()], &TunerOptions::fast(), &mt).is_err());
    }
}
