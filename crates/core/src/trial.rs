//! Trial execution: Algorithm 1's pipelined per-epoch system tuning.
//!
//! A [`TrialExecution`] owns one live workload instance and runs it epoch by
//! epoch. Under the [`SystemTuner::Pipelined`] policy it executes the
//! paper's pipeline: profile the first epoch, consult the ground truth, and
//! either apply a known-best system configuration immediately or probe one
//! grid configuration per epoch before settling on the argmin (Algorithm 1).
//! Under [`SystemTuner::Fixed`] every epoch runs with one configuration —
//! the Tune V1/V2 behaviour.

use pipetune_cluster::{FaultKind, FaultReport, SystemConfig};
use pipetune_telemetry::{EventKind, SpanKind, TelemetryBuffer, DURATION_BUCKETS_SECS};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::groundtruth::GroundTruthAccess;
use crate::objective::ProbeGoal;
use crate::observe;
use crate::workload::EpochWorkload;
use crate::{ExperimentEnv, PipeTuneError, WorkloadInstance};

/// Which phase of Algorithm 1 an epoch executed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochPhase {
    /// First epoch: running under the default configuration while the
    /// profiler collects counters.
    Profile,
    /// Ground truth was confident: known-best configuration applied.
    Reused,
    /// Grid probing: a candidate configuration held for this epoch.
    Probe,
    /// Post-probing: the argmin configuration applied.
    Tuned,
    /// Fixed-policy epoch (baselines).
    Fixed,
    /// Adopted from the epoch-reuse cache: the epoch was trained by an
    /// earlier trial and reloaded here at a fraction of the cost (see
    /// `docs/reuse.md`).
    Cached,
}

impl EpochPhase {
    /// Stable lower-case name (span labels, trace attributes, docs).
    pub fn name(self) -> &'static str {
        match self {
            EpochPhase::Profile => "profile",
            EpochPhase::Reused => "reused",
            EpochPhase::Probe => "probe",
            EpochPhase::Tuned => "tuned",
            EpochPhase::Fixed => "fixed",
            EpochPhase::Cached => "cached",
        }
    }
}

/// Per-phase epoch counter name (see [`crate::observe`]).
fn phase_counter(phase: EpochPhase) -> &'static str {
    match phase {
        EpochPhase::Profile => observe::EPOCHS_PROFILE,
        EpochPhase::Probe => observe::EPOCHS_PROBE,
        EpochPhase::Tuned | EpochPhase::Reused => observe::EPOCHS_TUNED,
        EpochPhase::Fixed => observe::EPOCHS_FIXED,
        // Cached epochs never execute, so they never reach the per-epoch
        // recording path; they are counted in EPOCHS_CACHED at adoption.
        EpochPhase::Cached => observe::EPOCHS_CACHED,
    }
}

/// One executed epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// 1-based epoch index within the trial.
    pub epoch: u32,
    /// System configuration the epoch ran with.
    pub system: SystemConfig,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Energy attributed to the trial, joules.
    pub energy_j: f64,
    /// Training score after the epoch.
    pub train_score: f32,
    /// Pipeline phase.
    pub phase: EpochPhase,
}

/// The per-trial system-parameter policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SystemTuner {
    /// Run every epoch with one fixed configuration (Tune V1/V2, Arbitrary).
    Fixed(SystemConfig),
    /// PipeTune's pipelined tuning (profile → ground truth → probe).
    ///
    /// Probing is coordinate-wise, matching Algorithm 1's `O(n)` complexity
    /// claim ("n is the number of distinct system parameters considered"):
    /// first one epoch per candidate core count (at the default memory),
    /// then one epoch per candidate memory size (at the best core count).
    Pipelined {
        /// What probing minimises.
        goal: ProbeGoal,
        /// Configurations still to probe in the current sweep.
        probe_queue: Vec<SystemConfig>,
        /// Which sweep the prober is in.
        probe_phase: ProbePhase,
        /// Probe measurements: `(config, cost)`.
        probe_results: Vec<(SystemConfig, f64)>,
        /// First-epoch profile features (set after the profile epoch).
        features: Option<Vec<f64>>,
        /// Configuration in force once decided.
        chosen: Option<SystemConfig>,
    },
}

/// Coordinate-probing progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbePhase {
    /// Sweeping candidate core counts at the default memory size.
    Cores,
    /// Sweeping candidate memory sizes at the best core count found.
    Memory,
    /// Sweeping candidate CPU frequencies at the best cores+memory (only
    /// when the system space enables DVFS — the paper's frequency
    /// extension, §7.1.4).
    Freq,
}

impl SystemTuner {
    /// A fresh pipelined tuner.
    pub fn pipelined(goal: ProbeGoal) -> Self {
        SystemTuner::Pipelined {
            goal,
            probe_queue: Vec::new(),
            probe_phase: ProbePhase::Cores,
            probe_results: Vec::new(),
            features: None,
            chosen: None,
        }
    }

    /// The configuration the tuner settled on, if any.
    pub fn chosen(&self) -> Option<SystemConfig> {
        match self {
            SystemTuner::Fixed(c) => Some(*c),
            SystemTuner::Pipelined { chosen, .. } => *chosen,
        }
    }
}

/// An epoch-boundary checkpoint of one trial: model/optimizer state (the
/// workload clone carries both), the tuning-policy state, the accumulated
/// [`EpochRecord`]s and accounting, and the trial's private RNG stream.
///
/// Restoring a checkpoint and re-running produces byte-identical results to
/// the first run — the property crash recovery leans on to keep faulty runs
/// inside the replay contract.
#[derive(Debug, Clone)]
pub struct TrialCheckpoint {
    workload: WorkloadInstance,
    tuner: SystemTuner,
    records: Vec<EpochRecord>,
    total_secs: f64,
    total_energy_j: f64,
    rng: StdRng,
}

impl TrialCheckpoint {
    /// Epochs the checkpointed workload had completed.
    pub fn epochs_run(&self) -> u32 {
        self.workload.epochs_run()
    }
}

/// A trial in flight: workload + tuning policy + accounting.
#[derive(Debug)]
pub struct TrialExecution {
    workload: WorkloadInstance,
    tuner: SystemTuner,
    records: Vec<EpochRecord>,
    total_secs: f64,
    total_energy_j: f64,
    trial_id: u64,
    faults: FaultReport,
    telemetry: TelemetryBuffer,
    cache_saved_secs: f64,
    cache_saved_energy_j: f64,
}

impl TrialExecution {
    /// Wraps a freshly instantiated workload with a policy.
    pub fn new(workload: WorkloadInstance, tuner: SystemTuner) -> Self {
        TrialExecution {
            workload,
            tuner,
            records: Vec::new(),
            total_secs: 0.0,
            total_energy_j: 0.0,
            trial_id: 0,
            faults: FaultReport::default(),
            telemetry: TelemetryBuffer::disabled(),
            cache_saved_secs: 0.0,
            cache_saved_energy_j: 0.0,
        }
    }

    /// Tags the execution with its scheduler trial id. Fault decisions are
    /// keyed on this id, so the executor must set it before running epochs
    /// under a non-empty [`pipetune_cluster::FaultPlan`].
    #[must_use]
    pub fn with_trial_id(mut self, id: u64) -> Self {
        self.trial_id = id;
        self
    }

    /// The scheduler trial id fault decisions are keyed on.
    pub fn trial_id(&self) -> u64 {
        self.trial_id
    }

    /// Fault-tolerance accounting accumulated so far.
    pub fn fault_report(&self) -> FaultReport {
        self.faults
    }

    /// The worker-local telemetry buffer. The executor's coordinator drains
    /// it into the run's [`pipetune_telemetry::TelemetryHandle`] in
    /// scheduler request order after every rung (see `docs/telemetry.md`).
    pub fn telemetry_mut(&mut self) -> &mut TelemetryBuffer {
        &mut self.telemetry
    }

    /// Snapshots the full trial state (model, optimizer, tuner, records,
    /// accounting, RNG stream) at the current epoch boundary.
    pub fn checkpoint(&self, rng: &StdRng) -> TrialCheckpoint {
        TrialCheckpoint {
            workload: self.workload.clone(),
            tuner: self.tuner.clone(),
            records: self.records.clone(),
            total_secs: self.total_secs,
            total_energy_j: self.total_energy_j,
            rng: rng.clone(),
        }
    }

    /// Rolls the trial (and its RNG stream) back to `ckpt`. Fault counters
    /// and the telemetry buffer are deliberately *not* rolled back —
    /// recovery accounting must survive the state restore it causes (doomed
    /// epoch attempts are instead recorded under a suppression window, see
    /// [`TelemetryBuffer::set_suppressed`]).
    pub fn restore(&mut self, ckpt: TrialCheckpoint, rng: &mut StdRng) {
        self.workload = ckpt.workload;
        self.tuner = ckpt.tuner;
        self.records = ckpt.records;
        self.total_secs = ckpt.total_secs;
        self.total_energy_j = ckpt.total_energy_j;
        *rng = ckpt.rng;
    }

    /// The live workload.
    pub fn workload_mut(&mut self) -> &mut WorkloadInstance {
        &mut self.workload
    }

    /// The live workload (shared).
    pub fn workload(&self) -> &WorkloadInstance {
        &self.workload
    }

    /// The tuning policy.
    pub fn tuner(&self) -> &SystemTuner {
        &self.tuner
    }

    /// Executed epoch log.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Accumulated simulated duration, seconds.
    pub fn duration_secs(&self) -> f64 {
        self.total_secs
    }

    /// Accumulated trial energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.total_energy_j
    }

    /// Simulated epoch time the epoch-reuse cache saved this trial (zero
    /// unless a cached prefix was adopted).
    pub fn cache_saved_secs(&self) -> f64 {
        self.cache_saved_secs
    }

    /// Energy analogue of [`TrialExecution::cache_saved_secs`].
    pub fn cache_saved_energy_j(&self) -> f64 {
        self.cache_saved_energy_j
    }

    /// Builds a trial directly from an adopted epoch-reuse-cache prefix:
    /// the trial's workload, tuner, RNG stream and epoch log are the
    /// donor's, with the prefix's epochs charged at reload cost. Emits the
    /// cached epoch spans, the `EPOCHS_CACHED` counter and a hit
    /// `cache_lookup` event on the trial buffer (cached epochs never touch
    /// `EPOCHS_TOTAL`, the epoch-duration histogram or the energy meter —
    /// they did not execute).
    pub(crate) fn from_cached_prefix(
        env: &ExperimentEnv,
        prefix: crate::cache::CachedPrefix,
        trial_id: u64,
        rng: &mut StdRng,
    ) -> Self {
        let crate::cache::CachedPrefix {
            key,
            workload,
            tuner,
            rng: prefix_rng,
            records,
            saved_secs,
            saved_energy_j,
        } = prefix;
        let mut exec = TrialExecution::new(workload, tuner).with_trial_id(trial_id);
        *rng = prefix_rng;
        exec.cache_saved_secs = saved_secs;
        exec.cache_saved_energy_j = saved_energy_j;
        for r in &records {
            exec.total_secs += r.duration_secs;
            exec.total_energy_j += r.energy_j;
        }
        if env.telemetry.is_enabled() {
            exec.telemetry.enable();
            let mut at = 0.0;
            for r in &records {
                at += r.duration_secs;
                exec.telemetry.push_span(
                    SpanKind::Epoch,
                    format!("epoch {} (cached)", r.epoch),
                    None,
                    at - r.duration_secs,
                    at,
                    vec![
                        ("epoch", r.epoch.into()),
                        ("phase", EpochPhase::Cached.name().into()),
                        ("cores", r.system.cores.into()),
                        ("memory_gb", r.system.memory_gb.into()),
                        ("freq_mhz", r.system.freq_mhz.into()),
                        ("energy_j", r.energy_j.into()),
                        ("train_score", r.train_score.into()),
                    ],
                );
            }
            let adopted = records.len() as u64;
            exec.telemetry.with_metrics(|m| {
                m.counter_add(observe::EPOCHS_CACHED, adopted);
            });
            exec.telemetry.push_event(
                EventKind::CacheLookup,
                None,
                exec.total_secs,
                vec![
                    ("hit", true.into()),
                    ("epochs", key.epochs.into()),
                    ("saved_secs", saved_secs.into()),
                ],
            );
        }
        exec.records = records;
        exec
    }

    /// Records a miss `cache_lookup` event on the trial buffer (fresh
    /// trial consulted the epoch-reuse cache and found no usable prefix).
    pub(crate) fn note_cache_miss(&mut self, env: &ExperimentEnv) {
        if env.telemetry.is_enabled() {
            self.telemetry.enable();
            self.telemetry.push_event(
                EventKind::CacheLookup,
                None,
                self.total_secs,
                vec![("hit", false.into())],
            );
        }
    }

    /// Current held-out accuracy.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    pub fn accuracy(&mut self) -> Result<f32, PipeTuneError> {
        self.workload.accuracy()
    }

    /// The system configuration a *final* training run would use: the tuned
    /// choice when decided, otherwise the environment default.
    pub fn final_system(&self, env: &ExperimentEnv) -> SystemConfig {
        self.tuner.chosen().unwrap_or(env.default_system)
    }

    /// Simulated duration of re-training the final model for `epochs` under
    /// the trial's final configuration (Table 2's "training time").
    pub fn training_time_secs(&self, env: &ExperimentEnv, epochs: u32) -> f64 {
        let work = self.workload.work_units();
        let sys = self.final_system(env);
        env.cost.epoch_duration(&work, &sys, 1.0) * f64::from(epochs)
    }

    /// Runs `epochs` additional epochs under the policy, recovering from
    /// any faults [`ExperimentEnv::fault_plan`] injects.
    ///
    /// For the pipelined policy, `ground_truth` supplies history sharing
    /// across trials and jobs — pass a `&mut GroundTruth` directly for
    /// immediate-mutation sequential semantics, or a
    /// [`crate::GtSession`] when many trials run concurrently; pass `None`
    /// to disable reuse (ablation).
    ///
    /// Fault recovery (all decisions pure functions of
    /// `(trial id, fault plan)`, so results replay byte-identically for any
    /// worker count; under the empty plan this path is bypassed entirely):
    ///
    /// * **node crash** — the attempt really runs against an epoch-boundary
    ///   [`TrialCheckpoint`] and is rolled back (mid-epoch crash semantics:
    ///   partial work wasted, model/RNG state restored), then retried after
    ///   exponential backoff in simulated time, up to
    ///   [`pipetune_cluster::RetryPolicy::max_attempts`];
    /// * **straggler** — the epoch completes at `slowdown ×` its nominal
    ///   duration; training output is untouched;
    /// * **counter read** — training proceeds but the epoch's profile/probe
    ///   measurement is lost: a lost profile re-profiles next epoch, a lost
    ///   probe leaves the argmin to the surviving tuples (re-probing from
    ///   scratch only if *every* tuple was lost);
    /// * **preemption** — the trial resumes after a deterministic
    ///   suspension; no work is lost.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures; ground-truth persistence failures.
    /// Returns [`PipeTuneError::RetriesExhausted`] when one epoch crashes
    /// more times than the retry budget allows.
    pub fn run_epochs(
        &mut self,
        env: &ExperimentEnv,
        epochs: u32,
        mut ground_truth: Option<&mut dyn GroundTruthAccess>,
        contention: f64,
        rng: &mut StdRng,
    ) -> Result<(), PipeTuneError> {
        if env.telemetry.is_enabled() {
            self.telemetry.enable();
        }
        if env.fault_plan.is_empty() {
            // Fault-free fast path: zero extra arithmetic, zero extra RNG
            // traffic — bit-identical to builds without fault injection.
            for _ in 0..epochs {
                self.run_one_epoch(env, &mut ground_truth, contention, rng, 1.0, false)?;
            }
            return Ok(());
        }
        for _ in 0..epochs {
            let epoch_idx = self.workload.epochs_run() + 1;
            let mut attempt = 0u32;
            loop {
                let fault = env.fault_plan.at_epoch(self.trial_id, epoch_idx, attempt);
                if let Some(FaultKind::NodeCrash { wasted_fraction }) = fault {
                    self.faults.injected += 1;
                    self.faults.crashes += 1;
                    // Run the attempt for real against a checkpoint, then
                    // roll back: the node died `wasted_fraction` of the way
                    // through, its partial work and energy are lost, and
                    // model/optimizer/RNG state rewinds to the epoch
                    // boundary.
                    let ckpt = self.checkpoint(rng);
                    if self.telemetry.is_active() {
                        self.telemetry.push_event(
                            EventKind::Checkpoint,
                            None,
                            self.total_secs,
                            vec![("epoch", epoch_idx.into()), ("attempt", attempt.into())],
                        );
                    }
                    // The doomed attempt must not appear in the trace: only
                    // committed epochs, plus the explicit fault/retry events
                    // below.
                    self.telemetry.set_suppressed(true);
                    let doomed = self.run_one_epoch(env, &mut None, contention, rng, 1.0, false);
                    self.telemetry.set_suppressed(false);
                    doomed?;
                    let attempt_secs = self.total_secs - ckpt.total_secs;
                    let attempt_energy = self.total_energy_j - ckpt.total_energy_j;
                    self.restore(ckpt, rng);
                    let wasted = attempt_secs * wasted_fraction;
                    let backoff = env.retry.backoff_secs(attempt);
                    self.total_secs += wasted + backoff;
                    self.total_energy_j += attempt_energy * wasted_fraction;
                    self.faults.wasted_epoch_secs += wasted;
                    self.faults.recovery_overhead_secs += backoff;
                    if self.telemetry.is_active() {
                        let mut attrs = pipetune_cluster::observe::fault_attrs(
                            &FaultKind::NodeCrash { wasted_fraction },
                        );
                        attrs.push(("epoch", epoch_idx.into()));
                        attrs.push(("attempt", attempt.into()));
                        attrs.push(("wasted_secs", wasted.into()));
                        attrs.push(("backoff_secs", backoff.into()));
                        self.telemetry.push_event(
                            EventKind::Fault,
                            None,
                            self.total_secs,
                            attrs,
                        );
                    }
                    attempt += 1;
                    if attempt >= env.retry.max_attempts.max(1) {
                        self.faults.abandoned += 1;
                        if self.telemetry.is_active() {
                            self.telemetry.push_event(
                                EventKind::Retry,
                                None,
                                self.total_secs,
                                vec![("epoch", epoch_idx.into()), ("abandoned", true.into())],
                            );
                        }
                        return Err(PipeTuneError::RetriesExhausted {
                            trial_id: self.trial_id,
                            attempts: attempt,
                        });
                    }
                    self.faults.retried += 1;
                    if self.telemetry.is_active() {
                        self.telemetry.push_event(
                            EventKind::Retry,
                            None,
                            self.total_secs,
                            vec![("epoch", epoch_idx.into()), ("attempt", attempt.into())],
                        );
                    }
                    continue;
                }
                // Non-crash faults complete the epoch in one attempt.
                let (slowdown, counter_fault) = match fault {
                    Some(FaultKind::Straggler { slowdown }) => {
                        self.faults.injected += 1;
                        self.faults.stragglers += 1;
                        (slowdown.max(1.0), false)
                    }
                    Some(FaultKind::CounterRead) => {
                        self.faults.injected += 1;
                        self.faults.counter_faults += 1;
                        if self.measurement_pending() {
                            // The lost profile/probe is re-collected on a
                            // later epoch.
                            self.faults.retried += 1;
                        }
                        (1.0, true)
                    }
                    Some(FaultKind::Preemption { suspend_secs }) => {
                        self.faults.injected += 1;
                        self.faults.preemptions += 1;
                        self.faults.recovery_overhead_secs += suspend_secs;
                        self.total_secs += suspend_secs;
                        (1.0, false)
                    }
                    _ => (1.0, false),
                };
                if let Some(kind) = fault.filter(|_| self.telemetry.is_active()) {
                    let mut attrs = pipetune_cluster::observe::fault_attrs(&kind);
                    attrs.push(("epoch", epoch_idx.into()));
                    self.telemetry.push_event(EventKind::Fault, None, self.total_secs, attrs);
                }
                let before_secs = self.total_secs;
                self.run_one_epoch(
                    env,
                    &mut ground_truth,
                    contention,
                    rng,
                    slowdown,
                    counter_fault,
                )?;
                if slowdown > 1.0 {
                    let dur = self.total_secs - before_secs;
                    self.faults.wasted_epoch_secs += dur * (1.0 - 1.0 / slowdown);
                }
                if fault.is_some() || attempt > 0 {
                    // The epoch got through a fault (its own or earlier
                    // crashed attempts).
                    self.faults.recovered += 1;
                }
                break;
            }
        }
        Ok(())
    }

    /// `true` while the pipelined tuner still depends on counter readings
    /// (profiling or probing); a counter fault in this window loses a
    /// measurement that must be re-collected.
    fn measurement_pending(&self) -> bool {
        match &self.tuner {
            SystemTuner::Fixed(_) => false,
            SystemTuner::Pipelined { chosen, .. } => chosen.is_none(),
        }
    }

    /// Executes exactly one epoch under the policy (no fault handling —
    /// `slowdown` and `counter_fault` are the already-decided fault inputs;
    /// `1.0` / `false` mean a clean epoch).
    fn run_one_epoch(
        &mut self,
        env: &ExperimentEnv,
        ground_truth: &mut Option<&mut dyn GroundTruthAccess>,
        contention: f64,
        rng: &mut StdRng,
        slowdown: f64,
        counter_fault: bool,
    ) -> Result<(), PipeTuneError> {
        {
            let epoch_idx = self.workload.epochs_run() + 1;
            let work = self.workload.work_units();
            // Decide this epoch's system configuration and phase.
            let (sys, phase) = match &mut self.tuner {
                SystemTuner::Fixed(c) => (*c, EpochPhase::Fixed),
                SystemTuner::Pipelined { probe_queue, chosen, features, .. } => {
                    if let Some(c) = chosen {
                        (*c, EpochPhase::Tuned)
                    } else if features.is_none() {
                        (env.default_system, EpochPhase::Profile)
                    } else if let Some(c) = probe_queue.pop() {
                        (c, EpochPhase::Probe)
                    } else {
                        // Probing exhausted but nothing chosen yet (should
                        // not happen; defensive default).
                        (env.default_system, EpochPhase::Profile)
                    }
                }
            };

            // Real training work.
            let outcome = self.workload.run_epoch()?;
            // Simulated time & energy at paper scale.
            let mut duration = env.cost.epoch_duration(&work, &sys, contention);
            if matches!(phase, EpochPhase::Profile) {
                duration *= 1.0 + env.profile_overhead.max(0.0);
            }
            if slowdown > 1.0 {
                // Straggler epoch: the node is slow, the work is not lost.
                duration *= slowdown;
            }
            let energy = env.trial_power(&sys) * duration;
            self.total_secs += duration;
            self.total_energy_j += energy;
            self.records.push(EpochRecord {
                epoch: epoch_idx,
                system: sys,
                duration_secs: duration,
                energy_j: energy,
                train_score: outcome.train_score,
                phase,
            });
            // Epoch span on the trial-cumulative simulated clock; the
            // executor re-bases nothing — trial/epoch spans are documented
            // to use trial time, rung/batch spans wall-clock time.
            let epoch_span = if self.telemetry.is_active() {
                let span = self.telemetry.push_span(
                    SpanKind::Epoch,
                    format!("epoch {epoch_idx} ({})", phase.name()),
                    None,
                    self.total_secs - duration,
                    self.total_secs,
                    vec![
                        ("epoch", epoch_idx.into()),
                        ("phase", phase.name().into()),
                        ("cores", sys.cores.into()),
                        ("memory_gb", sys.memory_gb.into()),
                        ("freq_mhz", sys.freq_mhz.into()),
                        ("energy_j", energy.into()),
                        ("train_score", outcome.train_score.into()),
                    ],
                );
                let watts = env.trial_power(&sys);
                self.telemetry.with_metrics(|m| {
                    m.observe(observe::EPOCH_SECS, DURATION_BUCKETS_SECS, duration);
                    m.counter_add(observe::EPOCHS_TOTAL, 1);
                    m.counter_add(phase_counter(phase), 1);
                    pipetune_energy::observe::record_epoch_energy(watts, energy, m);
                });
                Some(span)
            } else {
                None
            };

            // Pipelined post-epoch bookkeeping.
            if let SystemTuner::Pipelined {
                goal,
                probe_queue,
                probe_phase,
                probe_results,
                features,
                chosen,
            } = &mut self.tuner
            {
                if chosen.is_none() {
                    if features.is_none() {
                        // Profile epoch just finished: read the counters —
                        // fallibly, because a transient counter fault loses
                        // the measurement — and consult the ground truth.
                        let sig = self.workload.signature();
                        let profile = if env.sampled_profiling {
                            // Full 1 Hz pipeline: short epochs leave blind
                            // spots (events never scheduled read as zero).
                            env.profiler
                                .try_sample_epoch(&sig, sys.cores, duration, rng, epoch_idx, counter_fault)
                                .map(|trace| trace.scale_to_epoch())
                        } else {
                            env.profiler
                                .try_profile_epoch(&sig, sys.cores, duration, rng, epoch_idx, counter_fault)
                        };
                        if self.telemetry.is_active() {
                            self.telemetry.push_event(
                                EventKind::Profile,
                                epoch_span,
                                self.total_secs,
                                vec![
                                    ("epoch", epoch_idx.into()),
                                    ("lost", profile.is_err().into()),
                                ],
                            );
                            if profile.is_err() {
                                self.telemetry
                                    .with_metrics(pipetune_perfmon::observe::record_lost_read);
                            }
                        }
                        if let Ok(profile) = profile {
                            if self.telemetry.is_active() {
                                self.telemetry.with_metrics(|m| {
                                    pipetune_perfmon::observe::record_profile(&profile, m);
                                });
                            }
                            let feats = profile.features();
                            if let Some(gt) = ground_truth.as_deref_mut() {
                                if let Some(cfg) = gt.lookup(&feats) {
                                    *chosen = Some(cfg);
                                }
                                if self.telemetry.is_active() {
                                    self.telemetry.push_event(
                                        EventKind::GtLookup,
                                        epoch_span,
                                        self.total_secs,
                                        vec![
                                            ("epoch", epoch_idx.into()),
                                            ("hit", chosen.is_some().into()),
                                        ],
                                    );
                                }
                            }
                            if chosen.is_none() {
                                // Miss: schedule the cores sweep (reversed so
                                // `pop` walks it in order).
                                let mem = env.default_system.memory_gb;
                                *probe_phase = ProbePhase::Cores;
                                *probe_queue = env
                                    .system_space
                                    .cores
                                    .iter()
                                    .rev()
                                    .map(|&c| SystemConfig::new(c, mem))
                                    .collect();
                            }
                            *features = Some(feats);
                        }
                        // On a lost read: features stay unset, so the next
                        // epoch re-profiles (the fault accounting happens in
                        // the recovery loop).
                    } else if matches!(phase, EpochPhase::Probe) {
                        if self.telemetry.is_active() {
                            let mut attrs = vec![
                                ("epoch", epoch_idx.into()),
                                ("cores", sys.cores.into()),
                                ("memory_gb", sys.memory_gb.into()),
                                ("freq_mhz", sys.freq_mhz.into()),
                                ("lost", counter_fault.into()),
                            ];
                            if !counter_fault {
                                attrs.push(("cost", goal.cost(duration, energy).into()));
                                self.telemetry.with_metrics(|m| {
                                    m.counter_add(observe::PROBE_COUNT, 1);
                                });
                            }
                            self.telemetry.push_event(
                                EventKind::Probe,
                                epoch_span,
                                self.total_secs,
                                attrs,
                            );
                        }
                        if !counter_fault {
                            probe_results.push((sys, goal.cost(duration, energy)));
                        }
                        if probe_queue.is_empty() {
                            let best = probe_results
                                .iter()
                                .min_by(|a, b| {
                                    a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
                                })
                                .map(|&(cfg, cost)| (cfg, cost));
                            match (*probe_phase, best) {
                                (ProbePhase::Cores, Some((best_cfg, _))) => {
                                    // Cores sweep done: sweep memory at the
                                    // best core count (skipping the already
                                    // measured default memory).
                                    *probe_phase = ProbePhase::Memory;
                                    *probe_queue = env
                                        .system_space
                                        .memory_gb
                                        .iter()
                                        .rev()
                                        .filter(|&&m| m != env.default_system.memory_gb)
                                        .map(|&m| SystemConfig {
                                            memory_gb: m,
                                            ..best_cfg
                                        })
                                        .collect();
                                    if probe_queue.is_empty() {
                                        // Degenerate one-memory space: the
                                        // cores sweep was the whole search.
                                        *chosen = Some(best_cfg);
                                        if let (Some(gt), Some(feats)) =
                                            (ground_truth.as_deref_mut(), features.as_ref())
                                        {
                                            let cost = best.expect("non-empty results").1;
                                            gt.record(
                                                self.workload.spec().name(),
                                                feats,
                                                best_cfg,
                                                cost,
                                            )?;
                                        }
                                    }
                                }
                                (ProbePhase::Memory, Some((best_cfg, cost))) => {
                                    // Frequency sweep only when DVFS is on
                                    // (more than the nominal entry).
                                    let freqs: Vec<u32> = env
                                        .system_space
                                        .freq_mhz
                                        .iter()
                                        .rev()
                                        .copied()
                                        .filter(|&f| f != best_cfg.freq_mhz)
                                        .collect();
                                    if freqs.is_empty() {
                                        // Probing complete: apply argmin,
                                        // persist.
                                        *chosen = Some(best_cfg);
                                        if let (Some(gt), Some(feats)) =
                                            (ground_truth.as_deref_mut(), features.as_ref())
                                        {
                                            gt.record(
                                                self.workload.spec().name(),
                                                feats,
                                                best_cfg,
                                                cost,
                                            )?;
                                        }
                                    } else {
                                        *probe_phase = ProbePhase::Freq;
                                        *probe_queue = freqs
                                            .into_iter()
                                            .map(|f| SystemConfig {
                                                freq_mhz: f,
                                                ..best_cfg
                                            })
                                            .collect();
                                    }
                                }
                                (ProbePhase::Freq, Some((best_cfg, cost))) => {
                                    *chosen = Some(best_cfg);
                                    if let (Some(gt), Some(feats)) =
                                        (ground_truth.as_deref_mut(), features.as_ref())
                                    {
                                        gt.record(
                                            self.workload.spec().name(),
                                            feats,
                                            best_cfg,
                                            cost,
                                        )?;
                                    }
                                }
                                (_, None) => {
                                    // Every probed tuple was lost to
                                    // counter faults: re-probe the cores
                                    // sweep from scratch (the paper's
                                    // argmin needs at least one survivor).
                                    let mem = env.default_system.memory_gb;
                                    *probe_phase = ProbePhase::Cores;
                                    *probe_queue = env
                                        .system_space
                                        .cores
                                        .iter()
                                        .rev()
                                        .map(|&c| SystemConfig::new(c, mem))
                                        .collect();
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroundTruth, HyperParams, WorkloadSpec};
    use rand::SeedableRng;

    fn env() -> ExperimentEnv {
        ExperimentEnv::distributed(5)
    }

    fn hp(batch: usize) -> HyperParams {
        HyperParams { batch_size: batch, learning_rate: 0.02, epochs: 20, ..HyperParams::default() }
    }

    fn make_trial(batch: usize, tuner: SystemTuner) -> TrialExecution {
        let w = WorkloadSpec::lenet_mnist()
            .with_scale(0.2)
            .instantiate(&hp(batch), 3)
            .unwrap();
        TrialExecution::new(w, tuner)
    }

    #[test]
    fn fixed_policy_never_changes_configuration() {
        let e = env();
        let cfg = SystemConfig::new(8, 16);
        let mut t = make_trial(256, SystemTuner::Fixed(cfg));
        let mut rng = StdRng::seed_from_u64(1);
        t.run_epochs(&e, 4, None, 1.0, &mut rng).unwrap();
        assert_eq!(t.records().len(), 4);
        assert!(t.records().iter().all(|r| r.system == cfg && r.phase == EpochPhase::Fixed));
        assert!(t.duration_secs() > 0.0);
        assert!(t.energy_j() > 0.0);
    }

    #[test]
    fn pipelined_probes_coordinates_then_settles_on_argmin() {
        let e = env();
        let mut gt = GroundTruth::paper_default(1);
        let mut t = make_trial(1024, SystemTuner::pipelined(ProbeGoal::Runtime));
        let mut rng = StdRng::seed_from_u64(2);
        // Coordinate probing: |cores| + |memory| − 1 epochs (Algorithm 1's
        // O(n) over distinct parameter values).
        let probes = (e.system_space.cores.len() + e.system_space.memory_gb.len() - 1) as u32;
        t.run_epochs(&e, 1 + probes + 3, Some(&mut gt), 1.0, &mut rng).unwrap();
        let phases: Vec<EpochPhase> = t.records().iter().map(|r| r.phase).collect();
        assert_eq!(phases[0], EpochPhase::Profile);
        assert!(phases[1..=probes as usize].iter().all(|p| *p == EpochPhase::Probe));
        assert!(phases[probes as usize + 1..].iter().all(|p| *p == EpochPhase::Tuned));
        // Chosen config is the fastest probed one.
        let chosen = t.tuner().chosen().unwrap();
        let probed: Vec<(SystemConfig, f64)> = t
            .records()
            .iter()
            .filter(|r| r.phase == EpochPhase::Probe)
            .map(|r| (r.system, r.duration_secs))
            .collect();
        let best = probed
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(chosen, best);
        // And the probe result was recorded for future jobs.
        assert_eq!(gt.stats().recorded, 1);
    }

    #[test]
    fn ground_truth_hit_skips_probing() {
        let e = env();
        let mut gt = GroundTruth::paper_default(1);
        let mut rng = StdRng::seed_from_u64(3);
        // Jobs 1..6 probe and populate the ground truth (two families so the
        // k=2 fit is meaningful; three records per family so the variance
        // estimate gating confidence is not razor-thin against profile noise).
        for seed in 0..6 {
            let spec = if seed % 2 == 0 {
                WorkloadSpec::lenet_mnist()
            } else {
                WorkloadSpec::lstm_news20()
            };
            let w = spec.with_scale(0.2).instantiate(&hp(256), seed).unwrap();
            let mut t = TrialExecution::new(w, SystemTuner::pipelined(ProbeGoal::Runtime));
            let probes = (e.system_space.cores.len() + e.system_space.memory_gb.len() - 1) as u32;
            t.run_epochs(&e, 1 + probes, Some(&mut gt), 1.0, &mut rng)
                .unwrap();
        }
        // Job 5: same family → should reuse without probing.
        let mut t = make_trial(256, SystemTuner::pipelined(ProbeGoal::Runtime));
        t.run_epochs(&e, 4, Some(&mut gt), 1.0, &mut rng).unwrap();
        let phases: Vec<EpochPhase> = t.records().iter().map(|r| r.phase).collect();
        assert_eq!(phases[0], EpochPhase::Profile);
        assert!(
            phases[1..].iter().all(|p| *p == EpochPhase::Tuned),
            "expected reuse, got {phases:?}"
        );
        assert!(gt.stats().hits >= 1);
    }

    #[test]
    fn tuned_trials_run_faster_than_default_for_large_batches() {
        // Large batches want many cores; the default 4c/4GB is slow. After
        // probing, tuned epochs must beat default-config epochs.
        let e = env();
        let mut gt = GroundTruth::paper_default(1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = make_trial(1024, SystemTuner::pipelined(ProbeGoal::Runtime));
        let probes = (e.system_space.cores.len() + e.system_space.memory_gb.len() - 1) as u32;
        t.run_epochs(&e, 1 + probes + 2, Some(&mut gt), 1.0, &mut rng)
            .unwrap();
        let profile_dur = t.records()[0].duration_secs;
        let tuned_dur = t.records().last().unwrap().duration_secs;
        assert!(
            tuned_dur < profile_dur,
            "tuned {tuned_dur:.1}s should beat default {profile_dur:.1}s"
        );
    }

    #[test]
    fn training_time_uses_final_configuration() {
        let e = env();
        let t_default = make_trial(1024, SystemTuner::Fixed(e.default_system));
        let t_big = make_trial(1024, SystemTuner::Fixed(SystemConfig::new(16, 32)));
        let tt_default = t_default.training_time_secs(&e, 10);
        let tt_big = t_big.training_time_secs(&e, 10);
        assert!(tt_big < tt_default);
    }

    #[test]
    fn checkpoint_restore_replays_byte_identically() {
        let e = env();
        let mut t = make_trial(256, SystemTuner::pipelined(ProbeGoal::Runtime));
        let mut rng = StdRng::seed_from_u64(7);
        t.run_epochs(&e, 3, None, 1.0, &mut rng).unwrap();
        let ckpt = t.checkpoint(&rng);
        t.run_epochs(&e, 4, None, 1.0, &mut rng).unwrap();
        let records_first: Vec<EpochRecord> = t.records().to_vec();
        let secs_first = t.duration_secs();
        let acc_first = t.accuracy().unwrap();
        // Roll back and rerun: the restored RNG stream must reproduce every
        // stochastic draw, so the replay is byte-identical.
        t.restore(ckpt, &mut rng);
        assert_eq!(t.records().len(), 3);
        t.run_epochs(&e, 4, None, 1.0, &mut rng).unwrap();
        assert_eq!(t.records(), records_first.as_slice());
        assert_eq!(t.duration_secs().to_bits(), secs_first.to_bits());
        assert_eq!(t.accuracy().unwrap().to_bits(), acc_first.to_bits());
    }

    #[test]
    fn crash_every_epoch_exhausts_the_retry_budget() {
        let e = env().with_fault_plan(pipetune_cluster::FaultPlan::crashes(99, 1.0));
        let mut t = make_trial(256, SystemTuner::Fixed(e.default_system)).with_trial_id(4);
        let mut rng = StdRng::seed_from_u64(8);
        let err = t.run_epochs(&e, 5, None, 1.0, &mut rng).unwrap_err();
        match err {
            PipeTuneError::RetriesExhausted { trial_id, attempts } => {
                assert_eq!(trial_id, 4);
                assert_eq!(attempts, e.retry.max_attempts);
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        let report = t.fault_report();
        assert_eq!(report.abandoned, 1);
        assert_eq!(report.crashes, u64::from(e.retry.max_attempts));
        assert_eq!(report.retried, u64::from(e.retry.max_attempts) - 1);
        assert!(report.wasted_epoch_secs > 0.0);
        assert!(report.recovery_overhead_secs > 0.0);
        // No epoch ever committed.
        assert!(t.records().is_empty());
    }

    #[test]
    fn recovered_crash_leaves_training_state_equal_to_fault_free_run() {
        // Crash probability low enough that the retry budget absorbs every
        // crash: the run completes, and because crashed attempts roll back
        // model + RNG state, the surviving epochs are bit-equal to a
        // fault-free run — only the clock and the fault report differ.
        let plan = pipetune_cluster::FaultPlan::crashes(17, 0.3);
        let clean_env = env();
        let faulty_env = env().with_fault_plan(plan);
        let run = |e: &ExperimentEnv| {
            let mut t = make_trial(256, SystemTuner::Fixed(e.default_system)).with_trial_id(2);
            let mut rng = StdRng::seed_from_u64(9);
            t.run_epochs(e, 8, None, 1.0, &mut rng).unwrap();
            t
        };
        let mut clean = run(&clean_env);
        let mut faulty = run(&faulty_env);
        assert!(faulty.fault_report().crashes > 0, "plan should inject at least one crash");
        assert!(faulty.fault_report().recovered > 0);
        assert_eq!(faulty.records().len(), clean.records().len());
        assert_eq!(
            faulty.accuracy().unwrap().to_bits(),
            clean.accuracy().unwrap().to_bits(),
            "crash recovery must not perturb training"
        );
        assert!(faulty.duration_secs() > clean.duration_secs(), "faults cost simulated time");
    }
}
