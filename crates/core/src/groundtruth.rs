//! The ground-truth phase (§5.4–§5.6): historical profiles → known-best
//! system configurations.

use std::collections::HashMap;
use std::path::Path;

use pipetune_cluster::SystemConfig;
use pipetune_clustering::{
    Dbscan, DbscanSimilarity, KMeans, KMeansSimilarity, Similarity, SimilarityVerdict,
};
use pipetune_tsdb::{Database, Point, Query};
use serde::{Deserialize, Serialize};

use crate::PipeTuneError;

/// Which similarity function the ground truth fits (§5.4: "our design
/// allows the similarity function to be pluggable").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimilarityKind {
    /// k-means with `k` clusters and a variance-based confidence threshold
    /// (the paper's default, k = 2).
    KMeans {
        /// Number of clusters.
        k: usize,
    },
    /// DBSCAN with a data-driven radius: `eps = eps_factor ×` the median
    /// nearest-neighbour distance of the history.
    Dbscan {
        /// Minimum neighbours for a core point.
        min_points: usize,
        /// Multiplier on the median nearest-neighbour distance.
        eps_factor: f64,
    },
}

impl Default for SimilarityKind {
    fn default() -> Self {
        SimilarityKind::KMeans { k: 2 }
    }
}

/// A fitted similarity function (enum dispatch keeps `GroundTruth: Debug`).
#[derive(Debug, Clone)]
enum FittedSimilarity {
    KMeans(KMeansSimilarity),
    Dbscan(DbscanSimilarity),
}

impl FittedSimilarity {
    fn judge(&self, features: &[f64]) -> SimilarityVerdict {
        match self {
            FittedSimilarity::KMeans(s) => s.judge(features),
            FittedSimilarity::Dbscan(s) => s.judge(features),
        }
    }
}

/// Counters describing ground-truth behaviour over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroundTruthStats {
    /// Profiles recorded (one per probed trial).
    pub recorded: usize,
    /// Lookups that reused a known configuration.
    pub hits: usize,
    /// Lookups that fell through to probing.
    pub misses: usize,
    /// Re-clustering passes performed.
    pub refits: usize,
}

/// Historical profile store + similarity function + per-cluster best configs.
///
/// New HPT jobs ask [`GroundTruth::lookup`] with their first-epoch profile
/// features; a confident match returns the cluster's best known
/// [`SystemConfig`] immediately (Algorithm 1 lines 8–10). Probing outcomes
/// are fed back via [`GroundTruth::record`], and the k-means model is
/// re-fitted as history grows (§5.6's re-clustering).
#[derive(Debug)]
pub struct GroundTruth {
    db: Database,
    history: Vec<(Vec<f64>, SystemConfig, f64)>,
    kind: SimilarityKind,
    similarity: Option<FittedSimilarity>,
    labels: Vec<usize>,
    cluster_best: HashMap<usize, (SystemConfig, f64)>,
    threshold_factor: f64,
    k: usize,
    min_history: usize,
    records_since_fit: usize,
    refit_every: usize,
    seed: u64,
    stats: GroundTruthStats,
}

impl GroundTruth {
    /// Creates an empty ground truth with the paper's `k = 2` and a given
    /// similarity threshold factor.
    pub fn new(k: usize, threshold_factor: f64, seed: u64) -> Self {
        Self::with_similarity(SimilarityKind::KMeans { k }, threshold_factor, seed)
    }

    /// Creates a ground truth with an arbitrary similarity function.
    pub fn with_similarity(kind: SimilarityKind, threshold_factor: f64, seed: u64) -> Self {
        let k = match kind {
            SimilarityKind::KMeans { k } => k.max(1),
            SimilarityKind::Dbscan { min_points, .. } => min_points.max(1),
        };
        GroundTruth {
            db: Database::new(),
            history: Vec::new(),
            kind,
            similarity: None,
            labels: Vec::new(),
            cluster_best: HashMap::new(),
            threshold_factor,
            k,
            min_history: k * 2,
            records_since_fit: 0,
            refit_every: 4,
            seed,
            stats: GroundTruthStats::default(),
        }
    }

    /// The paper's configuration: k-means with k = 2. The paper does not
    /// publish its confidence threshold; 3× the unbiased within-cluster
    /// variance accepts typical members even when clusters are small (see
    /// the threshold-sensitivity ablation).
    pub fn paper_default(seed: u64) -> Self {
        Self::new(2, 3.0, seed)
    }

    /// Records a probed profile and its discovered best configuration (with
    /// the probe cost achieved), persisting to the metric store and
    /// re-clustering periodically.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError`] when persistence or re-clustering fails.
    pub fn record(
        &mut self,
        workload: &str,
        features: &[f64],
        best: SystemConfig,
        cost: f64,
    ) -> Result<(), PipeTuneError> {
        self.db.write(
            Point::new("ground_truth", self.history.len() as u64)
                .tag("workload", workload)
                .field_vec("feat", features)
                .field("cores", f64::from(best.cores))
                .field("memory_gb", f64::from(best.memory_gb))
                .field("cost", cost),
        )?;
        self.history.push((features.to_vec(), best, cost));
        self.stats.recorded += 1;
        self.records_since_fit += 1;
        if self.history.len() >= self.min_history
            && (self.similarity.is_none() || self.records_since_fit >= self.refit_every)
        {
            self.refit()?;
        }
        Ok(())
    }

    /// Re-fits the k-means model and per-cluster best configurations.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Clustering`] when fitting fails.
    pub fn refit(&mut self) -> Result<(), PipeTuneError> {
        if self.history.len() < self.k {
            return Ok(());
        }
        let data: Vec<Vec<f64>> = self.history.iter().map(|(f, _, _)| f.clone()).collect();
        match self.kind {
            SimilarityKind::KMeans { k } => {
                let model = KMeans::new(k.max(1)).fit(&data, self.seed)?;
                self.labels = model.labels().to_vec();
                self.similarity =
                    Some(FittedSimilarity::KMeans(KMeansSimilarity::new(model, self.threshold_factor)));
            }
            SimilarityKind::Dbscan { min_points, eps_factor } => {
                let eps = eps_factor.max(0.1) * median_nn_distance(&data);
                let model = Dbscan::new(eps, min_points.max(1)).fit(&data)?;
                // Noise records keep a sentinel label outside every cluster
                // so the nearest-record filter skips them.
                self.labels = model
                    .labels()
                    .iter()
                    .map(|l| l.cluster().unwrap_or(usize::MAX))
                    .collect();
                self.similarity = Some(FittedSimilarity::Dbscan(DbscanSimilarity::new(model)));
            }
        }
        self.cluster_best.clear();
        for ((_, cfg, cost), &label) in self.history.iter().zip(&self.labels) {
            let entry = self.cluster_best.entry(label).or_insert((*cfg, *cost));
            if *cost < entry.1 {
                *entry = (*cfg, *cost);
            }
        }
        self.records_since_fit = 0;
        self.stats.refits += 1;
        Ok(())
    }

    /// Looks up a new profile. The k-means verdict gates confidence
    /// (Algorithm 1 line 9); on a confident match the configuration of the
    /// *nearest historical record in that cluster* is returned. Nearest-
    /// record selection matters because the optimal system configuration
    /// depends on the trial's working set (Fig. 3b's batch-size crossover):
    /// a profile close to a stored large-batch probe gets that probe's
    /// many-core configuration, not a cluster-wide compromise.
    pub fn lookup(&mut self, features: &[f64]) -> Option<(SystemConfig, SimilarityVerdict)> {
        let found = self.peek(features);
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// [`GroundTruth::lookup`] without the stats side effect: safe to call
    /// concurrently from many executor threads against one shared snapshot.
    /// Callers that care about hit/miss accounting report the outcome later
    /// (see [`SharedGroundTruth::flush`]).
    pub fn peek(&self, features: &[f64]) -> Option<(SystemConfig, SimilarityVerdict)> {
        let sim = self.similarity.as_ref()?;
        let verdict = sim.judge(features);
        if verdict.confident {
            let nearest = self
                .history
                .iter()
                .zip(&self.labels)
                .filter(|(_, &l)| l == verdict.cluster)
                .map(|((f, cfg, _), _)| {
                    let d: f64 =
                        f.iter().zip(features).map(|(a, b)| (a - b) * (a - b)).sum();
                    (d, *cfg)
                })
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((_, cfg)) = nearest {
                return Some((cfg, verdict));
            }
        }
        None
    }

    /// Cluster assignment of a profile (used by the Fig. 8 experiment),
    /// or `None` before the first fit.
    pub fn cluster_of(&self, features: &[f64]) -> Option<usize> {
        self.similarity.as_ref().map(|s| s.judge(features).cluster)
    }

    /// Behaviour counters.
    pub fn stats(&self) -> GroundTruthStats {
        self.stats
    }

    /// The recorded feature vectors, in insertion order (k-selection and
    /// analysis tooling).
    pub fn feature_history(&self) -> Vec<Vec<f64>> {
        self.history.iter().map(|(f, _, _)| f.clone()).collect()
    }

    /// Number of recorded profiles.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Returns `true` when no profiles were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Persists the underlying metric store.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Tsdb`] on I/O failures.
    pub fn save(&self, path: &Path) -> Result<(), PipeTuneError> {
        Ok(self.db.save(path)?)
    }

    /// Rebuilds a ground truth from a persisted metric store (warm start).
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Tsdb`] on I/O or decode failures.
    pub fn load(path: &Path, k: usize, threshold_factor: f64, seed: u64) -> Result<Self, PipeTuneError> {
        let db = Database::load(path)?;
        let mut gt = GroundTruth::new(k, threshold_factor, seed);
        for p in db.query(&Query::measurement("ground_truth"))? {
            let features = p.field_vec_values("feat");
            let cfg = SystemConfig {
                cores: p.field_value("cores").unwrap_or(4.0) as u32,
                memory_gb: p.field_value("memory_gb").unwrap_or(4.0) as u32,
                freq_mhz: p
                    .field_value("freq_mhz")
                    .map_or(SystemConfig::NOMINAL_FREQ_MHZ, |f| f as u32),
            };
            let cost = p.field_value("cost").unwrap_or(f64::INFINITY);
            gt.history.push((features, cfg, cost));
        }
        gt.db = db;
        gt.stats.recorded = gt.history.len();
        if gt.history.len() >= gt.min_history {
            gt.refit()?;
        }
        Ok(gt)
    }
}

/// How trial execution consults the ground truth.
///
/// Two implementations exist: [`GroundTruth`] itself (immediate mutation —
/// the semantics direct sequential callers get) and [`GtSession`] (a
/// buffering view used by the parallel executor: every concurrently running
/// trial reads one stable batch-start snapshot and its mutations are
/// deferred to a deterministic, ordered flush).
pub trait GroundTruthAccess {
    /// Consults the ground truth with first-epoch profile features; `Some`
    /// means the returned configuration may be reused without probing.
    fn lookup(&mut self, features: &[f64]) -> Option<SystemConfig>;

    /// Reports a probed profile and the best configuration probing found.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError`] when persistence or re-clustering fails.
    fn record(
        &mut self,
        workload: &str,
        features: &[f64],
        best: SystemConfig,
        cost: f64,
    ) -> Result<(), PipeTuneError>;
}

impl GroundTruthAccess for GroundTruth {
    fn lookup(&mut self, features: &[f64]) -> Option<SystemConfig> {
        GroundTruth::lookup(self, features).map(|(cfg, _)| cfg)
    }

    fn record(
        &mut self,
        workload: &str,
        features: &[f64],
        best: SystemConfig,
        cost: f64,
    ) -> Result<(), PipeTuneError> {
        GroundTruth::record(self, workload, features, best, cost)
    }
}

/// A deferred ground-truth mutation, tagged onto the session that made it.
#[derive(Debug, Clone)]
enum GtEvent {
    /// A lookup reused a known configuration.
    Hit,
    /// A lookup fell through to probing.
    Miss,
    /// Probing finished; remember its outcome.
    Record {
        workload: String,
        features: Vec<f64>,
        best: SystemConfig,
        cost: f64,
    },
}

/// Thread-safe wrapper sharing one [`GroundTruth`] across executor threads.
///
/// Reads go through an [`std::sync::RwLock`] so any number of trials can consult the
/// history concurrently; writes never happen while trials run. Instead each
/// trial works against a [`GtSession`] that buffers its would-be mutations
/// (hit/miss accounting and probe records), and the coordinator applies the
/// buffers with [`SharedGroundTruth::flush`] in a deterministic order once
/// the batch is done. Every trial in a batch therefore sees exactly the
/// batch-start history — regardless of worker count or thread interleaving —
/// which is what makes parallel runs replay-identical to sequential ones.
#[derive(Debug)]
pub struct SharedGroundTruth<'a> {
    inner: parking_lot::RwLock<&'a mut GroundTruth>,
}

impl<'a> SharedGroundTruth<'a> {
    /// Wraps a ground truth for the duration of a parallel run.
    pub fn new(ground_truth: &'a mut GroundTruth) -> Self {
        SharedGroundTruth { inner: parking_lot::RwLock::new(ground_truth) }
    }

    /// Opens a buffering session for one trial (or one worker's trial slice).
    pub fn session(&self) -> GtSession<'_, 'a> {
        GtSession { shared: self, events: Vec::new() }
    }

    /// Behaviour counters of the wrapped ground truth.
    pub fn stats(&self) -> GroundTruthStats {
        self.inner.read().stats()
    }

    /// Runs a closure against the shared (read-locked) ground truth.
    pub fn with_read<R>(&self, f: impl FnOnce(&GroundTruth) -> R) -> R {
        f(&self.inner.read())
    }

    /// Applies the buffered mutations of `sessions`, in the order given
    /// (callers pass scheduler-request order, making the merged history
    /// independent of which worker finished first).
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError`] when applying a record fails.
    pub fn flush<'s, I>(&self, sessions: I) -> Result<(), PipeTuneError>
    where
        I: IntoIterator<Item = GtSession<'s, 'a>>,
        'a: 's,
    {
        let mut guard = self.inner.write();
        let gt: &mut GroundTruth = &mut guard;
        for session in sessions {
            for event in session.events {
                match event {
                    GtEvent::Hit => gt.stats.hits += 1,
                    GtEvent::Miss => gt.stats.misses += 1,
                    GtEvent::Record { workload, features, best, cost } => {
                        gt.record(&workload, &features, best, cost)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// One trial's buffering view of a [`SharedGroundTruth`].
///
/// Lookups read the shared batch-start snapshot; hit/miss accounting and
/// probe records are buffered locally until [`SharedGroundTruth::flush`].
#[derive(Debug)]
pub struct GtSession<'s, 'a> {
    shared: &'s SharedGroundTruth<'a>,
    events: Vec<GtEvent>,
}

impl GroundTruthAccess for GtSession<'_, '_> {
    fn lookup(&mut self, features: &[f64]) -> Option<SystemConfig> {
        let found = self.shared.inner.read().peek(features).map(|(cfg, _)| cfg);
        self.events.push(if found.is_some() { GtEvent::Hit } else { GtEvent::Miss });
        found
    }

    fn record(
        &mut self,
        workload: &str,
        features: &[f64],
        best: SystemConfig,
        cost: f64,
    ) -> Result<(), PipeTuneError> {
        self.events.push(GtEvent::Record {
            workload: workload.to_string(),
            features: features.to_vec(),
            best,
            cost,
        });
        Ok(())
    }
}

/// Median nearest-neighbour distance of a feature set (DBSCAN radius
/// heuristic). Returns 1.0 on degenerate inputs.
fn median_nn_distance(data: &[Vec<f64>]) -> f64 {
    if data.len() < 2 {
        return 1.0;
    }
    let mut nn: Vec<f64> = data
        .iter()
        .enumerate()
        .map(|(i, p)| {
            data.iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| {
                    p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    nn.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let m = nn[nn.len() / 2];
    if m.is_finite() && m > 0.0 {
        m
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(base: f64) -> Vec<f64> {
        (0..8).map(|i| base + i as f64 * 0.01).collect()
    }

    fn fast_cfg() -> SystemConfig {
        SystemConfig::new(16, 32)
    }

    fn small_cfg() -> SystemConfig {
        SystemConfig::new(4, 8)
    }

    fn seeded() -> GroundTruth {
        let mut gt = GroundTruth::paper_default(3);
        for i in 0..4 {
            gt.record("a", &feat(0.0 + i as f64 * 0.001), fast_cfg(), 10.0 + i as f64).unwrap();
            gt.record("b", &feat(5.0 + i as f64 * 0.001), small_cfg(), 20.0 + i as f64).unwrap();
        }
        gt
    }

    #[test]
    fn similar_profiles_hit_with_cluster_best() {
        let mut gt = seeded();
        let (cfg, verdict) = gt.lookup(&feat(0.002)).expect("should hit");
        assert_eq!(cfg, fast_cfg());
        assert!(verdict.confident);
        let (cfg_b, _) = gt.lookup(&feat(5.002)).expect("should hit");
        assert_eq!(cfg_b, small_cfg());
        assert_eq!(gt.stats().hits, 2);
    }

    #[test]
    fn dissimilar_profiles_miss() {
        let mut gt = seeded();
        assert!(gt.lookup(&feat(50.0)).is_none());
        assert_eq!(gt.stats().misses, 1);
    }

    #[test]
    fn empty_ground_truth_never_hits() {
        let mut gt = GroundTruth::paper_default(1);
        assert!(gt.lookup(&feat(0.0)).is_none());
        assert!(gt.is_empty());
    }

    #[test]
    fn nearest_record_in_cluster_supplies_the_config() {
        let mut gt = GroundTruth::paper_default(1);
        // Same cluster, two sub-populations with different best configs
        // (e.g. small-batch vs large-batch probes).
        for i in 0..3 {
            gt.record("a", &feat(0.0), SystemConfig::new(8, 8), 30.0 - i as f64)
                .unwrap();
        }
        gt.record("a", &feat(0.4), fast_cfg(), 1.0).unwrap();
        gt.record("b", &feat(5.0), small_cfg(), 9.0).unwrap();
        gt.record("b", &feat(5.001), small_cfg(), 9.0).unwrap();
        gt.refit().unwrap();
        // A profile near the 0.4 sub-population reuses *its* config.
        let (cfg, _) = gt.lookup(&feat(0.39)).expect("hit");
        assert_eq!(cfg, fast_cfg());
        // A profile near the 0.0 sub-population reuses the other config.
        let (cfg, _) = gt.lookup(&feat(0.01)).expect("hit");
        assert_eq!(cfg, SystemConfig::new(8, 8));
    }

    #[test]
    fn save_load_round_trip_preserves_behaviour() {
        let gt = seeded();
        let dir = std::env::temp_dir().join("pipetune_gt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gt.json");
        gt.save(&path).unwrap();
        let mut loaded = GroundTruth::load(&path, 2, 2.0, 3).unwrap();
        assert_eq!(loaded.len(), gt.len());
        assert!(loaded.lookup(&feat(0.002)).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dbscan_similarity_also_gates_and_reuses() {
        let mut gt = GroundTruth::with_similarity(
            SimilarityKind::Dbscan { min_points: 2, eps_factor: 3.0 },
            0.0, // threshold unused by DBSCAN
            3,
        );
        for i in 0..4 {
            gt.record("a", &feat(0.0 + i as f64 * 0.001), fast_cfg(), 10.0).unwrap();
            gt.record("b", &feat(5.0 + i as f64 * 0.001), small_cfg(), 20.0).unwrap();
        }
        gt.refit().unwrap();
        let (cfg, v) = gt.lookup(&feat(0.002)).expect("dense region should hit");
        assert_eq!(cfg, fast_cfg());
        assert!(v.confident);
        assert!(gt.lookup(&feat(50.0)).is_none(), "density noise should miss");
        assert_ne!(gt.cluster_of(&feat(0.0)), gt.cluster_of(&feat(5.0)));
    }

    #[test]
    fn clusters_separate_the_two_families_fig8() {
        let gt = seeded();
        let ca = gt.cluster_of(&feat(0.0)).unwrap();
        let cb = gt.cluster_of(&feat(5.0)).unwrap();
        assert_ne!(ca, cb);
    }
}
