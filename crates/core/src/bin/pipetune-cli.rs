//! `pipetune-cli` — run an HPT job from the command line.
//!
//! ```sh
//! pipetune-cli --workload lenet/mnist --approach pipetune --jobs 2 --warm
//! pipetune-cli --workload bfs --testbed single --approach v1
//! pipetune-cli --list
//! ```

use pipetune::{
    warm_start_ground_truth, ExperimentEnv, PipeTune, TuneV1, TuneV2, TunerOptions, WorkloadSpec,
};

#[derive(Debug, Clone, PartialEq)]
struct CliArgs {
    workload: String,
    approach: Approach,
    testbed: Testbed,
    seed: u64,
    jobs: usize,
    scale: f32,
    r_max: u32,
    warm: bool,
    save_model: Option<String>,
    list: bool,
    help: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Approach {
    PipeTune,
    V1,
    V2,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Testbed {
    Distributed,
    Single,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            workload: "lenet/mnist".into(),
            approach: Approach::PipeTune,
            testbed: Testbed::Distributed,
            seed: 42,
            jobs: 1,
            scale: 0.5,
            r_max: 9,
            warm: false,
            save_model: None,
            list: false,
            help: false,
        }
    }
}

const USAGE: &str = "\
pipetune-cli — tune a workload with PipeTune or the Tune baselines

USAGE:
    pipetune-cli [OPTIONS]

OPTIONS:
    --workload <name>     workload to tune (see --list)      [lenet/mnist]
    --approach <name>     pipetune | v1 | v2                 [pipetune]
    --testbed <name>      distributed | single               [distributed]
    --seed <u64>          experiment seed                    [42]
    --jobs <n>            consecutive jobs (shared history)  [1]
    --scale <f32>         dataset scale                      [0.5]
    --r-max <u32>         HyperBand per-trial epoch budget   [9]
    --warm                warm-start the ground truth (§7.2)
    --save-model <path>   write the selected model's weights as JSON
    --list                list workloads and exit
    --help                print this help";

/// Parses CLI arguments. Pure so it can be unit-tested.
fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliArgs, String> {
    let mut out = CliArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--workload" => out.workload = value("--workload")?,
            "--approach" => {
                out.approach = match value("--approach")?.as_str() {
                    "pipetune" => Approach::PipeTune,
                    "v1" => Approach::V1,
                    "v2" => Approach::V2,
                    other => return Err(format!("unknown approach '{other}'")),
                }
            }
            "--testbed" => {
                out.testbed = match value("--testbed")?.as_str() {
                    "distributed" => Testbed::Distributed,
                    "single" => Testbed::Single,
                    other => return Err(format!("unknown testbed '{other}'")),
                }
            }
            "--seed" => {
                out.seed = value("--seed")?.parse().map_err(|_| "bad --seed".to_string())?
            }
            "--jobs" => {
                out.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs".to_string())?;
                if out.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--scale" => {
                out.scale = value("--scale")?.parse().map_err(|_| "bad --scale".to_string())?
            }
            "--r-max" => {
                out.r_max = value("--r-max")?.parse().map_err(|_| "bad --r-max".to_string())?;
                if out.r_max == 0 {
                    return Err("--r-max must be at least 1".into());
                }
            }
            "--warm" => out.warm = true,
            "--save-model" => out.save_model = Some(value("--save-model")?),
            "--list" => out.list = true,
            "--help" | "-h" => out.help = true,
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(out)
}

fn run(args: CliArgs) -> Result<(), String> {
    if args.help {
        println!("{USAGE}");
        return Ok(());
    }
    if args.list {
        println!("workloads:");
        for spec in WorkloadSpec::all_type12().into_iter().chain(WorkloadSpec::all_type3()) {
            println!("  {:<15} {}", spec.name(), spec.job_type().label());
        }
        return Ok(());
    }
    let spec = WorkloadSpec::by_name(&args.workload)
        .ok_or_else(|| format!("unknown workload '{}' (try --list)", args.workload))?;
    let env = match args.testbed {
        Testbed::Distributed => ExperimentEnv::distributed(args.seed),
        Testbed::Single => ExperimentEnv::single_node(args.seed),
    };
    let options = TunerOptions {
        r_max: args.r_max,
        scale: args.scale,
        ..TunerOptions::fast()
    };

    let mut pipetune = if args.warm && args.approach == Approach::PipeTune {
        let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options)
            .map_err(|e| e.to_string())?;
        PipeTune::with_ground_truth(options, gt)
    } else {
        PipeTune::new(options)
    };
    let mut v1 = TuneV1::new(options);
    let mut v2 = TuneV2::new(options);

    for job in 1..=args.jobs {
        let out = match args.approach {
            Approach::PipeTune => pipetune.run(&env, &spec),
            Approach::V1 => v1.run(&env, &spec),
            Approach::V2 => v2.run(&env, &spec),
        }
        .map_err(|e| e.to_string())?;
        println!(
            "job {job}: {} accuracy {:>5.1}%  tuning {:>8.0}s  energy {:>8.1}kJ  best {} (hits {}, probes {})",
            out.workload,
            out.best_accuracy * 100.0,
            out.tuning_secs,
            out.tuning_energy_j / 1000.0,
            out.best_system,
            out.gt_stats.hits,
            out.gt_stats.recorded,
        );
        if job == args.jobs {
            if let Some(path) = &args.save_model {
                match &out.model_weights {
                    Some(weights) => {
                        let artefact = serde_json::json!({
                            "workload": out.workload,
                            "accuracy": out.best_accuracy,
                            "hyperparams": out.best_hp,
                            "system": out.best_system,
                            "weights": weights,
                        });
                        std::fs::write(
                            path,
                            serde_json::to_string(&artefact).map_err(|e| e.to_string())?,
                        )
                        .map_err(|e| e.to_string())?;
                        println!("saved trained model to {path}");
                    }
                    None => eprintln!("note: {} has no weights to save", out.workload),
                }
            }
        }
    }
    Ok(())
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CliArgs, String> {
        parse_args(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_apply_without_arguments() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, CliArgs::default());
    }

    #[test]
    fn full_argument_set_parses() {
        let a = parse(&[
            "--workload", "bfs", "--approach", "v2", "--testbed", "single", "--seed", "7",
            "--jobs", "3", "--scale", "0.25", "--r-max", "27", "--warm",
            "--save-model", "/tmp/model.json",
        ])
        .unwrap();
        assert_eq!(a.workload, "bfs");
        assert_eq!(a.approach, Approach::V2);
        assert_eq!(a.testbed, Testbed::Single);
        assert_eq!(a.seed, 7);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.r_max, 27);
        assert!(a.warm);
        assert_eq!(a.save_model.as_deref(), Some("/tmp/model.json"));
    }

    #[test]
    fn bad_inputs_are_rejected_with_messages() {
        assert!(parse(&["--approach", "magic"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--r-max", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn run_rejects_unknown_workloads() {
        let args = CliArgs { workload: "nope".into(), ..CliArgs::default() };
        assert!(run(args).unwrap_err().contains("unknown workload"));
    }

    #[test]
    fn list_and_help_short_circuit() {
        run(CliArgs { list: true, ..CliArgs::default() }).unwrap();
        run(CliArgs { help: true, ..CliArgs::default() }).unwrap();
    }
}
