//! The PipeTune tuner: HyperBand over hyperparameters, pipelined system
//! tuning inside every trial, ground truth shared across jobs.

use serde::{Deserialize, Serialize};

use crate::objective::{Objective, ProbeGoal};
use crate::observe;
use crate::runner::{run_scheduler, TrialOutcome};
use crate::trial::SystemTuner;
use crate::{ExperimentEnv, GroundTruth, GroundTruthStats, HyperParams, HyperSpace, PipeTuneError, WorkloadSpec};

/// One point on the convergence trajectory (Figs. 9 & 10): a trial finished
/// at `wall_secs` with the given accuracy and cumulative trial time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Simulated wall-clock seconds since the HPT job started.
    pub wall_secs: f64,
    /// Held-out accuracy of the trial at that moment.
    pub accuracy: f32,
    /// The trial's cumulative duration (Fig. 10's trial time).
    pub trial_secs: f64,
}

/// Tuning knobs shared by PipeTune and the baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunerOptions {
    /// HyperBand maximum per-trial epochs (`R`).
    pub r_max: u32,
    /// HyperBand halving factor (`η`).
    pub eta: u32,
    /// Epoch-range of the `epochs` hyperparameter.
    pub epochs_range: (i64, i64),
    /// Dataset scale for the real training substrate.
    pub scale: f32,
    /// What probing minimises.
    pub probe_goal: ProbeGoal,
    /// Ground-truth similarity threshold factor.
    pub threshold_factor: f64,
    /// Which search algorithm drives the trials (HyperBand in the paper).
    pub scheduler: crate::SchedulerKind,
    /// Which similarity function the ground truth fits (k-means in the
    /// paper; pluggable per §5.4).
    pub similarity: crate::SimilarityKind,
}

impl TunerOptions {
    /// Benchmark-harness profile: enough budget for paper-shaped results.
    pub fn paper() -> Self {
        TunerOptions {
            r_max: 27,
            eta: 3,
            epochs_range: (9, 27),
            scale: 1.0,
            probe_goal: ProbeGoal::Runtime,
            threshold_factor: 2.0,
            scheduler: crate::SchedulerKind::HyperBand,
            similarity: crate::SimilarityKind::KMeans { k: 2 },
        }
    }

    /// Test profile: small budgets, small datasets, seconds per run.
    pub fn fast() -> Self {
        TunerOptions {
            r_max: 9,
            eta: 3,
            epochs_range: (3, 9),
            scale: 0.2,
            probe_goal: ProbeGoal::Runtime,
            threshold_factor: 2.0,
            scheduler: crate::SchedulerKind::HyperBand,
            similarity: crate::SimilarityKind::KMeans { k: 2 },
        }
    }
}

impl Default for TunerOptions {
    fn default() -> Self {
        Self::paper()
    }
}

/// Everything a tuning run reports (feeds Table 2 and Figs. 9–14).
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Workload name.
    pub workload: &'static str,
    /// Accuracy of the selected model.
    pub best_accuracy: f32,
    /// Selected hyperparameters.
    pub best_hp: HyperParams,
    /// System configuration the selected model would train under.
    pub best_system: pipetune_cluster::SystemConfig,
    /// Time to train the selected model to its epoch budget (Table 2
    /// "training time").
    pub training_secs: f64,
    /// Simulated wall-clock duration of the whole HPT job (Table 2
    /// "tuning time").
    pub tuning_secs: f64,
    /// Cluster energy attributed to the job's trials, joules.
    pub tuning_energy_j: f64,
    /// Total epochs the scheduler issued.
    pub epochs_total: u64,
    /// Per-trial completion trace for convergence plots.
    pub convergence: Vec<ConvergencePoint>,
    /// Ground-truth behaviour during this job.
    pub gt_stats: GroundTruthStats,
    /// Trained weights of the selected model — the Fig. 6 output artefact
    /// (None for kernel workloads, which carry no weights).
    pub model_weights: Option<Vec<pipetune_tensor::Tensor>>,
    /// Scheduler id of the winning trial; its workload was instantiated with
    /// seed `env.subseed(best_trial_id)`, so the exact model/dataset can be
    /// rebuilt.
    pub best_trial_id: u64,
    /// Faults injected and recovered from during the job (clean when the
    /// environment's fault plan is empty).
    pub fault_report: pipetune_cluster::FaultReport,
    /// Epoch-reuse cache behaviour during this job (all-zero when
    /// [`ExperimentEnv::epoch_cache`] is disabled); `saved_secs` is the
    /// simulated epoch time adoption avoided (see `docs/reuse.md`).
    pub cache_stats: crate::CacheStats,
}

impl TuningOutcome {
    /// The run's durable checkpoint boundaries on its own wall clock,
    /// strictly inside `(0, tuning_secs)`, sorted ascending and deduped.
    ///
    /// Each [`ConvergencePoint`] marks a trial completing — the instant
    /// the executor's epoch-boundary `TrialCheckpoint` state for that
    /// trial is final and the run's progress is durably recoverable. A
    /// service resubmitting a crashed job resumes from the latest mark
    /// not past the crashed attempt's progress (falling back to a cold
    /// restart when the crash precedes the first mark), which is what
    /// makes resubmission a *resume* rather than a restart.
    pub fn checkpoint_marks(&self) -> Vec<f64> {
        let mut marks: Vec<f64> = self
            .convergence
            .iter()
            .map(|p| p.wall_secs)
            .filter(|w| w.is_finite() && *w > 0.0 && *w < self.tuning_secs)
            .collect();
        marks.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        marks.dedup();
        marks
    }
}

/// The PipeTune middleware. Holds the cross-job ground truth; run one HPT
/// job per [`PipeTune::run`] call.
///
/// ```no_run
/// use pipetune::{ExperimentEnv, PipeTune, TunerOptions, WorkloadSpec};
///
/// let env = ExperimentEnv::distributed(42);
/// let mut tuner = PipeTune::new(TunerOptions::fast());
/// // Jobs share the tuner's ground truth: the second job on a similar
/// // workload reuses the first job's probed optimum instead of re-probing.
/// let first = tuner.run(&env, &WorkloadSpec::lenet_mnist())?;
/// let second = tuner.run(&env, &WorkloadSpec::lenet_mnist())?;
/// assert!(second.gt_stats.hits > 0);
/// println!("{:.1}% in {:.0}s", 100.0 * first.best_accuracy, first.tuning_secs);
/// # Ok::<(), pipetune::PipeTuneError>(())
/// ```
#[derive(Debug)]
pub struct PipeTune {
    options: TunerOptions,
    ground_truth: GroundTruth,
    jobs_run: u64,
}

impl PipeTune {
    /// Creates a tuner with a fresh ground truth.
    pub fn new(options: TunerOptions) -> Self {
        PipeTune {
            ground_truth: GroundTruth::with_similarity(
                options.similarity,
                options.threshold_factor,
                0x6774,
            ),
            options,
            jobs_run: 0,
        }
    }

    /// Creates a tuner seeded with an existing ground truth (warm start,
    /// §7.2: "the user can point to a pre-trained similarity function").
    pub fn with_ground_truth(options: TunerOptions, ground_truth: GroundTruth) -> Self {
        PipeTune { ground_truth, options, jobs_run: 0 }
    }

    /// Read access to the cross-job ground truth.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// The options in force.
    pub fn options(&self) -> &TunerOptions {
        &self.options
    }

    /// Runs one HPT job: HyperBand over the paper's five hyperparameters,
    /// pipelined system tuning inside each trial.
    ///
    /// # Errors
    ///
    /// Propagates substrate and configuration errors.
    pub fn run(
        &mut self,
        env: &ExperimentEnv,
        spec: &WorkloadSpec,
    ) -> Result<TuningOutcome, PipeTuneError> {
        let spec = spec.with_scale(self.options.scale);
        let space = HyperSpace::paper(self.options.epochs_range);
        let mut scheduler = self.options.scheduler.build(
            space,
            self.options.r_max,
            self.options.eta,
            env.subseed(0x7453 + self.jobs_run),
        );
        self.jobs_run += 1;
        let stats_before = self.ground_truth.stats();
        let goal = self.options.probe_goal;
        let result = run_scheduler(
            env,
            &spec,
            scheduler.as_mut(),
            Objective::Accuracy,
            "pipetune",
            |_config| SystemTuner::pipelined(goal),
            Some(&mut self.ground_truth),
            1.0,
        )?;
        let stats_after = self.ground_truth.stats();
        if env.telemetry.is_enabled() {
            let hits = (stats_after.hits - stats_before.hits) as u64;
            let misses = (stats_after.misses - stats_before.misses) as u64;
            env.telemetry.with_metrics(|m| {
                m.counter_add(observe::GT_HITS, hits);
                m.counter_add(observe::GT_MISSES, misses);
                m.counter_add(
                    observe::GT_RECORDED,
                    (stats_after.recorded - stats_before.recorded) as u64,
                );
                m.counter_add(observe::GT_REFITS, (stats_after.refits - stats_before.refits) as u64);
                if hits + misses > 0 {
                    #[allow(clippy::cast_precision_loss)]
                    m.gauge_set(observe::GT_HIT_RATE, hits as f64 / (hits + misses) as f64);
                }
            });
        }
        Ok(TuningOutcome {
            workload: spec.name(),
            best_accuracy: result.best_accuracy,
            best_hp: result.best_hp,
            best_system: result.best_final_system,
            training_secs: result.best_training_secs,
            tuning_secs: result.tuning_secs,
            tuning_energy_j: result.tuning_energy_j,
            epochs_total: result.epochs_total,
            convergence: convergence_from(&result.outcomes),
            model_weights: result.best_weights,
            best_trial_id: result.best_trial_id,
            fault_report: result.fault_report,
            cache_stats: result.cache_stats,
            gt_stats: GroundTruthStats {
                recorded: stats_after.recorded - stats_before.recorded,
                hits: stats_after.hits - stats_before.hits,
                misses: stats_after.misses - stats_before.misses,
                refits: stats_after.refits - stats_before.refits,
            },
        })
    }
}

/// Sorts trial completions into a convergence trace.
pub(crate) fn convergence_from(outcomes: &[TrialOutcome]) -> Vec<ConvergencePoint> {
    let mut points: Vec<ConvergencePoint> = outcomes
        .iter()
        .map(|o| ConvergencePoint {
            wall_secs: o.completed_at_secs,
            accuracy: o.accuracy,
            trial_secs: o.trial_secs,
        })
        .collect();
    points.sort_by(|a, b| a.wall_secs.partial_cmp(&b.wall_secs).unwrap_or(std::cmp::Ordering::Equal));
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipetune_runs_a_job_end_to_end() {
        let env = ExperimentEnv::distributed(11);
        let mut tuner = PipeTune::new(TunerOptions::fast());
        let out = tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
        assert!(out.best_accuracy > 0.15, "accuracy {}", out.best_accuracy);
        assert!(out.tuning_secs > 0.0);
        assert!(out.tuning_energy_j > 0.0);
        assert!(!out.convergence.is_empty());
        assert!(out.epochs_total > 0);
        // Convergence points are time-ordered.
        assert!(out
            .convergence
            .windows(2)
            .all(|w| w[0].wall_secs <= w[1].wall_secs));
    }

    #[test]
    fn second_similar_job_hits_ground_truth() {
        let env = ExperimentEnv::distributed(12);
        let mut tuner = PipeTune::new(TunerOptions::fast());
        let first = tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
        assert!(first.gt_stats.recorded > 0, "first job should probe");
        let second = tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
        assert!(
            second.gt_stats.hits > 0,
            "second job should reuse: {:?}",
            second.gt_stats
        );
        // Reuse accelerates the job (no probe epochs at slow configs).
        assert!(second.tuning_secs <= first.tuning_secs * 1.1);
    }

    #[test]
    fn checkpoint_marks_are_sorted_interior_and_deduped() {
        let env = ExperimentEnv::distributed(11);
        let out = PipeTune::new(TunerOptions::fast()).run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
        let marks = out.checkpoint_marks();
        assert!(!marks.is_empty(), "a real run checkpoints at least once");
        assert!(marks.windows(2).all(|w| w[0] < w[1]), "{marks:?}");
        assert!(marks.iter().all(|&m| m > 0.0 && m < out.tuning_secs), "{marks:?}");
        // Degenerate trace: nothing durable inside the run.
        let mut degenerate = out.clone();
        degenerate.convergence.clear();
        assert!(degenerate.checkpoint_marks().is_empty());
    }

    #[test]
    fn deterministic_per_environment_seed() {
        let run = || {
            let env = ExperimentEnv::distributed(33);
            PipeTune::new(TunerOptions::fast())
                .run(&env, &WorkloadSpec::lenet_mnist())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_accuracy, b.best_accuracy);
        assert_eq!(a.tuning_secs, b.tuning_secs);
    }
}
