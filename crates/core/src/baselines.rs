//! The paper's baselines: Tune V1, Tune V2 (§4, §7.1.5) and the "Arbitrary"
//! row of Table 2.


use crate::hyper::system_from_config;
use crate::objective::Objective;
use crate::runner::run_scheduler;
use crate::trial::{SystemTuner, TrialExecution};
use crate::tuner::{convergence_from, TunerOptions, TuningOutcome};
use crate::{ExperimentEnv, GroundTruthStats, HyperParams, HyperSpace, PipeTuneError, WorkloadSpec};

/// Baseline I — Tune out of the box: HyperBand over hyperparameters only,
/// objective = accuracy, every trial at the default system configuration.
#[derive(Debug, Clone)]
pub struct TuneV1 {
    options: TunerOptions,
    jobs_run: u64,
}

impl TuneV1 {
    /// Creates the baseline.
    pub fn new(options: TunerOptions) -> Self {
        TuneV1 { options, jobs_run: 0 }
    }

    /// Runs one HPT job.
    ///
    /// # Errors
    ///
    /// Propagates substrate and configuration errors.
    pub fn run(
        &mut self,
        env: &ExperimentEnv,
        spec: &WorkloadSpec,
    ) -> Result<TuningOutcome, PipeTuneError> {
        self.run_with_contention(env, spec, 1.0)
    }

    /// Runs one HPT job under a fixed contention factor (Fig. 5 / §7.4).
    ///
    /// # Errors
    ///
    /// Propagates substrate and configuration errors.
    pub fn run_with_contention(
        &mut self,
        env: &ExperimentEnv,
        spec: &WorkloadSpec,
        contention: f64,
    ) -> Result<TuningOutcome, PipeTuneError> {
        let spec = spec.with_scale(self.options.scale);
        let space = HyperSpace::paper(self.options.epochs_range);
        let mut scheduler = self.options.scheduler.build(
            space,
            self.options.r_max,
            self.options.eta,
            env.subseed(0x7453 + self.jobs_run),
        );
        self.jobs_run += 1;
        let default_sys = env.default_system;
        let result = run_scheduler(
            env,
            &spec,
            scheduler.as_mut(),
            Objective::Accuracy,
            "tune_v1",
            |_config| SystemTuner::Fixed(default_sys),
            None,
            contention,
        )?;
        Ok(TuningOutcome {
            workload: spec.name(),
            best_accuracy: result.best_accuracy,
            best_hp: result.best_hp,
            best_system: default_sys,
            training_secs: result.best_training_secs,
            tuning_secs: result.tuning_secs,
            tuning_energy_j: result.tuning_energy_j,
            epochs_total: result.epochs_total,
            convergence: convergence_from(&result.outcomes),
            model_weights: result.best_weights,
            best_trial_id: result.best_trial_id,
            fault_report: result.fault_report,
            cache_stats: result.cache_stats,
            gt_stats: GroundTruthStats::default(),
        })
    }
}

/// Baseline II — "system as hyperparameters": HyperBand over the union of
/// hyper and system parameters, objective = accuracy/duration, each trial
/// pinned to its sampled system configuration.
#[derive(Debug, Clone)]
pub struct TuneV2 {
    options: TunerOptions,
    jobs_run: u64,
}

impl TuneV2 {
    /// Creates the baseline.
    pub fn new(options: TunerOptions) -> Self {
        TuneV2 { options, jobs_run: 0 }
    }

    /// Runs one HPT job.
    ///
    /// # Errors
    ///
    /// Propagates substrate and configuration errors.
    pub fn run(
        &mut self,
        env: &ExperimentEnv,
        spec: &WorkloadSpec,
    ) -> Result<TuningOutcome, PipeTuneError> {
        self.run_with_contention(env, spec, 1.0)
    }

    /// Runs one HPT job under a fixed contention factor (Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates substrate and configuration errors.
    pub fn run_with_contention(
        &mut self,
        env: &ExperimentEnv,
        spec: &WorkloadSpec,
        contention: f64,
    ) -> Result<TuningOutcome, PipeTuneError> {
        let spec = spec.with_scale(self.options.scale);
        // The system half of the space comes from the environment, so
        // experiments that pin jobs to fewer cores (Fig. 5) restrict what V2
        // can sample.
        let sys_space = pipetune_search::SearchSpace::new(vec![
            pipetune_search::ParamSpec::int_choice(
                "cores",
                &env.system_space.cores.iter().map(|&c| i64::from(c)).collect::<Vec<_>>(),
            ),
            pipetune_search::ParamSpec::int_choice(
                "memory_gb",
                &env.system_space.memory_gb.iter().map(|&m| i64::from(m)).collect::<Vec<_>>(),
            ),
        ]);
        let space = HyperSpace::paper(self.options.epochs_range).union(&sys_space);
        let mut scheduler = self.options.scheduler.build(
            space,
            self.options.r_max,
            self.options.eta,
            env.subseed(0x7453 + self.jobs_run),
        );
        self.jobs_run += 1;
        let default_sys = env.default_system;
        let result = run_scheduler(
            env,
            &spec,
            scheduler.as_mut(),
            Objective::AccuracyPerTime,
            "tune_v2",
            |config| SystemTuner::Fixed(system_from_config(config).unwrap_or(default_sys)),
            None,
            contention,
        )?;
        Ok(TuningOutcome {
            workload: spec.name(),
            best_accuracy: result.best_accuracy,
            best_hp: result.best_hp,
            best_system: result.best_final_system,
            training_secs: result.best_training_secs,
            tuning_secs: result.tuning_secs,
            tuning_energy_j: result.tuning_energy_j,
            epochs_total: result.epochs_total,
            convergence: convergence_from(&result.outcomes),
            model_weights: result.best_weights,
            best_trial_id: result.best_trial_id,
            fault_report: result.fault_report,
            cache_stats: result.cache_stats,
            gt_stats: GroundTruthStats::default(),
        })
    }
}

/// The "Arbitrary" row of Table 2: train once with hand-picked (deliberately
/// untuned) hyperparameters under the default system configuration. There is
/// no tuning phase, so only accuracy and training time are reported.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn run_arbitrary(
    env: &ExperimentEnv,
    spec: &WorkloadSpec,
    hp: &HyperParams,
    scale: f32,
) -> Result<(f32, f64), PipeTuneError> {
    let spec = spec.with_scale(scale);
    let workload = spec.instantiate(hp, env.subseed(0xA5B))?;
    let mut trial = TrialExecution::new(workload, SystemTuner::Fixed(env.default_system));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(env.subseed(0xA5C));
    trial.run_epochs(env, hp.epochs, None, 1.0, &mut rng)?;
    let accuracy = trial.accuracy()?;
    Ok((accuracy, trial.duration_secs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_keeps_the_default_system_configuration() {
        let env = ExperimentEnv::distributed(21);
        let out = TuneV1::new(TunerOptions::fast()).run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
        assert_eq!(out.best_system, env.default_system);
        assert!(out.best_accuracy > 0.1);
        assert!(out.tuning_secs > 0.0);
    }

    #[test]
    fn v2_explores_system_configurations() {
        let env = ExperimentEnv::distributed(22);
        let out = TuneV2::new(TunerOptions::fast()).run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
        // The chosen config is a member of the V2 grid.
        assert!([4, 8, 16].contains(&out.best_system.cores));
        assert!([4, 8, 16, 32].contains(&out.best_system.memory_gb));
    }

    #[test]
    fn contention_slows_tuning_down() {
        let env = ExperimentEnv::distributed(23);
        let alone = TuneV1::new(TunerOptions::fast())
            .run_with_contention(&env, &WorkloadSpec::lenet_mnist(), 1.0)
            .unwrap();
        let crowded = TuneV1::new(TunerOptions::fast())
            .run_with_contention(&env, &WorkloadSpec::lenet_mnist(), 3.0)
            .unwrap();
        assert!(crowded.tuning_secs > alone.tuning_secs * 2.0);
    }

    #[test]
    fn arbitrary_runs_without_tuning() {
        let env = ExperimentEnv::distributed(24);
        let hp = HyperParams { learning_rate: 0.09, epochs: 3, ..HyperParams::default() };
        let (acc, secs) = run_arbitrary(&env, &WorkloadSpec::lenet_mnist(), &hp, 0.2).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(secs > 0.0);
    }
}
