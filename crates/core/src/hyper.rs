//! The paper's five hyperparameters (§7.1.3) and their search space.

use pipetune_search::{Config, ParamSpec, ParamValue, SearchSpace};
use serde::{Deserialize, Serialize};

/// One hyperparameter assignment for a trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// Mini-batch size (paper range 32–1024).
    pub batch_size: usize,
    /// Dropout rate (paper range 0.0–0.5).
    pub dropout: f32,
    /// Word-embedding dimensionality (paper range 50–300; text models only).
    pub embedding_dim: usize,
    /// SGD learning rate (paper range 0.001–0.1).
    pub learning_rate: f32,
    /// Requested training epochs (paper range 10–100).
    pub epochs: u32,
}

impl Default for HyperParams {
    fn default() -> Self {
        HyperParams {
            batch_size: 32,
            dropout: 0.0,
            embedding_dim: 50,
            learning_rate: 0.01,
            epochs: 10,
        }
    }
}

impl HyperParams {
    /// Decodes a scheduler [`Config`]; missing keys keep defaults, so the
    /// same decoder serves hyper-only (V1/PipeTune) and hyper+system (V2)
    /// spaces.
    pub fn from_config(config: &Config) -> Self {
        let mut hp = HyperParams::default();
        if let Some(v) = config.get("batch_size") {
            hp.batch_size = v.as_i64().max(1) as usize;
        }
        if let Some(v) = config.get("dropout") {
            hp.dropout = v.as_f64().clamp(0.0, 0.95) as f32;
        }
        if let Some(v) = config.get("embedding_dim") {
            hp.embedding_dim = v.as_i64().max(1) as usize;
        }
        if let Some(v) = config.get("learning_rate") {
            hp.learning_rate = v.as_f64().max(1e-6) as f32;
        }
        if let Some(v) = config.get("epochs") {
            hp.epochs = v.as_i64().clamp(1, 10_000) as u32;
        }
        hp
    }

    /// Encodes into a scheduler [`Config`] (used by arbitrary baselines and
    /// tests).
    pub fn to_config(&self) -> Config {
        let mut c = Config::new();
        c.insert("batch_size".into(), ParamValue::Int(self.batch_size as i64));
        c.insert("dropout".into(), ParamValue::Float(f64::from(self.dropout)));
        c.insert("embedding_dim".into(), ParamValue::Int(self.embedding_dim as i64));
        c.insert("learning_rate".into(), ParamValue::Float(f64::from(self.learning_rate)));
        c.insert("epochs".into(), ParamValue::Int(i64::from(self.epochs)));
        c
    }
}

/// Builders for the paper's search spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HyperSpace;

impl HyperSpace {
    /// The paper's five-hyperparameter space (§7.1.3).
    ///
    /// `epochs_range` lets experiments scale the epoch budget (the paper
    /// uses 10–100; the fast profile uses smaller budgets). The embedding
    /// dimensions are the paper's 50–300 range scaled by ~1/5 to match the
    /// scaled-down synthetic text datasets (documented in DESIGN.md): the
    /// accuracy/time trade-off shape is preserved, the absolute sizes are
    /// smaller.
    pub fn paper(epochs_range: (i64, i64)) -> SearchSpace {
        SearchSpace::new(vec![
            ParamSpec::int_choice("batch_size", &[32, 64, 256, 1024]),
            ParamSpec::float_range("dropout", 0.0, 0.5, false),
            ParamSpec::int_choice("embedding_dim", &[8, 16, 32, 64]),
            ParamSpec::float_range("learning_rate", 0.001, 0.1, true),
            ParamSpec::int_range("epochs", epochs_range.0, epochs_range.1),
        ])
    }

    /// The system-parameter space as extra *hyper*parameters — what Tune V2
    /// does (§4): cores ∈ {4, 8, 16}, memory ∈ {4, 8, 16, 32} GiB.
    pub fn system_as_hyper() -> SearchSpace {
        SearchSpace::new(vec![
            ParamSpec::int_choice("cores", &[4, 8, 16]),
            ParamSpec::int_choice("memory_gb", &[4, 8, 16, 32]),
        ])
    }
}

/// Decodes the system half of a Tune V2 config, if present.
pub(crate) fn system_from_config(
    config: &Config,
) -> Option<pipetune_cluster::SystemConfig> {
    match (config.get("cores"), config.get("memory_gb")) {
        (Some(c), Some(m)) => Some(pipetune_cluster::SystemConfig {
            cores: c.as_i64().clamp(1, 1024) as u32,
            memory_gb: m.as_i64().clamp(1, 4096) as u32,
            freq_mhz: config
                .get("freq_mhz")
                .map_or(pipetune_cluster::SystemConfig::NOMINAL_FREQ_MHZ, |f| {
                    f.as_i64().clamp(100, 10_000) as u32
                }),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips() {
        let hp = HyperParams {
            batch_size: 256,
            dropout: 0.3,
            embedding_dim: 200,
            learning_rate: 0.05,
            epochs: 40,
        };
        let back = HyperParams::from_config(&hp.to_config());
        assert_eq!(back.batch_size, 256);
        assert!((back.dropout - 0.3).abs() < 1e-6);
        assert_eq!(back.embedding_dim, 200);
        assert_eq!(back.epochs, 40);
    }

    #[test]
    fn missing_keys_fall_back_to_defaults() {
        let hp = HyperParams::from_config(&Config::new());
        assert_eq!(hp.batch_size, HyperParams::default().batch_size);
    }

    #[test]
    fn paper_space_has_five_parameters() {
        assert_eq!(HyperSpace::paper((10, 100)).len(), 5);
        assert_eq!(HyperSpace::system_as_hyper().len(), 2);
    }

    #[test]
    fn v2_union_space_decodes_both_halves() {
        let space = HyperSpace::paper((10, 100)).union(&HyperSpace::system_as_hyper());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let cfg = space.sample(&mut rng);
        let hp = HyperParams::from_config(&cfg);
        let sys = system_from_config(&cfg).expect("system half present");
        assert!(hp.batch_size >= 32);
        assert!([4, 8, 16].contains(&sys.cores));
    }

    #[test]
    fn hyper_only_config_has_no_system_half() {
        let cfg = HyperParams::default().to_config();
        assert!(system_from_config(&cfg).is_none());
    }
}
