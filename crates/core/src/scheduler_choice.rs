//! Pluggable trial schedulers.
//!
//! The paper's architecture (Fig. 7) lists grid search, random search,
//! genetic optimisation, Bayesian optimisation and HyperBand as
//! interchangeable under the hyperparameter-tuning box, with HyperBand as
//! the evaluation's choice (§6). This module makes that a configuration
//! knob: every tuner (PipeTune and the baselines) can run on any of them.

use pipetune_search::{Asha, Genetic, GridSearch, HyperBand, RandomSearch, SearchSpace, Tpe, TrialScheduler};
use serde::{Deserialize, Serialize};

/// Which search algorithm drives the trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SchedulerKind {
    /// HyperBand with the configured `r_max`/`eta` (the paper's choice).
    #[default]
    HyperBand,
    /// Random search: `trials` samples, each at the full `r_max` budget.
    Random {
        /// Number of sampled configurations.
        trials: usize,
    },
    /// Exhaustive grid with `per_param` points per ranged parameter —
    /// Fig. 1's exponential baseline.
    Grid {
        /// Grid resolution per parameter.
        per_param: usize,
    },
    /// TPE-style sequential Bayesian optimisation.
    Tpe {
        /// Number of sequential trials.
        trials: usize,
    },
    /// Generational genetic search.
    Genetic {
        /// Individuals per generation.
        population: usize,
        /// Number of generations.
        generations: usize,
    },
    /// Asynchronous successive halving (barrier-free HyperBand; extension).
    Asha {
        /// Configurations to sample.
        trials: usize,
    },
}

impl SchedulerKind {
    /// Short name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::HyperBand => "hyperband",
            SchedulerKind::Random { .. } => "random",
            SchedulerKind::Grid { .. } => "grid",
            SchedulerKind::Tpe { .. } => "tpe",
            SchedulerKind::Genetic { .. } => "genetic",
            SchedulerKind::Asha { .. } => "asha",
        }
    }

    /// Instantiates the scheduler over `space` with the given per-trial
    /// epoch budget and seed.
    pub fn build(
        &self,
        space: SearchSpace,
        r_max: u32,
        eta: u32,
        seed: u64,
    ) -> Box<dyn TrialScheduler> {
        match *self {
            SchedulerKind::HyperBand => Box::new(HyperBand::new(space, r_max, eta, seed)),
            SchedulerKind::Random { trials } => {
                Box::new(RandomSearch::new(space, trials.max(1), r_max, seed))
            }
            SchedulerKind::Grid { per_param } => {
                Box::new(GridSearch::new(space, per_param.max(1), r_max))
            }
            SchedulerKind::Tpe { trials } => Box::new(Tpe::new(space, trials.max(1), r_max, seed)),
            SchedulerKind::Genetic { population, generations } => Box::new(Genetic::new(
                space,
                population.max(2),
                generations.max(1),
                r_max,
                seed,
            )),
            SchedulerKind::Asha { trials } => {
                Box::new(Asha::new(space, r_max, eta.max(2), trials.max(1), seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune_search::{ParamSpec, TrialReport};

    fn space() -> SearchSpace {
        SearchSpace::new(vec![ParamSpec::float_range("x", 0.0, 1.0, false)])
    }

    #[test]
    fn every_kind_builds_and_terminates() {
        for kind in [
            SchedulerKind::HyperBand,
            SchedulerKind::Random { trials: 4 },
            SchedulerKind::Grid { per_param: 3 },
            SchedulerKind::Tpe { trials: 4 },
            SchedulerKind::Genetic { population: 4, generations: 2 },
            SchedulerKind::Asha { trials: 6 },
        ] {
            let mut sched = kind.build(space(), 3, 3, 7);
            let mut guard = 0;
            while !sched.is_finished() {
                for r in sched.next_trials() {
                    let score = r.config["x"].as_f64();
                    sched.report(TrialReport { id: r.id, score, epochs_run: r.epochs });
                }
                guard += 1;
                assert!(guard < 10_000, "{} did not terminate", kind.name());
            }
            assert!(sched.best().is_some(), "{} found nothing", kind.name());
            assert!(sched.epochs_issued() > 0);
        }
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let mut sched =
            SchedulerKind::Genetic { population: 0, generations: 0 }.build(space(), 1, 3, 1);
        assert!(!sched.is_finished());
        let batch = sched.next_trials();
        assert!(!batch.is_empty());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SchedulerKind::default().name(), "hyperband");
        assert_eq!(SchedulerKind::Grid { per_param: 3 }.name(), "grid");
    }
}
