//! The epoch-reuse cache: content-addressed trial prefixes shared across
//! trials and jobs (see `docs/reuse.md`).
//!
//! HyperBand restarts configurations from epoch 0 on every fresh trial,
//! even when another trial (in this job, an earlier job, or a previous
//! run persisted to disk) already trained the *identical* workload prefix
//! — same dataset fingerprint, same model configuration, same
//! hyperparameter prefix. Following the memoization argument of *Li et
//! al., Exploiting Reuse in Pipeline-Aware Hyperparameter Tuning*, an
//! [`EpochCache`] stores those prefixes content-addressed by
//! [`fingerprint`] and epoch depth, and a fresh trial resumes from the
//! deepest cached prefix not exceeding its epoch budget, charging only a
//! small reload cost ([`EpochCacheConfig::reload_cost_factor`]) instead
//! of the full training time.
//!
//! # Determinism contract
//!
//! The content address covers the trial's *full resumable identity* —
//! the hyperparameter-prefix [`fingerprint`] extended by
//! `trial_identity` with the workload instantiation seed, the trial's
//! private RNG seed, the tuner-policy discriminant and the contention
//! factor. A hit can therefore only ever return state the adopting trial
//! would have computed, bit for bit, had it trained the prefix itself:
//! accuracy trajectories with the cache on are byte-identical to
//! cache-off runs, and only the time/energy accounting changes.
//!
//! The cache also follows the same batch-snapshot discipline as
//! [`crate::SharedGroundTruth`]: during a scheduler batch, worker threads
//! only *read* the cache (through [`EpochCacheHandle::peek`], which takes
//! a read lock and never mutates), while hits, misses and inserts are
//! buffered per work item in a [`CacheSession`] and applied by the
//! coordinator in scheduler request order at a deterministic simulated
//! time ([`EpochCacheHandle::flush`]). Results with the cache enabled are
//! therefore byte-identical for every [`crate::ExperimentEnv::workers`]
//! count; with the cache disabled (the default) every code path is
//! bypassed and results are bit-identical to builds without the cache.
//!
//! # Eviction
//!
//! Bounded capacity with LRU-by-simulated-time: every entry carries the
//! simulated flush clock of its last hit or (re-)insert plus an insertion
//! sequence number as a tie-break, and the coordinator evicts the
//! least-recently-used entries whenever a flush leaves the cache over
//! [`EpochCacheConfig::capacity`]. The clock is kept monotone across runs
//! sharing one handle (each run's wall clock restarts at zero) by adding
//! a running offset whenever the flush clock regresses.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use pipetune_tsdb::TsdbError;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::trial::{EpochPhase, EpochRecord, SystemTuner};
use crate::workload::WorkloadInstance;
use crate::{HyperParams, PipeTuneError, WorkloadSpec};

/// Tuning knobs of the epoch-reuse cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochCacheConfig {
    /// Maximum number of cached prefixes; least-recently-used entries are
    /// evicted beyond it. Must be at least 1.
    pub capacity: usize,
    /// Fraction of the original epoch duration charged for adopting a
    /// cached epoch (checkpoint reload instead of training). Must lie in
    /// `(0, 1)`.
    pub reload_cost_factor: f64,
}

impl Default for EpochCacheConfig {
    fn default() -> Self {
        EpochCacheConfig { capacity: 64, reload_cost_factor: 0.05 }
    }
}

impl EpochCacheConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::InvalidConfig`] on a zero capacity or a
    /// reload cost factor outside `(0, 1)`.
    pub fn validate(&self) -> Result<(), PipeTuneError> {
        if self.capacity == 0 {
            return Err(PipeTuneError::InvalidConfig {
                reason: "epoch cache capacity must be at least 1".into(),
            });
        }
        if !(self.reload_cost_factor > 0.0 && self.reload_cost_factor < 1.0) {
            return Err(PipeTuneError::InvalidConfig {
                reason: format!(
                    "epoch cache reload_cost_factor must lie in (0, 1), got {}",
                    self.reload_cost_factor
                ),
            });
        }
        Ok(())
    }
}

/// Content address of a cached prefix: the full trial identity
/// (`trial_identity` over the hyperparameter-prefix [`fingerprint`])
/// plus the epoch depth the prefix was trained to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey {
    /// Output of `trial_identity`: the [`fingerprint`] of dataset +
    /// model configuration + hyperparameter prefix (everything but the
    /// `epochs` budget), extended with the trial's instantiation seed,
    /// RNG seed, tuner policy and contention factor.
    pub fingerprint: u64,
    /// Epochs the cached prefix was trained for.
    pub epochs: u32,
}

/// FNV-1a 64-bit offset basis (stable across runs and platforms;
/// everything is hashed in little-endian bit patterns).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Hashes a trial's hyperparameter *prefix*: the dataset fingerprint
/// (workload name and scale — the dataset generator is a pure function of
/// those plus the instantiation seed), the model configuration (also
/// derived from the workload name and the hyperparameters) and every
/// tuned hyperparameter except `epochs`, which is the depth dimension the
/// cache indexes separately.
///
/// This is the *configuration* component of the cache address. The full
/// [`CacheKey::fingerprint`] additionally folds in the trial's identity
/// through `trial_identity`, so two trials share an address only when
/// they would compute bit-identical prefixes — same configuration *and*
/// same instantiation seed, RNG stream, tuner policy and contention.
/// Configuration-equal trials differing in how many epochs they are
/// budgeted ([`HyperParams::epochs`] and the scheduler rung) is the
/// redundancy the cache exploits.
///
/// ```
/// use pipetune::{epoch_cache_fingerprint, HyperParams, WorkloadSpec};
///
/// let spec = WorkloadSpec::lenet_mnist();
/// let a = HyperParams { epochs: 3, ..HyperParams::default() };
/// let b = HyperParams { epochs: 27, ..HyperParams::default() };
/// // The epoch budget is the suffix, not part of the address:
/// assert_eq!(epoch_cache_fingerprint(&spec, &a), epoch_cache_fingerprint(&spec, &b));
/// // Any prefix hyperparameter changes the address:
/// let c = HyperParams { batch_size: a.batch_size * 2, ..a };
/// assert_ne!(epoch_cache_fingerprint(&spec, &a), epoch_cache_fingerprint(&spec, &c));
/// ```
pub fn fingerprint(spec: &WorkloadSpec, hp: &HyperParams) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    };
    eat(spec.name().as_bytes());
    eat(&spec.scale_bits().to_le_bytes());
    eat(&(hp.batch_size as u64).to_le_bytes());
    eat(&hp.dropout.to_bits().to_le_bytes());
    eat(&(hp.embedding_dim as u64).to_le_bytes());
    eat(&hp.learning_rate.to_bits().to_le_bytes());
    h
}

/// Extends the configuration [`fingerprint`] with everything *else* that
/// determines a trial's trained prefix bit for bit: the workload
/// instantiation seed (datasets and initial weights), the seed of the
/// trial's private RNG stream (profile noise, fault draws), the tuner
/// policy it starts from ([`tuner_policy`] — probe sweeps change system
/// configurations and therefore time/energy and tuner evolution) and the
/// contention factor (scales epoch durations, which probe costs — and
/// hence the tuner's argmin — depend on).
///
/// Restricting hits to identity-equal trials is what makes adoption
/// sound: without it, a trial could adopt a prefix trained under a
/// different seed or policy and its accuracy trajectory would diverge
/// from the cache-off run.
pub(crate) fn trial_identity(
    config: u64,
    instantiation_seed: u64,
    rng_seed: u64,
    tuner_policy: u64,
    contention: f64,
) -> u64 {
    let mut h = FNV_OFFSET;
    for word in [config, instantiation_seed, rng_seed, tuner_policy, contention.to_bits()] {
        for b in word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Stable discriminant of a [`SystemTuner`]'s *policy* — the variant and
/// its defining parameters, deliberately ignoring evolved probe state
/// (queues, measurements, the chosen config). The discriminant is
/// constant over a trial's lifetime: the cache key pins the policy a
/// prefix *started* from, and the identity components of
/// `trial_identity` guarantee its evolution from there is exactly what
/// the adopting trial would have computed.
pub(crate) fn tuner_policy(tuner: &SystemTuner) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |word: u64| {
        for b in word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    };
    match tuner {
        SystemTuner::Fixed(c) => {
            eat(1);
            eat(u64::from(c.cores));
            eat(u64::from(c.memory_gb));
            eat(u64::from(c.freq_mhz));
        }
        SystemTuner::Pipelined { goal, .. } => {
            eat(2);
            eat(match goal {
                crate::ProbeGoal::Runtime => 0,
                crate::ProbeGoal::Energy => 1,
                crate::ProbeGoal::EnergyDelay => 2,
            });
        }
    }
    h
}

/// Behaviour counters of an [`EpochCache`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Lookups that adopted a cached prefix.
    pub hits: u64,
    /// Lookups that fell through to a cold start.
    pub misses: u64,
    /// Prefixes inserted (or refreshed in place).
    pub inserts: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Simulated epoch-seconds adopting cached prefixes avoided (trained
    /// cost of the adopted epochs minus the charged reload cost).
    pub saved_secs: f64,
}

impl CacheStats {
    /// Activity since an earlier snapshot (counters and savings are
    /// cumulative over a shared cache's lifetime; a run reports the
    /// difference).
    #[must_use]
    pub fn delta_since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            inserts: self.inserts - before.inserts,
            evictions: self.evictions - before.evictions,
            saved_secs: self.saved_secs - before.saved_secs,
        }
    }
}

/// One cached trial prefix: the live workload clone (model, optimizer,
/// datasets, training RNG), the system-tuner state, the trial's private
/// RNG stream and the epoch log — everything a fresh trial needs to
/// resume as if it had trained the prefix itself.
#[derive(Debug, Clone)]
pub(crate) struct CacheEntry {
    pub(crate) workload: WorkloadInstance,
    pub(crate) tuner: SystemTuner,
    pub(crate) rng: StdRng,
    pub(crate) records: Vec<EpochRecord>,
    /// Trained-equivalent cost of the prefix (what those epochs cost, or
    /// would have cost, to really train — the donor's charged time plus
    /// whatever the donor itself saved through adoption).
    pub(crate) trained_secs: f64,
    /// Trained-equivalent energy of the prefix.
    pub(crate) trained_energy_j: f64,
    /// LRU timestamp: monotone simulated flush time of last touch.
    last_access: f64,
    /// Insertion sequence number (LRU tie-break).
    seq: u64,
}

impl CacheEntry {
    /// Builds an entry awaiting insertion (the LRU stamp and sequence
    /// number are assigned by the coordinator at flush time).
    pub(crate) fn new(
        workload: WorkloadInstance,
        tuner: SystemTuner,
        rng: StdRng,
        records: Vec<EpochRecord>,
        trained_secs: f64,
        trained_energy_j: f64,
    ) -> Self {
        CacheEntry {
            workload,
            tuner,
            rng,
            records,
            trained_secs,
            trained_energy_j,
            last_access: 0.0,
            seq: 0,
        }
    }
}

/// Everything a fresh trial adopts on a cache hit, precomputed under the
/// read lock: the state clones plus the charged (reload-cost) epoch log.
#[derive(Debug)]
pub(crate) struct CachedPrefix {
    pub(crate) key: CacheKey,
    pub(crate) workload: WorkloadInstance,
    pub(crate) tuner: SystemTuner,
    pub(crate) rng: StdRng,
    /// The prefix's epochs re-labelled [`EpochPhase::Cached`] with reload
    /// costs charged in place of training costs.
    pub(crate) records: Vec<EpochRecord>,
    /// Trained-equivalent cost minus the charged reload cost.
    pub(crate) saved_secs: f64,
    /// Energy analogue of [`CachedPrefix::saved_secs`].
    pub(crate) saved_energy_j: f64,
}

/// A deferred cache mutation, buffered per work item and applied by the
/// coordinator in scheduler request order ([`EpochCacheHandle::flush`]).
#[derive(Debug)]
pub(crate) enum CacheEvent {
    /// A fresh trial adopted the prefix under `key`.
    Hit { key: CacheKey, saved_secs: f64 },
    /// A fresh trial found no usable prefix.
    Miss,
    /// A trial finished a rung at `key.epochs` depth; remember its state.
    Insert { key: CacheKey, entry: Box<CacheEntry> },
}

/// One work item's buffered view of the cache mutations it would make.
///
/// Mirrors [`crate::GtSession`]: sessions are created per scheduler work
/// item, filled on worker threads, and flushed by the coordinator in
/// request order so the cache contents never depend on thread timing.
#[derive(Debug, Default)]
pub struct CacheSession {
    pub(crate) events: Vec<CacheEvent>,
}

/// The content-addressed epoch-reuse store. Most callers interact through
/// an [`EpochCacheHandle`]; the store itself is exposed for persistence
/// and inspection.
#[derive(Debug)]
pub struct EpochCache {
    config: EpochCacheConfig,
    /// `BTreeMap` so iteration (eviction scans, persistence) is ordered
    /// by key, never by insertion hash — a determinism requirement.
    entries: BTreeMap<CacheKey, CacheEntry>,
    stats: CacheStats,
    next_seq: u64,
    /// Monotone-clock bookkeeping: offset accumulated across runs plus
    /// the last raw flush clock seen.
    lru_offset: f64,
    last_clock: f64,
}

impl EpochCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`EpochCacheConfig::validate`]: a zero
    /// capacity or a reload cost factor outside `(0, 1)` would break the
    /// accounting invariants (negative savings, charged cost exceeding
    /// trained cost), so the check is enforced at every construction
    /// site, not just in callers that validate up front.
    pub fn new(config: EpochCacheConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid EpochCacheConfig: {e}");
        }
        EpochCache {
            config,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
            next_seq: 0,
            lru_offset: 0.0,
            last_clock: 0.0,
        }
    }

    /// The knobs in force.
    pub fn config(&self) -> EpochCacheConfig {
        self.config
    }

    /// Number of cached prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no prefix is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The cached keys, in key order (fingerprint, then depth).
    pub fn keys(&self) -> Vec<CacheKey> {
        self.entries.keys().copied().collect()
    }

    /// The deepest cached prefix for `fingerprint` not exceeding
    /// `max_epochs`, with reload costs already charged.
    pub(crate) fn peek(&self, fingerprint: u64, max_epochs: u32) -> Option<CachedPrefix> {
        let lo = CacheKey { fingerprint, epochs: 0 };
        let hi = CacheKey { fingerprint, epochs: max_epochs };
        let (key, entry) = self.entries.range(lo..=hi).next_back()?;
        let factor = self.config.reload_cost_factor;
        let mut charged_secs = 0.0;
        let mut charged_energy = 0.0;
        let records: Vec<EpochRecord> = entry
            .records
            .iter()
            .map(|r| {
                // A record that was itself adopted from the cache already
                // carries a reload cost; charge it verbatim rather than
                // discounting twice.
                let (d, e) = if r.phase == EpochPhase::Cached {
                    (r.duration_secs, r.energy_j)
                } else {
                    (r.duration_secs * factor, r.energy_j * factor)
                };
                charged_secs += d;
                charged_energy += e;
                EpochRecord { duration_secs: d, energy_j: e, phase: EpochPhase::Cached, ..*r }
            })
            .collect();
        Some(CachedPrefix {
            key: *key,
            workload: entry.workload.clone(),
            tuner: entry.tuner.clone(),
            rng: entry.rng.clone(),
            records,
            saved_secs: entry.trained_secs - charged_secs,
            saved_energy_j: entry.trained_energy_j - charged_energy,
        })
    }

    /// Maps a raw per-run flush clock onto the cache's monotone LRU clock
    /// (runs sharing one handle each restart their wall clock at zero).
    fn monotone_now(&mut self, clock: f64) -> f64 {
        if clock < self.last_clock {
            self.lru_offset += self.last_clock;
        }
        self.last_clock = clock;
        self.lru_offset + clock
    }

    /// Applies buffered sessions in the order given (callers pass
    /// scheduler request order) at simulated flush time `clock`, then
    /// enforces the capacity bound.
    pub(crate) fn apply(&mut self, sessions: impl IntoIterator<Item = CacheSession>, clock: f64) {
        let now = self.monotone_now(clock);
        for session in sessions {
            for event in session.events {
                match event {
                    CacheEvent::Hit { key, saved_secs } => {
                        self.stats.hits += 1;
                        self.stats.saved_secs += saved_secs;
                        if let Some(entry) = self.entries.get_mut(&key) {
                            entry.last_access = now;
                        }
                    }
                    CacheEvent::Miss => self.stats.misses += 1,
                    CacheEvent::Insert { key, entry } => {
                        self.stats.inserts += 1;
                        let mut entry = *entry;
                        entry.last_access = now;
                        entry.seq = self.next_seq;
                        self.next_seq += 1;
                        self.entries.insert(key, entry);
                    }
                }
            }
        }
        // Construction validates `capacity >= 1`, so the loop always
        // terminates with at least one entry retained.
        while self.entries.len() > self.config.capacity {
            let victim = self
                .entries
                .iter()
                .min_by(|a, b| {
                    (a.1.last_access, a.1.seq)
                        .partial_cmp(&(b.1.last_access, b.1.seq))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(k, _)| *k)
                .expect("non-empty over-capacity cache");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Serialises every persistable prefix to a JSON file, crash-safely:
    /// the JSON goes to a unique temporary file in the destination
    /// directory and is published with an atomic rename (the same pattern
    /// as `pipetune_tsdb::Database::save`), so a crash mid-save leaves
    /// either the previous file or the new one, never a truncated mix.
    ///
    /// Kernel (Type-III) prefixes carry internal solver state that cannot
    /// be exported as parameters; they are skipped with no error. DNN
    /// prefixes are stored as a reconstruction recipe — spec,
    /// hyperparameters, instantiation seed, the full trained parameter
    /// state (weights plus optimizer gradient/momentum buffers) and both
    /// RNG streams — and resume bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Tsdb`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), PipeTuneError> {
        let entries: Vec<SavedEntry> = self
            .entries
            .iter()
            .filter_map(|(key, entry)| {
                let params = entry.workload.clone().export_params()?;
                Some(SavedEntry {
                    key: *key,
                    spec: *entry.workload.spec(),
                    hp: *entry.workload.hyperparams(),
                    seed: entry.workload.instantiation_seed(),
                    workload_rng: entry.workload.rng_state(),
                    trial_rng: entry.rng.state(),
                    params,
                    tuner: entry.tuner.clone(),
                    records: entry.records.clone(),
                    trained_secs: entry.trained_secs,
                    trained_energy_j: entry.trained_energy_j,
                    last_access: entry.last_access,
                    seq: entry.seq,
                })
            })
            .collect();
        let saved = SavedCache {
            config: self.config,
            entries,
            next_seq: self.next_seq,
            lru_offset: self.lru_offset,
            last_clock: self.last_clock,
        };
        let json = serde_json::to_string(&saved)
            .map_err(|e| PipeTuneError::Tsdb(TsdbError::Corrupt { reason: e.to_string() }))?;
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp_name = format!(
            ".{}.{}.{}.tmp",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("epoch_cache"),
            std::process::id(),
            SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let tmp = match dir {
            Some(d) => d.join(&tmp_name),
            None => std::path::PathBuf::from(&tmp_name),
        };
        std::fs::write(&tmp, json).map_err(|e| PipeTuneError::Tsdb(TsdbError::Io(e)))?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(PipeTuneError::Tsdb(TsdbError::Io(e)));
        }
        Ok(())
    }

    /// Rebuilds a cache from a file written by [`EpochCache::save`]: each
    /// entry's workload is re-instantiated from its spec, hyperparameters
    /// and seed (deterministic), its trained parameter state imported and
    /// both RNG streams restored.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Tsdb`] on I/O or decode failures — a
    /// persisted config that fails [`EpochCacheConfig::validate`] counts
    /// as corrupt — and propagates workload reconstruction failures.
    pub fn load(path: &Path) -> Result<Self, PipeTuneError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| PipeTuneError::Tsdb(TsdbError::Io(e)))?;
        let saved: SavedCache = serde_json::from_str(&text)
            .map_err(|e| PipeTuneError::Tsdb(TsdbError::Corrupt { reason: e.to_string() }))?;
        saved.config.validate().map_err(|e| {
            PipeTuneError::Tsdb(TsdbError::Corrupt {
                reason: format!("persisted epoch cache config is degenerate: {e}"),
            })
        })?;
        let mut cache = EpochCache::new(saved.config);
        cache.next_seq = saved.next_seq;
        cache.lru_offset = saved.lru_offset;
        cache.last_clock = saved.last_clock;
        for e in saved.entries {
            let mut workload = e.spec.instantiate(&e.hp, e.seed)?;
            workload.import_params(&e.params)?;
            workload.restore_training_state(e.workload_rng, e.key.epochs);
            cache.entries.insert(
                e.key,
                CacheEntry {
                    workload,
                    tuner: e.tuner,
                    rng: StdRng::from_state(e.trial_rng),
                    records: e.records,
                    trained_secs: e.trained_secs,
                    trained_energy_j: e.trained_energy_j,
                    last_access: e.last_access,
                    seq: e.seq,
                },
            );
        }
        Ok(cache)
    }
}

/// On-disk form of one cached prefix: a deterministic reconstruction
/// recipe rather than a deep model dump.
#[derive(Debug, Serialize, Deserialize)]
struct SavedEntry {
    key: CacheKey,
    spec: WorkloadSpec,
    hp: HyperParams,
    /// Workload instantiation seed (rebuilds datasets and model shape).
    seed: u64,
    /// The workload's internal training-RNG state after the prefix.
    workload_rng: [u64; 4],
    /// The trial's private RNG stream after the prefix.
    trial_rng: [u64; 4],
    /// Full trained parameter state: weights plus the optimizer's
    /// gradient/momentum buffers, so resumed training is bit-identical.
    params: Vec<pipetune_dnn::Param>,
    tuner: SystemTuner,
    records: Vec<EpochRecord>,
    trained_secs: f64,
    trained_energy_j: f64,
    last_access: f64,
    seq: u64,
}

/// On-disk form of a whole [`EpochCache`].
#[derive(Debug, Serialize, Deserialize)]
struct SavedCache {
    config: EpochCacheConfig,
    entries: Vec<SavedEntry>,
    next_seq: u64,
    lru_offset: f64,
    last_clock: f64,
}

/// Cheap, cloneable entry point to a shared [`EpochCache`], threaded
/// through [`crate::ExperimentEnv::with_epoch_cache`].
///
/// Disabled (the default) it is a `None`: every call is a branch and a
/// return, so instrumented code paths are bypassed entirely and results
/// stay bit-identical to builds without the cache. Enabled, all clones
/// share one `RwLock`-guarded store; workers only ever take the read
/// lock, and the executor's coordinator is the only writer (at batch
/// boundaries, in request order).
///
/// ```
/// use pipetune::{EpochCacheConfig, EpochCacheHandle};
///
/// let off = EpochCacheHandle::disabled();
/// assert!(!off.is_enabled());
/// let cache = EpochCacheHandle::with_config(EpochCacheConfig::default());
/// assert!(cache.is_enabled());
/// assert_eq!(cache.stats().unwrap().hits, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EpochCacheHandle {
    inner: Option<Arc<parking_lot::RwLock<EpochCache>>>,
}

impl EpochCacheHandle {
    /// A disabled handle: every operation is a no-op (the default).
    pub fn disabled() -> Self {
        EpochCacheHandle { inner: None }
    }

    /// A live handle over a fresh, empty cache with the default
    /// configuration.
    pub fn enabled() -> Self {
        EpochCacheHandle::with_config(EpochCacheConfig::default())
    }

    /// A live handle over a fresh, empty cache.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`EpochCacheConfig::validate`] (see
    /// [`EpochCache::new`]).
    pub fn with_config(config: EpochCacheConfig) -> Self {
        EpochCacheHandle {
            inner: Some(Arc::new(parking_lot::RwLock::new(EpochCache::new(config)))),
        }
    }

    /// A live handle over a fresh, empty cache.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`EpochCacheConfig::validate`].
    #[deprecated(since = "0.1.0", note = "renamed to `EpochCacheHandle::with_config`")]
    pub fn new(config: EpochCacheConfig) -> Self {
        EpochCacheHandle::with_config(config)
    }

    /// Wraps an existing store (e.g. one rebuilt by [`EpochCache::load`]).
    pub fn from_cache(cache: EpochCache) -> Self {
        EpochCacheHandle { inner: Some(Arc::new(parking_lot::RwLock::new(cache))) }
    }

    /// Whether lookups and inserts do anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Behaviour counters; `None` when disabled.
    pub fn stats(&self) -> Option<CacheStats> {
        self.inner.as_ref().map(|c| c.read().stats())
    }

    /// Number of cached prefixes; `None` when disabled.
    pub fn len(&self) -> Option<usize> {
        self.inner.as_ref().map(|c| c.read().len())
    }

    /// Returns `true` when disabled or empty.
    pub fn is_empty(&self) -> bool {
        self.len().is_none_or(|n| n == 0)
    }

    /// Runs a closure against the read-locked store (inspection).
    pub fn with_read<R>(&self, f: impl FnOnce(&EpochCache) -> R) -> Option<R> {
        self.inner.as_ref().map(|c| f(&c.read()))
    }

    /// Read-only lookup safe to call concurrently from worker threads:
    /// the deepest cached prefix for `fingerprint` not exceeding
    /// `max_epochs`. Hit/miss accounting is deferred to the caller's
    /// [`CacheSession`].
    pub(crate) fn peek(&self, fingerprint: u64, max_epochs: u32) -> Option<CachedPrefix> {
        self.inner.as_ref()?.read().peek(fingerprint, max_epochs)
    }

    /// Applies buffered sessions in the order given at simulated time
    /// `clock` (coordinator only; no-op when disabled).
    pub(crate) fn flush(&self, sessions: impl IntoIterator<Item = CacheSession>, clock: f64) {
        if let Some(cache) = self.inner.as_ref() {
            cache.write().apply(sessions, clock);
        }
    }

    /// Persists the store ([`EpochCache::save`]); no-op when disabled.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Tsdb`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), PipeTuneError> {
        match self.inner.as_ref() {
            Some(cache) => cache.read().save(path),
            None => Ok(()),
        }
    }

    /// Loads a persisted store into a live handle.
    ///
    /// # Errors
    ///
    /// Returns [`PipeTuneError::Tsdb`] on I/O or decode failures.
    pub fn load(path: &Path) -> Result<Self, PipeTuneError> {
        Ok(Self::from_cache(EpochCache::load(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::{EpochPhase, SystemTuner, TrialExecution};
    use crate::{ExperimentEnv, ProbeGoal};
    use pipetune_cluster::SystemConfig;
    use rand::SeedableRng;

    fn hp(batch: usize, epochs: u32) -> HyperParams {
        HyperParams { batch_size: batch, epochs, ..HyperParams::default() }
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec::lenet_mnist().with_scale(0.2)
    }

    /// Builds a real trained entry at `depth` epochs.
    fn trained_entry(batch: usize, depth: u32, seed: u64) -> (CacheKey, CacheEntry) {
        let env = ExperimentEnv::distributed(3);
        let hp = hp(batch, 9);
        let workload = spec().instantiate(&hp, seed).unwrap();
        let mut exec = TrialExecution::new(workload, SystemTuner::Fixed(env.default_system));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
        exec.run_epochs(&env, depth, None, 1.0, &mut rng).unwrap();
        let key = CacheKey { fingerprint: fingerprint(&spec(), &hp), epochs: depth };
        let entry = CacheEntry {
            workload: exec.workload().clone(),
            tuner: exec.tuner().clone(),
            rng,
            records: exec.records().to_vec(),
            trained_secs: exec.duration_secs(),
            trained_energy_j: exec.energy_j(),
            last_access: 0.0,
            seq: 0,
        };
        (key, entry)
    }

    fn insert_session(key: CacheKey, entry: CacheEntry) -> CacheSession {
        CacheSession { events: vec![CacheEvent::Insert { key, entry: Box::new(entry) }] }
    }

    #[test]
    fn fingerprint_ignores_epochs_but_separates_prefixes() {
        let s = spec();
        let a = fingerprint(&s, &hp(256, 3));
        assert_eq!(a, fingerprint(&s, &hp(256, 27)));
        assert_ne!(a, fingerprint(&s, &hp(512, 3)));
        assert_ne!(
            a,
            fingerprint(&s, &HyperParams { dropout: 0.11, ..hp(256, 3) }),
        );
        assert_ne!(
            a,
            fingerprint(&s, &HyperParams { learning_rate: 0.011, ..hp(256, 3) }),
        );
        assert_ne!(
            a,
            fingerprint(&s, &HyperParams { embedding_dim: 48, ..hp(256, 3) }),
        );
        // Different workload / different scale → different dataset.
        assert_ne!(a, fingerprint(&WorkloadSpec::lenet_fashion().with_scale(0.2), &hp(256, 3)));
        assert_ne!(a, fingerprint(&WorkloadSpec::lenet_mnist(), &hp(256, 3)));
    }

    #[test]
    fn peek_returns_deepest_prefix_within_budget() {
        let mut cache = EpochCache::new(EpochCacheConfig::default());
        let (k2, e2) = trained_entry(256, 2, 7);
        let (k4, e4) = trained_entry(256, 4, 7);
        cache.apply([insert_session(k2, e2), insert_session(k4, e4)], 10.0);
        assert_eq!(cache.peek(k2.fingerprint, 9).unwrap().key.epochs, 4);
        assert_eq!(cache.peek(k2.fingerprint, 3).unwrap().key.epochs, 2);
        assert!(cache.peek(k2.fingerprint, 1).is_none());
        assert!(cache.peek(k2.fingerprint ^ 1, 9).is_none());
    }

    #[test]
    fn charged_records_cost_a_reload_fraction_and_track_savings() {
        let config = EpochCacheConfig::default();
        let mut cache = EpochCache::new(config);
        let (k, e) = trained_entry(256, 3, 7);
        let trained = e.trained_secs;
        cache.apply([insert_session(k, e)], 1.0);
        let prefix = cache.peek(k.fingerprint, 9).unwrap();
        let charged: f64 = prefix.records.iter().map(|r| r.duration_secs).sum();
        assert!(prefix.records.iter().all(|r| r.phase == EpochPhase::Cached));
        assert!((charged - trained * config.reload_cost_factor).abs() < 1e-9);
        assert!((prefix.saved_secs - (trained - charged)).abs() < 1e-9);
        assert!(prefix.saved_secs > 0.0);
    }

    #[test]
    fn adopting_an_adopted_prefix_never_discounts_twice() {
        let config = EpochCacheConfig::default();
        let mut cache = EpochCache::new(config);
        let (k, e) = trained_entry(256, 2, 7);
        cache.apply([insert_session(k, e)], 1.0);
        let first = cache.peek(k.fingerprint, 9).unwrap();
        // Re-insert the adopted (already charged) prefix as a new donor.
        let donor = CacheEntry {
            workload: first.workload.clone(),
            tuner: first.tuner.clone(),
            rng: first.rng.clone(),
            records: first.records.clone(),
            trained_secs: first.records.iter().map(|r| r.duration_secs).sum::<f64>()
                + first.saved_secs,
            trained_energy_j: 0.0,
            last_access: 0.0,
            seq: 0,
        };
        let k3 = CacheKey { epochs: 2, ..k };
        cache.apply([insert_session(k3, donor)], 2.0);
        let second = cache.peek(k.fingerprint, 9).unwrap();
        // Cached-phase records are charged verbatim, not re-discounted.
        for (a, b) in first.records.iter().zip(&second.records) {
            assert_eq!(a.duration_secs.to_bits(), b.duration_secs.to_bits());
        }
        assert!((second.saved_secs - first.saved_secs).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries_with_seq_tiebreak() {
        let mut cache = EpochCache::new(EpochCacheConfig {
            capacity: 2,
            ..EpochCacheConfig::default()
        });
        let (k1, e1) = trained_entry(128, 1, 1);
        let (k2, e2) = trained_entry(256, 1, 2);
        cache.apply([insert_session(k1, e1)], 1.0);
        cache.apply([insert_session(k2, e2)], 2.0);
        // Touch k1 at t=3 so k2 becomes the LRU entry.
        cache.apply(
            [CacheSession { events: vec![CacheEvent::Hit { key: k1, saved_secs: 0.0 }] }],
            3.0,
        );
        let (k3, e3) = trained_entry(512, 1, 3);
        cache.apply([insert_session(k3, e3)], 4.0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let keys = cache.keys();
        assert!(keys.contains(&k1), "recently hit entry survives");
        assert!(keys.contains(&k3), "new entry survives");
        assert!(!keys.contains(&k2), "stale entry evicted");

        // Same-timestamp tie: the earlier seq goes first.
        let mut cache = EpochCache::new(EpochCacheConfig {
            capacity: 2,
            ..EpochCacheConfig::default()
        });
        let (k1, e1) = trained_entry(128, 1, 1);
        let (k2, e2) = trained_entry(256, 1, 2);
        let (k3, e3) = trained_entry(512, 1, 3);
        cache.apply([insert_session(k1, e1), insert_session(k2, e2)], 1.0);
        cache.apply([insert_session(k3, e3)], 2.0);
        assert!(!cache.keys().contains(&k1), "first-inserted entry evicted on tie");
    }

    #[test]
    fn lru_clock_stays_monotone_across_runs() {
        let mut cache = EpochCache::new(EpochCacheConfig {
            capacity: 2,
            ..EpochCacheConfig::default()
        });
        let (k1, e1) = trained_entry(128, 1, 1);
        cache.apply([insert_session(k1, e1)], 100.0);
        // A new run restarts its wall clock near zero; without the offset
        // its entries would look *older* than the previous run's.
        let (k2, e2) = trained_entry(256, 1, 2);
        cache.apply([insert_session(k2, e2)], 5.0);
        let (k3, e3) = trained_entry(512, 1, 3);
        cache.apply([insert_session(k3, e3)], 6.0);
        // k1 (monotone time 100) is LRU vs k2 (105) and k3 (106).
        assert!(!cache.keys().contains(&k1));
        assert!(cache.keys().contains(&k2) && cache.keys().contains(&k3));
    }

    #[test]
    fn stats_account_hits_misses_inserts_and_savings() {
        let mut cache = EpochCache::new(EpochCacheConfig::default());
        let (k, e) = trained_entry(256, 2, 7);
        cache.apply(
            [
                CacheSession { events: vec![CacheEvent::Miss] },
                insert_session(k, e),
                CacheSession {
                    events: vec![CacheEvent::Hit { key: k, saved_secs: 12.5 }],
                },
            ],
            1.0,
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts, stats.evictions), (1, 1, 1, 0));
        assert!((stats.saved_secs - 12.5).abs() < 1e-12);
    }

    #[test]
    fn save_load_round_trip_resumes_deterministically() {
        let mut cache = EpochCache::new(EpochCacheConfig::default());
        let (k, e) = trained_entry(256, 3, 11);
        cache.apply([insert_session(k, e)], 1.0);
        let dir = std::env::temp_dir().join("pipetune_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        cache.save(&path).unwrap();
        let loaded = EpochCache::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 1);
        let a = cache.peek(k.fingerprint, 9).unwrap();
        let b = loaded.peek(k.fingerprint, 9).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.rng, b.rng, "trial RNG stream restored exactly");
        assert_eq!(a.records.len(), b.records.len());
        // The reconstructed workload continues identically to the live one:
        // same held-out accuracy now and after one more epoch.
        let mut wa = a.workload;
        let mut wb = b.workload;
        use crate::workload::EpochWorkload;
        assert_eq!(wa.epochs_run(), wb.epochs_run());
        assert_eq!(wa.accuracy().unwrap().to_bits(), wb.accuracy().unwrap().to_bits());
        wa.run_epoch().unwrap();
        wb.run_epoch().unwrap();
        assert_eq!(wa.accuracy().unwrap().to_bits(), wb.accuracy().unwrap().to_bits());
    }

    #[test]
    fn kernel_prefixes_are_skipped_on_save() {
        let env = ExperimentEnv::distributed(3);
        let hp = hp(256, 9);
        let kspec = WorkloadSpec::jacobi().with_scale(0.2);
        let workload = kspec.instantiate(&hp, 5).unwrap();
        let mut exec =
            TrialExecution::new(workload, SystemTuner::pipelined(ProbeGoal::Runtime));
        let mut rng = StdRng::seed_from_u64(5);
        exec.run_epochs(&env, 2, None, 1.0, &mut rng).unwrap();
        let key = CacheKey { fingerprint: fingerprint(&kspec, &hp), epochs: 2 };
        let entry = CacheEntry {
            workload: exec.workload().clone(),
            tuner: exec.tuner().clone(),
            rng,
            records: exec.records().to_vec(),
            trained_secs: exec.duration_secs(),
            trained_energy_j: exec.energy_j(),
            last_access: 0.0,
            seq: 0,
        };
        let mut cache = EpochCache::new(EpochCacheConfig::default());
        cache.apply([insert_session(key, entry)], 1.0);
        let dir = std::env::temp_dir().join("pipetune_cache_kernel_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        cache.save(&path).unwrap();
        let loaded = EpochCache::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 0, "kernel prefixes have no exportable weights");
    }

    #[test]
    fn trial_identity_separates_every_component() {
        let base = trial_identity(1, 2, 3, 4, 1.0);
        assert_eq!(base, trial_identity(1, 2, 3, 4, 1.0), "pure function of its inputs");
        assert_ne!(base, trial_identity(9, 2, 3, 4, 1.0), "config fingerprint");
        assert_ne!(base, trial_identity(1, 9, 3, 4, 1.0), "instantiation seed");
        assert_ne!(base, trial_identity(1, 2, 9, 4, 1.0), "trial RNG seed");
        assert_ne!(base, trial_identity(1, 2, 3, 9, 1.0), "tuner policy");
        assert_ne!(base, trial_identity(1, 2, 3, 4, 2.0), "contention factor");
    }

    #[test]
    fn tuner_policy_discriminates_policies_not_progress() {
        let fixed_a = tuner_policy(&SystemTuner::Fixed(SystemConfig::new(4, 4)));
        let fixed_b = tuner_policy(&SystemTuner::Fixed(SystemConfig::new(8, 4)));
        let pipe_rt = tuner_policy(&SystemTuner::pipelined(ProbeGoal::Runtime));
        let pipe_en = tuner_policy(&SystemTuner::pipelined(ProbeGoal::Energy));
        assert_ne!(fixed_a, fixed_b, "fixed configs are distinct policies");
        assert_ne!(pipe_rt, pipe_en, "probe goals are distinct policies");
        assert_ne!(fixed_a, pipe_rt, "fixed vs pipelined never collide");
        // Evolved probe state must not change the discriminant: the key
        // pins the policy a prefix started from, not its progress.
        let mut evolved = SystemTuner::pipelined(ProbeGoal::Runtime);
        if let SystemTuner::Pipelined { probe_results, features, chosen, .. } = &mut evolved {
            probe_results.push((SystemConfig::new(4, 4), 1.0));
            *features = Some(vec![1.0, 2.0]);
            *chosen = Some(SystemConfig::new(16, 32));
        }
        assert_eq!(tuner_policy(&evolved), pipe_rt);
    }

    #[test]
    #[should_panic(expected = "invalid EpochCacheConfig")]
    fn zero_capacity_cache_panics_at_construction() {
        let _ = EpochCache::new(EpochCacheConfig { capacity: 0, ..EpochCacheConfig::default() });
    }

    #[test]
    #[should_panic(expected = "invalid EpochCacheConfig")]
    fn degenerate_reload_factor_handle_panics_at_construction() {
        let _ = EpochCacheHandle::with_config(EpochCacheConfig {
            reload_cost_factor: 1.5,
            ..EpochCacheConfig::default()
        });
    }

    #[test]
    fn load_rejects_persisted_degenerate_config() {
        let saved = SavedCache {
            config: EpochCacheConfig { capacity: 0, ..EpochCacheConfig::default() },
            entries: Vec::new(),
            next_seq: 0,
            lru_offset: 0.0,
            last_clock: 0.0,
        };
        let path = std::env::temp_dir()
            .join(format!("pipetune-degenerate-cache-{}.json", std::process::id()));
        std::fs::write(&path, serde_json::to_string(&saved).unwrap()).unwrap();
        let err = EpochCache::load(&path);
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, Err(PipeTuneError::Tsdb(TsdbError::Corrupt { .. }))),
            "a degenerate persisted config must read as corrupt, got {err:?}"
        );
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        assert!(EpochCacheConfig::default().validate().is_ok());
        assert!(EpochCacheConfig { capacity: 0, ..EpochCacheConfig::default() }
            .validate()
            .is_err());
        for bad in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(
                EpochCacheConfig { reload_cost_factor: bad, ..EpochCacheConfig::default() }
                    .validate()
                    .is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = EpochCacheHandle::disabled();
        assert!(!h.is_enabled());
        assert!(h.stats().is_none());
        assert!(h.len().is_none());
        assert!(h.is_empty());
        assert!(h.peek(1, 9).is_none());
        h.flush([CacheSession::default()], 1.0);
        assert!(h.save(Path::new("/nonexistent/never-written.json")).is_ok());
        // SystemConfig only used via trained_entry; silence unused import
        // warnings on cfg(test) paths.
        let _ = SystemConfig::new(4, 4);
    }

    #[test]
    fn handle_clones_share_one_store() {
        let h = EpochCacheHandle::with_config(EpochCacheConfig::default());
        let h2 = h.clone();
        let (k, e) = trained_entry(256, 1, 3);
        h.flush([insert_session(k, e)], 1.0);
        assert_eq!(h2.len(), Some(1));
        assert!(h2.peek(k.fingerprint, 9).is_some());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn hp_strategy() -> impl Strategy<Value = HyperParams> {
            // Paper ranges, discretised enough that independently drawn
            // configs frequently share a prefix — the overlap the cache
            // exploits.
            (
                prop::sample::select(vec![32usize, 64, 128, 256, 512, 1024]),
                prop::sample::select(vec![0.0f32, 0.1, 0.25, 0.5]),
                prop::sample::select(vec![50usize, 100, 300]),
                prop::sample::select(vec![0.001f32, 0.01, 0.1]),
                1u32..=30,
            )
                .prop_map(|(batch_size, dropout, embedding_dim, learning_rate, epochs)| {
                    HyperParams { batch_size, dropout, embedding_dim, learning_rate, epochs }
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The fingerprint is exactly the hyperparameter prefix: blind
            /// to `epochs`, injective (modulo 64-bit collisions) in every
            /// other field over the paper's grid.
            #[test]
            fn fingerprint_equality_is_prefix_equality(a in hp_strategy(), b in hp_strategy()) {
                let spec = WorkloadSpec::lenet_mnist();
                let same_prefix = a.batch_size == b.batch_size
                    && a.dropout == b.dropout
                    && a.embedding_dim == b.embedding_dim
                    && a.learning_rate == b.learning_rate;
                prop_assert_eq!(
                    fingerprint(&spec, &a) == fingerprint(&spec, &b),
                    same_prefix,
                    "fingerprints must coincide exactly when the prefixes do: {:?} vs {:?}", a, b
                );
            }

            /// For any population of trained prefixes with overlapping
            /// hyperparameter prefixes, a lookup adopts the deepest cached
            /// depth not exceeding the budget — never a deeper one, never
            /// a shallower one when a deeper qualifying prefix exists.
            #[test]
            fn peek_always_adopts_the_deepest_affordable_prefix(
                depths in prop::collection::btree_set(1u32..=12, 1..6),
                others in prop::collection::vec((prop::sample::select(vec![64usize, 512]), 1u32..=12), 0..4),
                budget in 1u32..=14,
            ) {
                let mut cache = EpochCache::new(EpochCacheConfig::default());
                let mut session = CacheSession::default();
                // One fingerprint with several depths...
                for &d in &depths {
                    let (k, e) = trained_entry(256, d, 7);
                    session.events.push(CacheEvent::Insert { key: k, entry: Box::new(e) });
                }
                // ...plus unrelated prefixes that must never be adopted.
                for &(batch, d) in &others {
                    let (k, e) = trained_entry(batch, d, 7);
                    session.events.push(CacheEvent::Insert { key: k, entry: Box::new(e) });
                }
                cache.apply([session], 1.0);
                let fp = fingerprint(&spec(), &hp(256, 1));
                let expect = depths.iter().copied().filter(|&d| d <= budget).max();
                match (cache.peek(fp, budget), expect) {
                    (Some(prefix), Some(d)) => {
                        prop_assert_eq!(prefix.key.epochs, d);
                        prop_assert_eq!(prefix.key.fingerprint, fp);
                    }
                    (None, None) => {}
                    (got, want) => {
                        return Err(TestCaseError::fail(format!(
                            "peek budget {budget} over {depths:?}: got {:?}, want depth {want:?}",
                            got.map(|p| p.key)
                        )));
                    }
                }
            }
        }
    }
}
