//! Experiment environment: the simulated testbed every run executes against.
//!
//! Construct environments through [`ExperimentEnvBuilder`] (the validating
//! front door) or the [`ExperimentEnv::distributed`] /
//! [`ExperimentEnv::single_node`] presets plus `with_*` conveniences, which
//! are thin infallible wrappers that clamp instead of rejecting.

use pipetune_cluster::{ClusterSpec, CostModel, FaultPlan, RetryPolicy, SystemConfig, SystemSpace};
use pipetune_energy::PowerModel;
use pipetune_monitor::MonitorHandle;
use pipetune_perfmon::Profiler;
use pipetune_telemetry::TelemetryHandle;

use crate::cache::EpochCacheHandle;
use crate::error::InvalidConfig;

/// Bundles the simulated infrastructure (§7.1.1): cluster inventory, cost
/// model, power model, PMU, system-parameter grid, default trial
/// configuration and trial parallelism.
#[derive(Debug, Clone)]
pub struct ExperimentEnv {
    /// Node inventory.
    pub cluster: ClusterSpec,
    /// Epoch-duration model.
    pub cost: CostModel,
    /// Node power model.
    pub power: PowerModel,
    /// Simulated PMU.
    pub profiler: Profiler,
    /// System-parameter grid PipeTune probes.
    pub system_space: SystemSpace,
    /// System configuration trials run with before tuning (and always, for
    /// Tune V1).
    pub default_system: SystemConfig,
    /// Trials that can run concurrently (the paper spawns trials across the
    /// cluster asynchronously). This is the *simulated* slot count that
    /// shapes wall-clock accounting; real executor threads are governed by
    /// [`ExperimentEnv::workers`].
    pub parallel_slots: usize,
    /// Executor threads that really train trials concurrently. Defaults to
    /// the machine's available parallelism; results are identical for every
    /// value (see the determinism contract in `DESIGN.md`), so this only
    /// trades wall-clock time for CPU. Values are clamped to at least 1.
    pub workers: usize,
    /// Relative wall-clock overhead profiling adds to a profiled epoch
    /// (§7.3 reports it as small; the profiling-overhead ablation sweeps it).
    pub profile_overhead: f64,
    /// Deterministic fault schedule (node crashes, stragglers, counter-read
    /// failures, preemptions). Empty by default; runs under the empty plan
    /// are bit-identical to runs without fault injection.
    pub fault_plan: FaultPlan,
    /// Retry budget and simulated-time backoff for crash recovery.
    pub retry: RetryPolicy,
    /// Profile through the 1 Hz sampling pipeline (counter multiplexing,
    /// blind spots on short epochs) instead of the closed-form epoch
    /// average. Off by default; the sampling extension turns it on.
    pub sampled_profiling: bool,
    /// Structured observability (spans, events, metrics). Disabled by
    /// default — a disabled handle is a no-op at every instrumentation
    /// site and leaves all run results bit-identical to uninstrumented
    /// builds. Enable with [`ExperimentEnv::with_telemetry`]; exported
    /// traces are byte-identical for every [`ExperimentEnv::workers`]
    /// count (see `docs/telemetry.md`).
    pub telemetry: TelemetryHandle,
    /// Online monitoring (see `docs/monitoring.md`). Disabled by default —
    /// a disabled handle is a no-op at every scan site. Enable with
    /// [`ExperimentEnv::with_monitor`]; the runner then feeds the
    /// telemetry stream through the configured detectors incrementally,
    /// after every scheduler round, and the resulting incident timeline
    /// is byte-identical for every [`ExperimentEnv::workers`] count.
    pub monitor: MonitorHandle,
    /// Cross-trial epoch-reuse cache (see `docs/reuse.md`). Disabled by
    /// default — a disabled handle bypasses every lookup/insert site and
    /// leaves run results bit-identical to cache-free builds. Enable with
    /// [`ExperimentEnv::with_epoch_cache`]; with the cache on, results are
    /// byte-identical for every [`ExperimentEnv::workers`] count.
    pub epoch_cache: crate::cache::EpochCacheHandle,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
}

impl ExperimentEnv {
    /// The distributed Type-I/II testbed: 4 nodes, default 4-core/4-GiB
    /// trial slots, paper system grid.
    pub fn distributed(seed: u64) -> Self {
        ExperimentEnv {
            cluster: ClusterSpec::paper_distributed(),
            cost: CostModel::default(),
            power: PowerModel::default(),
            profiler: Profiler::default(),
            system_space: SystemSpace::default(),
            default_system: SystemConfig::new(8, 32),
            parallel_slots: 4,
            workers: default_workers(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            profile_overhead: 0.02,
            sampled_profiling: false,
            telemetry: TelemetryHandle::disabled(),
            monitor: MonitorHandle::disabled(),
            epoch_cache: crate::cache::EpochCacheHandle::disabled(),
            seed,
        }
    }

    /// The single-node Type-III testbed (one 8-core/24-GiB node, smaller
    /// grid, 2 concurrent trials).
    pub fn single_node(seed: u64) -> Self {
        ExperimentEnv {
            cluster: ClusterSpec::paper_single_node(),
            cost: CostModel::default(),
            power: PowerModel::default(),
            profiler: Profiler::default(),
            system_space: SystemSpace {
                cores: vec![2, 4, 8],
                memory_gb: vec![4, 8, 16],
                freq_mhz: vec![SystemConfig::NOMINAL_FREQ_MHZ],
            },
            default_system: SystemConfig::new(4, 8),
            parallel_slots: 2,
            workers: default_workers(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            profile_overhead: 0.02,
            sampled_profiling: false,
            telemetry: TelemetryHandle::disabled(),
            monitor: MonitorHandle::disabled(),
            epoch_cache: crate::cache::EpochCacheHandle::disabled(),
            seed,
        }
    }

    /// Whole-cluster power draw while one trial runs on `cores` busy cores
    /// — the quantity the paper's PDU measures (every node idles at its
    /// floor regardless of where the trial is placed).
    pub fn trial_power_watts(&self, cores: u32) -> f64 {
        let idle_floor = self.power.idle_watts * self.cluster.nodes.len() as f64;
        idle_floor + (self.power.power_watts(cores, 1.0) - self.power.idle_watts)
    }

    /// Frequency-aware variant of [`ExperimentEnv::trial_power_watts`]:
    /// dynamic power follows the DVFS cubic law.
    pub fn trial_power(&self, sys: &SystemConfig) -> f64 {
        let idle_floor = self.power.idle_watts * self.cluster.nodes.len() as f64;
        idle_floor
            + (self.power.power_watts_at_freq(sys.cores, 1.0, sys.freq_ratio())
                - self.power.idle_watts)
    }

    /// Pins the real executor thread count (e.g. `with_workers(1)` for a
    /// strictly sequential run; the replay-equivalence tests compare it to
    /// multi-worker runs byte for byte).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Installs a fault schedule (see [`FaultPlan`]); the empty plan keeps
    /// runs bit-identical to fault-free builds.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Overrides the crash-recovery retry budget and backoff.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the master seed (every stochastic component re-derives
    /// from it). A multi-job service uses this to give each admitted job
    /// its own decorrelated environment via [`ExperimentEnv::subseed`].
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the simulated concurrent-trial slot count (clamped to at
    /// least 1). A multi-job service partitions the cluster's slot pool
    /// and hands each job a slice through this builder.
    #[must_use]
    pub fn with_parallel_slots(mut self, slots: usize) -> Self {
        self.parallel_slots = slots.max(1);
        self
    }

    /// Installs a telemetry handle. Pass
    /// [`TelemetryHandle::enabled`] to record spans, events and metrics
    /// for every run executed against this environment; keep the handle
    /// (or a clone) to snapshot and export them afterwards.
    ///
    /// ```
    /// use pipetune::ExperimentEnv;
    /// use pipetune_telemetry::TelemetryHandle;
    ///
    /// let telemetry = TelemetryHandle::enabled();
    /// let env = ExperimentEnv::distributed(42).with_telemetry(telemetry.clone());
    /// assert!(env.telemetry.is_enabled());
    /// // ... run a tuner against `env`, then:
    /// let snapshot = telemetry.snapshot().unwrap();
    /// assert_eq!(snapshot.spans.len(), 0); // nothing ran yet
    /// ```
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Installs a monitor handle. With a live handle (and a live
    /// [`ExperimentEnv::with_telemetry`] handle to watch), the runner
    /// incrementally scans the telemetry stream through the configured
    /// detectors after every scheduler round; call
    /// [`pipetune_monitor::MonitorHandle::finish`] afterwards for the
    /// incident timeline.
    ///
    /// ```
    /// use pipetune::ExperimentEnv;
    /// use pipetune_monitor::{MonitorConfig, MonitorHandle};
    /// use pipetune_telemetry::TelemetryHandle;
    ///
    /// let telemetry = TelemetryHandle::enabled();
    /// let monitor = MonitorHandle::with_config(&MonitorConfig::standard());
    /// let env = ExperimentEnv::distributed(42)
    ///     .with_telemetry(telemetry.clone())
    ///     .with_monitor(monitor.clone());
    /// assert!(env.monitor.is_enabled());
    /// // ... run a tuner against `env`, then:
    /// let timeline = monitor.finish(&telemetry).unwrap();
    /// assert!(timeline.is_empty()); // nothing ran yet
    /// ```
    #[must_use]
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        self.monitor = monitor;
        self
    }

    /// Installs an epoch-reuse cache handle. Fresh trials then resume from
    /// the deepest cached hyperparameter-prefix match instead of training
    /// from epoch 0; share one handle (or clones of it) across runs and
    /// jobs to reuse prefixes between them (see `docs/reuse.md`).
    ///
    /// ```
    /// use pipetune::{EpochCacheConfig, EpochCacheHandle, ExperimentEnv};
    ///
    /// let cache = EpochCacheHandle::with_config(EpochCacheConfig::default());
    /// let env = ExperimentEnv::distributed(42).with_epoch_cache(cache.clone());
    /// assert!(env.epoch_cache.is_enabled());
    /// // ... run a tuner against `env`, then:
    /// assert_eq!(cache.stats().unwrap().hits, 0); // nothing ran yet
    /// ```
    #[must_use]
    pub fn with_epoch_cache(mut self, cache: crate::cache::EpochCacheHandle) -> Self {
        self.epoch_cache = cache;
        self
    }

    /// Derives a sub-seed for a named component, decorrelated from others.
    pub fn subseed(&self, tag: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag)
            .rotate_left(17)
    }
}

/// Executor threads to use when the caller does not pin a count.
fn default_workers() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Validating builder for [`ExperimentEnv`]: the single place every
/// environment invariant is checked.
///
/// The `with_*` conveniences on [`ExperimentEnv`] stay infallible by
/// clamping out-of-range values; this builder instead records exactly what
/// the caller asked for and rejects contradictions in
/// [`ExperimentEnvBuilder::build`] with a typed [`InvalidConfig`]. Prefer it
/// anywhere a bad configuration should be an error rather than silently
/// repaired — every example and benchmark binary in this repository
/// constructs its environment through it.
///
/// ```
/// use pipetune::prelude::*;
///
/// let env = ExperimentEnvBuilder::distributed(42)
///     .workers(1)
///     .parallel_slots(2)
///     .build()?;
/// assert_eq!((env.workers, env.parallel_slots), (1, 2));
///
/// let err = ExperimentEnvBuilder::distributed(42).workers(0).build();
/// assert!(err.is_err());
/// # Ok::<(), pipetune::InvalidConfig>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentEnvBuilder {
    env: ExperimentEnv,
}

impl ExperimentEnvBuilder {
    /// Starts from the distributed Type-I/II testbed preset
    /// (see [`ExperimentEnv::distributed`]).
    pub fn distributed(seed: u64) -> Self {
        ExperimentEnvBuilder { env: ExperimentEnv::distributed(seed) }
    }

    /// Starts from the single-node Type-III testbed preset
    /// (see [`ExperimentEnv::single_node`]).
    pub fn single_node(seed: u64) -> Self {
        ExperimentEnvBuilder { env: ExperimentEnv::single_node(seed) }
    }

    /// Starts from an existing environment (e.g. to re-validate or derive a
    /// variant of one).
    pub fn from_env(env: ExperimentEnv) -> Self {
        ExperimentEnvBuilder { env }
    }

    /// Requests exactly `workers` real executor threads. Unlike
    /// [`ExperimentEnv::with_workers`] this does not clamp: `0` is rejected
    /// by [`ExperimentEnvBuilder::build`].
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.env.workers = workers;
        self
    }

    /// Requests `slots` simulated concurrent-trial slots. `0` is rejected
    /// by [`ExperimentEnvBuilder::build`].
    #[must_use]
    pub fn parallel_slots(mut self, slots: usize) -> Self {
        self.env.parallel_slots = slots;
        self
    }

    /// Sets the relative wall-clock overhead a profiled epoch pays.
    /// Negative or non-finite values are rejected by
    /// [`ExperimentEnvBuilder::build`].
    #[must_use]
    pub fn profile_overhead(mut self, overhead: f64) -> Self {
        self.env.profile_overhead = overhead;
        self
    }

    /// Installs a deterministic fault schedule.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.env.fault_plan = plan;
        self
    }

    /// Overrides the crash-recovery retry budget and backoff.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.env.retry = retry;
        self
    }

    /// Replaces the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.env.seed = seed;
        self
    }

    /// Routes profiling through the 1 Hz sampling pipeline.
    #[must_use]
    pub fn sampled_profiling(mut self, on: bool) -> Self {
        self.env.sampled_profiling = on;
        self
    }

    /// Replaces the default (pre-tuning) system configuration. A
    /// configuration with zero cores or memory is rejected by
    /// [`ExperimentEnvBuilder::build`].
    #[must_use]
    pub fn default_system(mut self, sys: SystemConfig) -> Self {
        self.env.default_system = sys;
        self
    }

    /// Installs a telemetry handle (see [`ExperimentEnv::with_telemetry`]).
    #[must_use]
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.env.telemetry = telemetry;
        self
    }

    /// Installs a monitor handle. A live monitor without a live telemetry
    /// handle to watch is rejected by [`ExperimentEnvBuilder::build`].
    #[must_use]
    pub fn monitor(mut self, monitor: MonitorHandle) -> Self {
        self.env.monitor = monitor;
        self
    }

    /// Installs an epoch-reuse cache handle
    /// (see [`ExperimentEnv::with_epoch_cache`]).
    #[must_use]
    pub fn epoch_cache(mut self, cache: EpochCacheHandle) -> Self {
        self.env.epoch_cache = cache;
        self
    }

    /// Validates every recorded setting and produces the environment.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] when:
    /// * `workers` is 0 — a run needs at least one executor thread;
    /// * `parallel_slots` is 0 — the scheduler needs at least one slot;
    /// * `profile_overhead` is negative or non-finite — overhead scales
    ///   epoch durations and must keep them finite and non-negative;
    /// * the default system configuration has zero cores or memory;
    /// * a live monitor is installed without a live telemetry handle — the
    ///   monitor scans the telemetry stream, so it would silently observe
    ///   nothing.
    pub fn build(self) -> Result<ExperimentEnv, InvalidConfig> {
        let env = self.env;
        if env.workers == 0 {
            return Err(InvalidConfig::new("workers must be at least 1"));
        }
        if env.parallel_slots == 0 {
            return Err(InvalidConfig::new("parallel_slots must be at least 1"));
        }
        if !env.profile_overhead.is_finite() || env.profile_overhead < 0.0 {
            return Err(InvalidConfig::new(format!(
                "profile_overhead must be finite and non-negative, got {}",
                env.profile_overhead
            )));
        }
        if env.default_system.cores == 0 || env.default_system.memory_gb == 0 {
            return Err(InvalidConfig::new(format!(
                "default system configuration must have nonzero cores and memory, got {} cores / {} GiB",
                env.default_system.cores, env.default_system.memory_gb
            )));
        }
        if env.monitor.is_enabled() && !env.telemetry.is_enabled() {
            return Err(InvalidConfig::new(
                "a live monitor requires a live telemetry handle to watch; \
                 install one with .telemetry(TelemetryHandle::enabled())",
            ));
        }
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbeds_match_section_7_1() {
        let d = ExperimentEnv::distributed(1);
        assert_eq!(d.cluster.nodes.len(), 4);
        assert_eq!(d.system_space.len(), 12);
        let s = ExperimentEnv::single_node(1);
        assert_eq!(s.cluster.nodes.len(), 1);
        assert!(s.system_space.len() < d.system_space.len());
    }

    #[test]
    fn trial_power_includes_cluster_idle_floor_and_dvfs() {
        let env = ExperimentEnv::distributed(3);
        let nominal = env.trial_power(&SystemConfig::new(8, 16));
        assert_eq!(nominal, env.trial_power_watts(8));
        let slow = env.trial_power(&SystemConfig {
            freq_mhz: SystemConfig::NOMINAL_FREQ_MHZ / 2,
            ..SystemConfig::new(8, 16)
        });
        assert!(slow < nominal, "down-clocking must cut power");
        let idle_floor = env.power.idle_watts * env.cluster.nodes.len() as f64;
        assert!(slow > idle_floor, "idle floor always drawn");
    }

    #[test]
    fn builder_accepts_valid_configurations() {
        let env = ExperimentEnvBuilder::distributed(9)
            .workers(3)
            .parallel_slots(2)
            .profile_overhead(0.1)
            .seed(11)
            .sampled_profiling(true)
            .build()
            .unwrap();
        assert_eq!(env.workers, 3);
        assert_eq!(env.parallel_slots, 2);
        assert_eq!(env.profile_overhead, 0.1);
        assert_eq!(env.seed, 11);
        assert!(env.sampled_profiling);
        // Presets round-trip unchanged through the builder.
        let preset = ExperimentEnv::single_node(4);
        let rebuilt = ExperimentEnvBuilder::from_env(preset.clone()).build().unwrap();
        assert_eq!(rebuilt.parallel_slots, preset.parallel_slots);
        assert_eq!(rebuilt.seed, preset.seed);
    }

    #[test]
    fn builder_rejects_each_invalid_setting() {
        let cases: Vec<(ExperimentEnvBuilder, &str)> = vec![
            (ExperimentEnvBuilder::distributed(1).workers(0), "workers"),
            (ExperimentEnvBuilder::distributed(1).parallel_slots(0), "parallel_slots"),
            (ExperimentEnvBuilder::distributed(1).profile_overhead(-0.5), "profile_overhead"),
            (ExperimentEnvBuilder::distributed(1).profile_overhead(f64::NAN), "profile_overhead"),
            (
                ExperimentEnvBuilder::distributed(1)
                    .profile_overhead(f64::INFINITY),
                "profile_overhead",
            ),
            (
                ExperimentEnvBuilder::distributed(1).default_system(SystemConfig::new(0, 8)),
                "default system",
            ),
            (
                ExperimentEnvBuilder::distributed(1).monitor(MonitorHandle::enabled()),
                "monitor",
            ),
        ];
        for (builder, expect) in cases {
            let err = builder.build().expect_err(expect);
            assert!(
                err.reason().contains(expect),
                "reason {:?} should mention {expect}",
                err.reason()
            );
        }
        // The monitor invariant is satisfied once telemetry is live.
        let ok = ExperimentEnvBuilder::distributed(1)
            .telemetry(TelemetryHandle::enabled())
            .monitor(MonitorHandle::enabled())
            .build()
            .unwrap();
        assert!(ok.monitor.is_enabled() && ok.telemetry.is_enabled());
    }

    #[test]
    fn with_wrappers_clamp_where_builder_rejects() {
        // The infallible conveniences repair instead of erroring; the
        // builder is the strict path.
        assert_eq!(ExperimentEnv::distributed(1).with_workers(0).workers, 1);
        assert_eq!(ExperimentEnv::distributed(1).with_parallel_slots(0).parallel_slots, 1);
    }

    #[test]
    fn subseeds_differ_by_tag_and_seed() {
        let e = ExperimentEnv::distributed(7);
        assert_ne!(e.subseed(1), e.subseed(2));
        assert_ne!(e.subseed(1), ExperimentEnv::distributed(8).subseed(1));
    }
}
