//! Shared-cluster multi-tenancy: overlapping jobs under processor sharing.
//!
//! The FIFO driver in [`crate::multi_tenancy`] matches the paper's §5.1
//! scheduling assumption (one HPT job at a time). This module models the
//! *other* regime the paper probes in Fig. 5: jobs co-located on the same
//! cores, each slowed by the number of concurrently active tenants. Jobs
//! start on arrival; the cluster is processor-shared, so a job's remaining
//! service shrinks at rate `1/active_jobs`. The event simulation is exact
//! for that fluid model.

use pipetune_cluster::{EventQueue, SimTime};
use serde::{Deserialize, Serialize};

use crate::PipeTuneError;

/// One tenant job: arrival time and the service it needs when alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedJob {
    /// Arrival, simulated seconds.
    pub arrival_secs: f64,
    /// Dedicated-cluster service time, simulated seconds.
    pub service_secs: f64,
}

/// Completion record produced by [`simulate_processor_sharing`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedCompletion {
    /// Index into the input job list.
    pub job: usize,
    /// Completion time, simulated seconds.
    pub completion_secs: f64,
    /// Response time (completion − arrival).
    pub response_secs: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Arrival(usize),
}

/// Shared input validation: arrivals must be finite and non-negative,
/// services finite and non-negative. Zero-service jobs are legal — they
/// complete the instant they arrive (a rejected or trivially warm-started
/// job) — and an empty job list yields an empty completion list.
fn validate_jobs(jobs: &[SharedJob]) -> Result<(), PipeTuneError> {
    for (i, j) in jobs.iter().enumerate() {
        if !(j.arrival_secs.is_finite() && j.service_secs.is_finite())
            || j.arrival_secs < 0.0
            || j.service_secs < 0.0
        {
            return Err(PipeTuneError::InvalidConfig {
                reason: format!("job {i} has invalid arrival/service"),
            });
        }
    }
    Ok(())
}

/// Simulates a FIFO queue served by `servers` identical executors: jobs
/// start in arrival order as servers free up, each running dedicated (no
/// slowdown). `servers = 1` is the paper's §5.1 FIFO; more servers model a
/// cluster split into independent HPT slots.
///
/// Returns completions sorted by completion time.
///
/// # Errors
///
/// Returns [`PipeTuneError::InvalidConfig`] for zero servers or invalid
/// jobs.
pub fn simulate_fifo(
    jobs: &[SharedJob],
    servers: usize,
) -> Result<Vec<SharedCompletion>, PipeTuneError> {
    if servers == 0 {
        return Err(PipeTuneError::InvalidConfig { reason: "servers must be positive".into() });
    }
    validate_jobs(jobs)?;
    // FIFO by arrival time (stable on ties by index, so simultaneous
    // arrivals are served in submission order).
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .arrival_secs
            .partial_cmp(&jobs[b].arrival_secs)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    // Server free times in exact f64 seconds. An earlier revision rounded
    // these to integer microseconds, which drifted completion times by up
    // to ~5e-7 s per hop — enough to break the 1e-9 cross-check against
    // the event-driven service scheduler. A linear min-scan keeps the
    // lowest-index free server on ties, which is deterministic and matches
    // the service's server tie-break.
    let mut free = vec![0.0f64; servers];
    let mut completions = Vec::with_capacity(jobs.len());
    for id in order {
        let server = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("servers > 0");
        let start = free[server].max(jobs[id].arrival_secs);
        let completion = start + jobs[id].service_secs;
        free[server] = completion;
        completions.push(SharedCompletion {
            job: id,
            completion_secs: completion,
            response_secs: completion - jobs[id].arrival_secs,
        });
    }
    completions.sort_by(|a, b| {
        a.completion_secs
            .partial_cmp(&b.completion_secs)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(completions)
}

/// Simulates egalitarian processor sharing of the cluster among overlapping
/// jobs: with `k` active jobs, every job progresses at rate `1/k`.
///
/// Returns completions sorted by completion time.
///
/// # Errors
///
/// Returns [`PipeTuneError::InvalidConfig`] for negative arrivals/services
/// or non-finite inputs.
pub fn simulate_processor_sharing(
    jobs: &[SharedJob],
) -> Result<Vec<SharedCompletion>, PipeTuneError> {
    validate_jobs(jobs)?;
    let mut queue = EventQueue::new();
    for (i, j) in jobs.iter().enumerate() {
        queue.push(SimTime::from_secs_f64(j.arrival_secs), Event::Arrival(i));
    }
    // Active set: remaining service per job id.
    let mut remaining: Vec<Option<f64>> = vec![None; jobs.len()];
    let mut active = 0usize;
    let mut now = 0.0f64;
    let mut completions = Vec::with_capacity(jobs.len());

    // Advance the fluid model to `target`, draining any jobs that finish on
    // the way (each gets an exact completion instant).
    fn drain(
        remaining: &mut [Option<f64>],
        active: &mut usize,
        now: &mut f64,
        target: f64,
        completions: &mut Vec<SharedCompletion>,
        jobs: &[SharedJob],
    ) {
        while *active > 0 && *now < target {
            let rate = 1.0 / *active as f64;
            // Earliest finisher among active jobs.
            let (next_id, next_rem) = remaining
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.map(|v| (i, v)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("active > 0");
            let finish_at = *now + next_rem / rate;
            if finish_at > target {
                // No completion before the target: progress everyone.
                let progress = (target - *now) * rate;
                for r in remaining.iter_mut().flatten() {
                    *r -= progress;
                }
                *now = target;
                return;
            }
            let progress = next_rem;
            for r in remaining.iter_mut().flatten() {
                *r -= progress;
            }
            remaining[next_id] = None;
            *active -= 1;
            *now = finish_at;
            completions.push(SharedCompletion {
                job: next_id,
                completion_secs: finish_at,
                response_secs: finish_at - jobs[next_id].arrival_secs,
            });
        }
        *now = target.max(*now);
    }

    while let Some((t, Event::Arrival(id))) = queue.pop() {
        drain(&mut remaining, &mut active, &mut now, t.as_secs_f64(), &mut completions, jobs);
        remaining[id] = Some(jobs[id].service_secs);
        active += 1;
    }
    drain(&mut remaining, &mut active, &mut now, f64::INFINITY, &mut completions, jobs);
    Ok(completions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_job_finishes_at_arrival_plus_service() {
        let done = simulate_processor_sharing(&[SharedJob {
            arrival_secs: 5.0,
            service_secs: 10.0,
        }])
        .unwrap();
        assert_eq!(done.len(), 1);
        assert!((done[0].completion_secs - 15.0).abs() < 1e-9);
        assert!((done[0].response_secs - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_identical_simultaneous_jobs_take_twice_as_long() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
        ];
        let done = simulate_processor_sharing(&jobs).unwrap();
        for c in &done {
            assert!((c.completion_secs - 20.0).abs() < 1e-9, "{c:?}");
        }
    }

    #[test]
    fn short_job_arriving_mid_run_delays_the_long_one() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
            SharedJob { arrival_secs: 4.0, service_secs: 3.0 },
        ];
        let done = simulate_processor_sharing(&jobs).unwrap();
        // Job 0 runs alone 0-4 (6 left), shares 4-10 (3 each done), job 1
        // finishes at 10; job 0 has 3 left, alone, finishes at 13.
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        assert!((by_job(1).completion_secs - 10.0).abs() < 1e-9, "{done:?}");
        assert!((by_job(0).completion_secs - 13.0).abs() < 1e-9, "{done:?}");
    }

    #[test]
    fn work_is_conserved() {
        // Total completion span ≥ total service when overlapping, and the
        // last completion equals total work when all arrive together.
        let jobs: Vec<SharedJob> = (0..5)
            .map(|i| SharedJob { arrival_secs: 0.0, service_secs: 2.0 + f64::from(i) })
            .collect();
        let done = simulate_processor_sharing(&jobs).unwrap();
        let total: f64 = jobs.iter().map(|j| j.service_secs).sum();
        let last = done.iter().map(|c| c.completion_secs).fold(0.0, f64::max);
        assert!((last - total).abs() < 1e-9, "{last} vs {total}");
    }

    #[test]
    fn disjoint_jobs_do_not_interact() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 2.0 },
            SharedJob { arrival_secs: 100.0, service_secs: 2.0 },
        ];
        let done = simulate_processor_sharing(&jobs).unwrap();
        assert!((done[0].response_secs - 2.0).abs() < 1e-9);
        assert!((done[1].response_secs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_single_server_serialises_in_arrival_order() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
            SharedJob { arrival_secs: 1.0, service_secs: 2.0 },
            SharedJob { arrival_secs: 2.0, service_secs: 3.0 },
        ];
        let done = simulate_fifo(&jobs, 1).unwrap();
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        assert!((by_job(0).completion_secs - 10.0).abs() < 1e-6);
        assert!((by_job(1).completion_secs - 12.0).abs() < 1e-6);
        assert!((by_job(2).completion_secs - 15.0).abs() < 1e-6);
    }

    #[test]
    fn fifo_extra_servers_absorb_the_queue() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
            SharedJob { arrival_secs: 1.0, service_secs: 2.0 },
        ];
        let one = simulate_fifo(&jobs, 1).unwrap();
        let two = simulate_fifo(&jobs, 2).unwrap();
        let resp = |d: &[SharedCompletion], i| d.iter().find(|c| c.job == i).unwrap().response_secs;
        assert!(resp(&one, 1) > resp(&two, 1), "a second server removes queueing delay");
        assert!((resp(&two, 1) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fifo_rejects_zero_servers() {
        assert!(simulate_fifo(&[], 0).is_err());
        assert!(simulate_fifo(&[], 1).unwrap().is_empty());
    }

    #[test]
    fn invalid_jobs_are_rejected() {
        assert!(simulate_processor_sharing(&[SharedJob {
            arrival_secs: -1.0,
            service_secs: 1.0
        }])
        .is_err());
        assert!(simulate_processor_sharing(&[SharedJob {
            arrival_secs: 0.0,
            service_secs: -0.5
        }])
        .is_err());
        assert!(simulate_fifo(
            &[SharedJob { arrival_secs: 0.0, service_secs: f64::NAN }],
            1
        )
        .is_err());
    }

    // ---- edge-case regressions (simultaneous arrivals, zero-service
    // ---- jobs, empty job lists, sub-microsecond precision) ----

    #[test]
    fn empty_job_lists_yield_empty_completions() {
        assert!(simulate_fifo(&[], 3).unwrap().is_empty());
        assert!(simulate_processor_sharing(&[]).unwrap().is_empty());
    }

    #[test]
    fn fifo_simultaneous_arrivals_are_served_in_submission_order() {
        let jobs = [
            SharedJob { arrival_secs: 1.0, service_secs: 2.0 },
            SharedJob { arrival_secs: 1.0, service_secs: 3.0 },
            SharedJob { arrival_secs: 1.0, service_secs: 1.0 },
        ];
        let done = simulate_fifo(&jobs, 1).unwrap();
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        assert_eq!(by_job(0).completion_secs, 3.0);
        assert_eq!(by_job(1).completion_secs, 6.0);
        assert_eq!(by_job(2).completion_secs, 7.0);
    }

    #[test]
    fn ps_simultaneous_arrivals_all_share_from_the_first_instant() {
        // Three jobs arriving together: with services 3/6/9 and egalitarian
        // sharing the completions are 9 (3 jobs × 3), 9 + 2×3 = 15, and
        // 15 + 1×3 = 18.
        let jobs = [
            SharedJob { arrival_secs: 2.0, service_secs: 3.0 },
            SharedJob { arrival_secs: 2.0, service_secs: 6.0 },
            SharedJob { arrival_secs: 2.0, service_secs: 9.0 },
        ];
        let done = simulate_processor_sharing(&jobs).unwrap();
        let by_job = |i: usize| done.iter().find(|c| c.job == i).unwrap();
        assert!((by_job(0).completion_secs - 11.0).abs() < 1e-9);
        assert!((by_job(1).completion_secs - 17.0).abs() < 1e-9);
        assert!((by_job(2).completion_secs - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_service_jobs_complete_on_arrival_without_delaying_others() {
        let jobs = [
            SharedJob { arrival_secs: 0.0, service_secs: 10.0 },
            SharedJob { arrival_secs: 4.0, service_secs: 0.0 },
        ];
        let fifo = simulate_fifo(&jobs, 2).unwrap();
        let by_job = |d: &[SharedCompletion], i: usize| {
            d.iter().find(|c| c.job == i).copied().unwrap()
        };
        assert_eq!(by_job(&fifo, 1).completion_secs, 4.0);
        assert_eq!(by_job(&fifo, 1).response_secs, 0.0);
        let ps = simulate_processor_sharing(&jobs).unwrap();
        assert_eq!(by_job(&ps, 1).completion_secs, 4.0);
        // The zero-service visitor leaves no trace on the long job.
        assert!((by_job(&ps, 0).completion_secs - 10.0).abs() < 1e-9, "{ps:?}");
        // An all-zero trace completes everything at its arrival instant.
        let zeros = [
            SharedJob { arrival_secs: 1.0, service_secs: 0.0 },
            SharedJob { arrival_secs: 1.0, service_secs: 0.0 },
        ];
        for sim in [simulate_fifo(&zeros, 1).unwrap(), simulate_processor_sharing(&zeros).unwrap()]
        {
            assert_eq!(sim.len(), 2);
            assert!(sim.iter().all(|c| c.completion_secs == 1.0 && c.response_secs == 0.0));
        }
    }

    #[test]
    fn fifo_keeps_sub_microsecond_services_exact() {
        // A chain of back-to-back sub-microsecond jobs: the old
        // integer-micros free-time heap rounded every hop, drifting the
        // chain; exact f64 arithmetic reproduces the analytic sum.
        let service = 3e-7;
        let jobs: Vec<SharedJob> = (0..100)
            .map(|_| SharedJob { arrival_secs: 0.0, service_secs: service })
            .collect();
        let done = simulate_fifo(&jobs, 1).unwrap();
        let mut expected = 0.0f64;
        for (i, c) in done.iter().enumerate() {
            expected += service;
            assert!(
                (c.completion_secs - expected).abs() < 1e-12,
                "job {i}: {} vs {expected}",
                c.completion_secs
            );
        }
    }
}
