//! Optimisation objectives (§5.1): accuracy only, or accuracy with time.

use serde::{Deserialize, Serialize};

/// What an HPT job optimises.
///
/// The paper's problem statement allows two goals: maximum accuracy
/// (Tune V1, PipeTune's hyper half) or maximum accuracy with minimum
/// training time (Tune V2 folds both into one scalar ratio).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Maximise model accuracy; duration is not part of the score.
    #[default]
    Accuracy,
    /// Maximise `accuracy / duration` (Tune V2's combined objective, §4).
    AccuracyPerTime,
}

impl Objective {
    /// Scalar score (higher is better) for a trial result.
    ///
    /// Durations at or below zero are clamped to one second so the ratio
    /// stays finite.
    pub fn score(&self, accuracy: f64, duration_secs: f64) -> f64 {
        match self {
            Objective::Accuracy => accuracy,
            Objective::AccuracyPerTime => accuracy / duration_secs.max(1.0),
        }
    }
}

/// What the probing phase minimises when picking a system configuration
/// (Algorithm 1 line 16): the paper mentions shortest runtime and lowest
/// energy as the optimisation functions of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ProbeGoal {
    /// Minimise epoch runtime.
    #[default]
    Runtime,
    /// Minimise epoch energy.
    Energy,
    /// Minimise the energy-delay product.
    EnergyDelay,
}

impl ProbeGoal {
    /// Cost of one probed epoch (lower is better).
    pub fn cost(&self, runtime_secs: f64, energy_j: f64) -> f64 {
        match self {
            ProbeGoal::Runtime => runtime_secs,
            ProbeGoal::Energy => energy_j,
            ProbeGoal::EnergyDelay => runtime_secs * energy_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_objective_ignores_duration() {
        assert_eq!(Objective::Accuracy.score(0.9, 100.0), 0.9);
        assert_eq!(Objective::Accuracy.score(0.9, 1.0), 0.9);
    }

    #[test]
    fn ratio_objective_prefers_faster_equal_accuracy() {
        let slow = Objective::AccuracyPerTime.score(0.9, 200.0);
        let fast = Objective::AccuracyPerTime.score(0.9, 100.0);
        assert!(fast > slow);
        assert!(Objective::AccuracyPerTime.score(0.9, 0.0).is_finite());
    }

    #[test]
    fn probe_goals_order_configs_differently() {
        // Config A: fast but hot; Config B: slow but cool.
        let (ra, ea) = (10.0, 2000.0);
        let (rb, eb) = (20.0, 1000.0);
        assert!(ProbeGoal::Runtime.cost(ra, ea) < ProbeGoal::Runtime.cost(rb, eb));
        assert!(ProbeGoal::Energy.cost(ra, ea) > ProbeGoal::Energy.cost(rb, eb));
    }
}
