//! Weighted Jacobi relaxation for the 2-D Laplace equation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{IterativeKernel, KernelMetrics, KernelSignature};

/// Configuration for the [`Jacobi`] kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacobiConfig {
    /// Square interior grid side length.
    pub grid: usize,
    /// Relaxation factor ω ∈ (0, 1]; plain Jacobi is ω = 1. Like a learning
    /// rate, convergence speed peaks at a workload-dependent sweet spot.
    pub omega: f32,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig { grid: 48, omega: 0.9 }
    }
}

/// Weighted Jacobi solver: `u ← (1−ω)·u + ω·avg(neighbours)` with fixed
/// random boundary conditions. One [`step`](IterativeKernel::step) is one
/// full sweep over the grid (one "epoch").
///
/// The [`score`](IterativeKernel::score) maps the residual reduction to
/// `[0, 1]`: `1 − log(r/r₀)/log(ε/r₀)` clamped, where ε is a fixed target,
/// so faster-converging configurations score higher sooner — the Type-III
/// analogue of training accuracy.
#[derive(Debug, Clone)]
pub struct Jacobi {
    cfg: JacobiConfig,
    u: Vec<f32>,
    n: usize, // full grid incl. boundary
    initial_residual: f32,
    last_residual: f32,
    epochs: usize,
}

impl Jacobi {
    /// Creates a solver with seeded random boundary conditions.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.grid` is zero.
    pub fn new(cfg: &JacobiConfig, seed: u64) -> Self {
        assert!(cfg.grid > 0, "grid must be positive");
        let n = cfg.grid + 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut u = vec![0.0f32; n * n];
        // Random but fixed Dirichlet boundary.
        for i in 0..n {
            u[i] = rng.gen_range(-1.0..1.0); // top
            u[(n - 1) * n + i] = rng.gen_range(-1.0..1.0); // bottom
            u[i * n] = rng.gen_range(-1.0..1.0); // left
            u[i * n + n - 1] = rng.gen_range(-1.0..1.0); // right
        }
        let mut solver = Jacobi {
            cfg: *cfg,
            u,
            n,
            initial_residual: 0.0,
            last_residual: 0.0,
            epochs: 0,
        };
        let r0 = solver.residual();
        solver.initial_residual = r0.max(1e-9);
        solver.last_residual = solver.initial_residual;
        solver
    }

    /// Root-mean-square residual of the discrete Laplace operator.
    pub fn residual(&self) -> f32 {
        let n = self.n;
        let mut sum = 0.0f64;
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let c = self.u[y * n + x];
                let avg = 0.25
                    * (self.u[(y - 1) * n + x]
                        + self.u[(y + 1) * n + x]
                        + self.u[y * n + x - 1]
                        + self.u[y * n + x + 1]);
                let r = (avg - c) as f64;
                sum += r * r;
            }
        }
        ((sum / ((n - 2) * (n - 2)) as f64).sqrt()) as f32
    }

    /// The configuration in use.
    pub fn config(&self) -> &JacobiConfig {
        &self.cfg
    }
}

impl IterativeKernel for Jacobi {
    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn step(&mut self) -> KernelMetrics {
        let n = self.n;
        let w = self.cfg.omega;
        let mut next = self.u.clone();
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let avg = 0.25
                    * (self.u[(y - 1) * n + x]
                        + self.u[(y + 1) * n + x]
                        + self.u[y * n + x - 1]
                        + self.u[y * n + x + 1]);
                next[y * n + x] = (1.0 - w) * self.u[y * n + x] + w * avg;
            }
        }
        self.u = next;
        self.epochs += 1;
        self.last_residual = self.residual().max(1e-12);
        let cells = (n - 2) * (n - 2);
        KernelMetrics {
            work_flops: cells as f64 * 8.0,
            items: cells,
            score: self.score(),
        }
    }

    fn score(&self) -> f32 {
        // Map log-residual progress toward a 1e-4·r₀ target onto [0, 1].
        let target = self.initial_residual * 1e-4;
        let num = (self.last_residual / self.initial_residual).ln();
        let den = (target / self.initial_residual).ln();
        (num / den).clamp(0.0, 1.0)
    }

    fn signature(&self) -> KernelSignature {
        let cells = ((self.n - 2) * (self.n - 2)) as f64;
        KernelSignature {
            flops_per_epoch: cells * 8.0,
            working_set_bytes: (self.n * self.n) as f64 * 8.0,
            memory_intensity: 2.5, // pure streaming stencil
            branch_ratio: 0.02,
        }
    }

    fn epochs_run(&self) -> usize {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_decreases_monotonically() {
        let mut j = Jacobi::new(&JacobiConfig::default(), 7);
        let mut prev = j.residual();
        for _ in 0..10 {
            j.step();
            let r = j.residual();
            assert!(r <= prev * 1.0001, "residual rose: {prev} → {r}");
            prev = r;
        }
    }

    #[test]
    fn omega_has_a_sweet_spot() {
        // Very small ω converges slower than a good ω.
        let run = |omega: f32| {
            let mut j = Jacobi::new(&JacobiConfig { grid: 32, omega }, 7);
            for _ in 0..20 {
                j.step();
            }
            j.score()
        };
        let slow = run(0.1);
        let good = run(0.95);
        assert!(good > slow, "omega 0.95 ({good}) should beat 0.1 ({slow})");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Jacobi::new(&JacobiConfig::default(), 5);
        let mut b = Jacobi::new(&JacobiConfig::default(), 5);
        a.step();
        b.step();
        assert_eq!(a.residual(), b.residual());
    }

    #[test]
    fn score_is_bounded() {
        let mut j = Jacobi::new(&JacobiConfig { grid: 16, omega: 1.0 }, 1);
        for _ in 0..200 {
            j.step();
        }
        assert!(j.score() <= 1.0);
        assert!(j.score() > 0.2);
    }
}
