//! Type-III iterative compute kernels: Jacobi, BFS and Spark-style k-means.
//!
//! The paper's third workload family comes from the Rodinia benchmark suite —
//! short-epoch iterative jobs (a differential solver, breadth-first search
//! and k-means on Spark) used to stress PipeTune's epoch-granularity
//! profiling when epochs last seconds rather than minutes (§7.3, Fig. 12).
//!
//! Each kernel here is a *real* implementation of the algorithm, exposed
//! through the [`IterativeKernel`] trait: one `step()` is one epoch, and a
//! [`score`](IterativeKernel::score) in `[0, 1]` plays the role the paper's
//! evaluation calls "accuracy" for these jobs (convergence/quality progress).
//!
//! Tunable parameters (the analogue of hyperparameters) genuinely change
//! convergence: Jacobi's relaxation factor has a sweet spot like a learning
//! rate, k-means quality depends on the chosen `k` and mini-batch fraction,
//! and BFS throughput depends on its frontier chunking.

mod bfs;
mod hotspot;
mod jacobi;
mod spkmeans;

pub use bfs::{Bfs, BfsConfig};
pub use hotspot::{Hotspot, HotspotConfig};
pub use jacobi::{Jacobi, JacobiConfig};
pub use spkmeans::{SpKMeans, SpKMeansConfig};

/// Metrics produced by one kernel epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelMetrics {
    /// Floating-point (or equivalent integer) operations performed.
    pub work_flops: f64,
    /// Items processed this epoch (grid cells, vertices, points).
    pub items: usize,
    /// Quality score in `[0, 1]` after this epoch.
    pub score: f32,
}

/// Numeric characterisation of a kernel's computational behaviour, mirroring
/// `pipetune_dnn::ModelSignature` for the simulated profiler and cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSignature {
    /// Operations per epoch.
    pub flops_per_epoch: f64,
    /// Approximate working-set size in bytes.
    pub working_set_bytes: f64,
    /// Bytes of memory traffic per flop.
    pub memory_intensity: f64,
    /// Fraction of instructions that are branches.
    pub branch_ratio: f64,
}

/// An iterative epoch-structured workload (the paper's Type-III jobs).
pub trait IterativeKernel {
    /// Kernel name as printed in the paper's figures (`jacobi`, `bfs`,
    /// `spkmeans`).
    fn name(&self) -> &'static str;

    /// Runs one epoch (one sweep / one BFS / one Lloyd iteration).
    fn step(&mut self) -> KernelMetrics;

    /// Current quality score in `[0, 1]` (the evaluation's "accuracy").
    fn score(&self) -> f32;

    /// Numeric signature for the profiler and cost model.
    fn signature(&self) -> KernelSignature;

    /// Number of epochs executed so far.
    fn epochs_run(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_kernel(mut k: Box<dyn IterativeKernel>) {
        let before = k.score();
        let mut last = KernelMetrics::default();
        for _ in 0..5 {
            last = k.step();
        }
        assert_eq!(k.epochs_run(), 5);
        assert!(last.work_flops > 0.0);
        assert!(last.items > 0);
        let after = k.score();
        assert!((0.0..=1.0).contains(&after), "score {after} out of range");
        assert!(after >= before, "score should not regress: {before} → {after}");
        let sig = k.signature();
        assert!(sig.flops_per_epoch > 0.0);
        assert!(sig.working_set_bytes > 0.0);
        assert!((0.0..=1.0).contains(&sig.branch_ratio));
    }

    #[test]
    fn all_kernels_satisfy_the_trait_contract() {
        check_kernel(Box::new(Jacobi::new(&JacobiConfig::default(), 1)));
        check_kernel(Box::new(Bfs::new(&BfsConfig::default(), 2)));
        check_kernel(Box::new(SpKMeans::new(&SpKMeansConfig::default(), 3)));
        check_kernel(Box::new(Hotspot::new(&HotspotConfig::default(), 4)));
    }
}
