//! Level-synchronous breadth-first search over a random graph.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{IterativeKernel, KernelMetrics, KernelSignature};

/// Configuration for the [`Bfs`] kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BfsConfig {
    /// Number of vertices in the generated graph.
    pub vertices: usize,
    /// Average out-degree.
    pub degree: usize,
    /// Frontier chunk size: vertices processed per inner batch. Affects the
    /// simulated cache behaviour (signature), analogous to a batch size.
    pub chunk: usize,
}

impl Default for BfsConfig {
    fn default() -> Self {
        BfsConfig { vertices: 4096, degree: 6, chunk: 256 }
    }
}

/// Breadth-first search kernel: each [`step`](IterativeKernel::step) runs one
/// complete BFS from a fresh (seeded) source vertex — the Rodinia `bfs`
/// epoch pattern of many short, similar iterations.
///
/// The [`score`](IterativeKernel::score) is the running mean fraction of the
/// graph reached, which converges to the size of the giant component — the
/// quality number the evaluation plots as "accuracy" for this job.
#[derive(Debug, Clone)]
pub struct Bfs {
    cfg: BfsConfig,
    /// CSR adjacency: offsets into `edges`.
    offsets: Vec<usize>,
    edges: Vec<u32>,
    rng: StdRng,
    epochs: usize,
    reached_sum: f64,
}

impl Bfs {
    /// Generates a seeded random graph (uniform out-edges) and prepares BFS.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.vertices` is zero.
    pub fn new(cfg: &BfsConfig, seed: u64) -> Self {
        assert!(cfg.vertices > 0, "graph must have vertices");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = cfg.vertices;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, list) in adj.iter_mut().enumerate() {
            // Ring edge guarantees a connected backbone for most vertices,
            // random edges add small-world structure.
            list.push(((v + 1) % n) as u32);
            for _ in 0..cfg.degree.saturating_sub(1) {
                // A small fraction of dangling edges keeps reachability < 1.
                if rng.gen::<f32>() < 0.95 {
                    list.push(rng.gen_range(0..n) as u32);
                }
            }
        }
        // 2% isolated sinks: no outgoing edges (overwrite).
        for _ in 0..n / 50 {
            let v = rng.gen_range(0..n);
            adj[v].clear();
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for list in &adj {
            edges.extend_from_slice(list);
            offsets.push(edges.len());
        }
        Bfs { cfg: *cfg, offsets, edges, rng, epochs: 0, reached_sum: 0.0 }
    }

    /// Runs one BFS from `source`, returning `(visited, edges_relaxed)`.
    pub fn bfs_from(&self, source: usize) -> (usize, usize) {
        let n = self.cfg.vertices;
        let mut visited = vec![false; n];
        let mut frontier = vec![source as u32];
        visited[source] = true;
        let mut count = 1usize;
        let mut relaxed = 0usize;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            // Process in chunks (the tunable parameter) — functionally
            // identical, but the chunk size feeds the cache signature.
            for chunk in frontier.chunks(self.cfg.chunk.max(1)) {
                for &v in chunk {
                    let (s, e) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
                    for &w in &self.edges[s..e] {
                        relaxed += 1;
                        if !visited[w as usize] {
                            visited[w as usize] = true;
                            count += 1;
                            next.push(w);
                        }
                    }
                }
            }
            frontier = next;
        }
        (count, relaxed)
    }

    /// The configuration in use.
    pub fn config(&self) -> &BfsConfig {
        &self.cfg
    }
}

impl IterativeKernel for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn step(&mut self) -> KernelMetrics {
        let source = self.rng.gen_range(0..self.cfg.vertices);
        let (visited, relaxed) = self.bfs_from(source);
        self.epochs += 1;
        self.reached_sum += visited as f64 / self.cfg.vertices as f64;
        KernelMetrics {
            // Frontier bookkeeping costs work even from a sink vertex.
            work_flops: relaxed as f64 * 4.0 + visited as f64 * 2.0,
            items: visited,
            score: self.score(),
        }
    }

    fn score(&self) -> f32 {
        if self.epochs == 0 {
            0.0
        } else {
            (self.reached_sum / self.epochs as f64) as f32
        }
    }

    fn signature(&self) -> KernelSignature {
        let m = self.edges.len() as f64;
        KernelSignature {
            flops_per_epoch: m * 4.0,
            working_set_bytes: m * 4.0 + self.cfg.vertices as f64 * 5.0,
            memory_intensity: 4.0, // pointer chasing, almost no arithmetic
            branch_ratio: 0.30,
        }
    }

    fn epochs_run(&self) -> usize {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_reaches_most_of_the_graph() {
        let bfs = Bfs::new(&BfsConfig::default(), 3);
        let (visited, relaxed) = bfs.bfs_from(0);
        assert!(visited > bfs.config().vertices / 2, "visited {visited}");
        assert!(relaxed >= visited - 1);
    }

    #[test]
    fn score_converges_into_unit_interval() {
        let mut bfs = Bfs::new(&BfsConfig { vertices: 512, degree: 4, chunk: 64 }, 9);
        for _ in 0..8 {
            bfs.step();
        }
        let s = bfs.score();
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.3, "score {s}");
    }

    #[test]
    fn chunking_does_not_change_reachability() {
        let a = Bfs::new(&BfsConfig { chunk: 1, ..BfsConfig::default() }, 4);
        let b = Bfs::new(&BfsConfig { chunk: 1024, ..BfsConfig::default() }, 4);
        assert_eq!(a.bfs_from(10).0, b.bfs_from(10).0);
    }

    #[test]
    fn deterministic_graph_per_seed() {
        let a = Bfs::new(&BfsConfig::default(), 5);
        let b = Bfs::new(&BfsConfig::default(), 5);
        assert_eq!(a.edges, b.edges);
    }
}
