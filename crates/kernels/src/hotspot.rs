//! Hotspot: the Rodinia thermal-simulation stencil.
//!
//! Not part of the paper's three Type-III jobs, but it ships in the same
//! Rodinia suite the paper draws from, and its short-epoch stencil profile
//! makes it a natural extra workload for the reproduction (exposed as
//! `WorkloadSpec::hotspot()` but outside the evaluation figures).
//!
//! The model: a chip grid with per-cell power dissipation; each epoch is one
//! explicit time step of the heat equation with Neumann boundaries. The
//! score tracks convergence toward the steady-state temperature field.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{IterativeKernel, KernelMetrics, KernelSignature};

/// Configuration for the [`Hotspot`] kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotConfig {
    /// Square grid side length.
    pub grid: usize,
    /// Time-step size (stability requires roughly `dt ≤ 0.2`); like the
    /// Jacobi relaxation factor, an analogue of a learning rate.
    pub dt: f32,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig { grid: 48, dt: 0.15 }
    }
}

/// Explicit heat-diffusion stepper with a seeded power map.
#[derive(Debug, Clone)]
pub struct Hotspot {
    cfg: HotspotConfig,
    temp: Vec<f32>,
    power: Vec<f32>,
    epochs: usize,
    initial_delta: f32,
    last_delta: f32,
}

impl Hotspot {
    /// Creates a simulation with a seeded random power map (a few hot
    /// functional units on a cool substrate).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.grid` is zero.
    pub fn new(cfg: &HotspotConfig, seed: u64) -> Self {
        assert!(cfg.grid > 0, "grid must be positive");
        let n = cfg.grid;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut power = vec![0.0f32; n * n];
        // A handful of rectangular hot blocks.
        for _ in 0..4 {
            let bw = rng.gen_range(n / 8..n / 3);
            let bh = rng.gen_range(n / 8..n / 3);
            let x0 = rng.gen_range(0..n - bw);
            let y0 = rng.gen_range(0..n - bh);
            let heat = rng.gen_range(0.5f32..2.0);
            for y in y0..y0 + bh {
                for x in x0..x0 + bw {
                    power[y * n + x] += heat;
                }
            }
        }
        let mut hs = Hotspot {
            cfg: *cfg,
            temp: vec![0.0; n * n],
            power,
            epochs: 0,
            initial_delta: 0.0,
            last_delta: 0.0,
        };
        let d0 = hs.step_delta();
        hs.initial_delta = d0.max(1e-9);
        hs.last_delta = hs.initial_delta;
        hs.epochs = 0; // the probe step above does not count
        hs
    }

    /// One explicit diffusion step; returns the RMS temperature change.
    fn step_delta(&mut self) -> f32 {
        let n = self.cfg.grid;
        let dt = self.cfg.dt;
        let mut next = self.temp.clone();
        let mut sum_sq = 0.0f64;
        for y in 0..n {
            for x in 0..n {
                let at = |yy: isize, xx: isize| -> f32 {
                    // Neumann boundary: clamp to the edge.
                    let yy = yy.clamp(0, n as isize - 1) as usize;
                    let xx = xx.clamp(0, n as isize - 1) as usize;
                    self.temp[yy * n + xx]
                };
                let c = self.temp[y * n + x];
                let lap = at(y as isize - 1, x as isize)
                    + at(y as isize + 1, x as isize)
                    + at(y as isize, x as isize - 1)
                    + at(y as isize, x as isize + 1)
                    - 4.0 * c;
                // Diffusion + local power − leakage to ambient.
                let delta = dt * (lap + self.power[y * n + x] - 0.1 * c);
                next[y * n + x] = c + delta;
                sum_sq += f64::from(delta) * f64::from(delta);
            }
        }
        self.temp = next;
        self.epochs += 1;
        ((sum_sq / (n * n) as f64).sqrt()) as f32
    }

    /// Current peak temperature.
    pub fn peak_temperature(&self) -> f32 {
        self.temp.iter().copied().fold(0.0, f32::max)
    }

    /// The configuration in use.
    pub fn config(&self) -> &HotspotConfig {
        &self.cfg
    }
}

impl IterativeKernel for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn step(&mut self) -> KernelMetrics {
        self.last_delta = self.step_delta().max(1e-12);
        let cells = self.cfg.grid * self.cfg.grid;
        KernelMetrics {
            work_flops: cells as f64 * 10.0,
            items: cells,
            score: self.score(),
        }
    }

    fn score(&self) -> f32 {
        // Approach to steady state, on the same log scale as Jacobi.
        let target = self.initial_delta * 1e-4;
        let num = (self.last_delta / self.initial_delta).ln();
        let den = (target / self.initial_delta).ln();
        (num / den).clamp(0.0, 1.0)
    }

    fn signature(&self) -> KernelSignature {
        let cells = (self.cfg.grid * self.cfg.grid) as f64;
        KernelSignature {
            flops_per_epoch: cells * 10.0,
            working_set_bytes: cells * 12.0,
            memory_intensity: 2.2,
            branch_ratio: 0.04,
        }
    }

    fn epochs_run(&self) -> usize {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_approaches_steady_state() {
        let mut hs = Hotspot::new(&HotspotConfig::default(), 3);
        let mut prev_delta = f32::INFINITY;
        for _ in 0..120 {
            hs.step();
            assert!(hs.last_delta <= prev_delta * 1.1, "diffusion must settle");
            prev_delta = hs.last_delta;
        }
        // The leakage term contracts the field by ~2% per step, so 120
        // steps buy a visible fraction of the log-scale journey.
        assert!(hs.score() > 0.1, "score {}", hs.score());
        assert!(hs.peak_temperature() > 0.0);
    }

    #[test]
    fn too_large_a_timestep_diverges() {
        // The explicit scheme is conditionally stable: a reckless dt makes
        // the field blow up instead of settling (the tunable's failure mode).
        let mut stable = Hotspot::new(&HotspotConfig { grid: 24, dt: 0.15 }, 5);
        let mut unstable = Hotspot::new(&HotspotConfig { grid: 24, dt: 0.6 }, 5);
        for _ in 0..40 {
            stable.step();
            unstable.step();
        }
        assert!(stable.score() > unstable.score(), "{} vs {}", stable.score(), unstable.score());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Hotspot::new(&HotspotConfig::default(), 9);
        let mut b = Hotspot::new(&HotspotConfig::default(), 9);
        a.step();
        b.step();
        assert_eq!(a.peak_temperature(), b.peak_temperature());
    }

    #[test]
    fn satisfies_the_kernel_contract() {
        let mut hs = Hotspot::new(&HotspotConfig::default(), 1);
        let m = hs.step();
        assert!(m.work_flops > 0.0 && m.items > 0);
        assert!((0.0..=1.0).contains(&hs.score()));
        assert_eq!(hs.epochs_run(), 1);
        let sig = hs.signature();
        assert!(sig.flops_per_epoch > 0.0 && sig.working_set_bytes > 0.0);
    }
}
