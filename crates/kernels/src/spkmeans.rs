//! Spark-style mini-batch k-means (the Rodinia-on-Spark `spk-means` job).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{IterativeKernel, KernelMetrics, KernelSignature};

/// Configuration for the [`SpKMeans`] kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpKMeansConfig {
    /// Number of points in the synthetic dataset.
    pub points: usize,
    /// Dimensionality of each point.
    pub dims: usize,
    /// Number of clusters to fit.
    pub k: usize,
    /// Number of true generating clusters in the data.
    pub true_clusters: usize,
    /// Fraction of points processed per epoch (mini-batch Lloyd step);
    /// `1.0` is a full Lloyd iteration. The tunable analogue of batch size.
    pub batch_fraction: f32,
}

impl Default for SpKMeansConfig {
    fn default() -> Self {
        SpKMeansConfig { points: 2000, dims: 8, k: 8, true_clusters: 8, batch_fraction: 1.0 }
    }
}

/// Mini-batch Lloyd's k-means over a seeded Gaussian-mixture dataset.
///
/// One [`step`](IterativeKernel::step) is one assignment+update pass over a
/// mini-batch (one "epoch"). The [`score`](IterativeKernel::score) is the
/// relative inertia improvement `1 − inertia/inertia₀ ∈ [0, 1]`, the quality
/// measure the evaluation reports as this job's "accuracy".
#[derive(Debug, Clone)]
pub struct SpKMeans {
    cfg: SpKMeansConfig,
    data: Vec<f32>, // points × dims
    centroids: Vec<f32>,
    rng: StdRng,
    initial_inertia: f64,
    last_inertia: f64,
    epochs: usize,
}

impl SpKMeans {
    /// Generates a seeded Gaussian-mixture dataset and random initial
    /// centroids.
    ///
    /// # Panics
    ///
    /// Panics if any of `points`, `dims` or `k` is zero.
    pub fn new(cfg: &SpKMeansConfig, seed: u64) -> Self {
        assert!(cfg.points > 0 && cfg.dims > 0 && cfg.k > 0, "sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let tc = cfg.true_clusters.max(1);
        // True cluster centres on a scaled lattice plus jitter.
        let centres: Vec<f32> =
            (0..tc * cfg.dims).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
        let mut data = Vec::with_capacity(cfg.points * cfg.dims);
        for i in 0..cfg.points {
            let c = i % tc;
            for d in 0..cfg.dims {
                data.push(centres[c * cfg.dims + d] + rng.gen_range(-0.6f32..0.6));
            }
        }
        // Initial centroids: random points from the data (Forgy init).
        let mut centroids = Vec::with_capacity(cfg.k * cfg.dims);
        for _ in 0..cfg.k {
            let p = rng.gen_range(0..cfg.points);
            centroids.extend_from_slice(&data[p * cfg.dims..(p + 1) * cfg.dims]);
        }
        let mut km = SpKMeans {
            cfg: *cfg,
            data,
            centroids,
            rng,
            initial_inertia: 0.0,
            last_inertia: 0.0,
            epochs: 0,
        };
        let i0 = km.inertia().max(1e-9);
        km.initial_inertia = i0;
        km.last_inertia = i0;
        km
    }

    fn nearest(&self, p: usize) -> (usize, f64) {
        let d = self.cfg.dims;
        let point = &self.data[p * d..(p + 1) * d];
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..self.cfg.k {
            let cen = &self.centroids[c * d..(c + 1) * d];
            let dist: f64 = point
                .iter()
                .zip(cen)
                .map(|(&a, &b)| {
                    let diff = (a - b) as f64;
                    diff * diff
                })
                .sum();
            if dist < best_d {
                best_d = dist;
                best = c;
            }
        }
        (best, best_d)
    }

    /// Sum of squared distances of every point to its nearest centroid.
    pub fn inertia(&self) -> f64 {
        (0..self.cfg.points).map(|p| self.nearest(p).1).sum()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SpKMeansConfig {
        &self.cfg
    }
}

impl IterativeKernel for SpKMeans {
    fn name(&self) -> &'static str {
        "spkmeans"
    }

    fn step(&mut self) -> KernelMetrics {
        let d = self.cfg.dims;
        let batch = ((self.cfg.points as f32 * self.cfg.batch_fraction.clamp(0.01, 1.0)) as usize)
            .max(self.cfg.k);
        // Sample the mini-batch (full pass when batch == points).
        let idx: Vec<usize> = if batch >= self.cfg.points {
            (0..self.cfg.points).collect()
        } else {
            (0..batch).map(|_| self.rng.gen_range(0..self.cfg.points)).collect()
        };
        let mut sums = vec![0.0f64; self.cfg.k * d];
        let mut counts = vec![0usize; self.cfg.k];
        for &p in &idx {
            let (c, _) = self.nearest(p);
            counts[c] += 1;
            for j in 0..d {
                sums[c * d + j] += self.data[p * d + j] as f64;
            }
        }
        for c in 0..self.cfg.k {
            if counts[c] > 0 {
                for j in 0..d {
                    let mean = (sums[c * d + j] / counts[c] as f64) as f32;
                    // Mini-batch update: move toward the batch mean.
                    let w = if batch >= self.cfg.points { 1.0 } else { 0.5 };
                    self.centroids[c * d + j] =
                        (1.0 - w) * self.centroids[c * d + j] + w * mean;
                }
            }
        }
        self.epochs += 1;
        self.last_inertia = self.inertia().max(1e-12);
        KernelMetrics {
            work_flops: idx.len() as f64 * self.cfg.k as f64 * d as f64 * 3.0,
            items: idx.len(),
            score: self.score(),
        }
    }

    fn score(&self) -> f32 {
        (1.0 - (self.last_inertia / self.initial_inertia)).clamp(0.0, 1.0) as f32
    }

    fn signature(&self) -> KernelSignature {
        let n = self.cfg.points as f64;
        let kd = (self.cfg.k * self.cfg.dims) as f64;
        KernelSignature {
            flops_per_epoch: n * kd * 3.0 * self.cfg.batch_fraction as f64,
            working_set_bytes: n * self.cfg.dims as f64 * 4.0 + kd * 4.0,
            memory_intensity: 1.5,
            branch_ratio: 0.10,
        }
    }

    fn epochs_run(&self) -> usize {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lloyd_reduces_inertia() {
        let mut km = SpKMeans::new(&SpKMeansConfig::default(), 2);
        let i0 = km.inertia();
        for _ in 0..5 {
            km.step();
        }
        assert!(km.inertia() < i0, "inertia should drop");
        assert!(km.score() > 0.5, "score {}", km.score());
    }

    #[test]
    fn wrong_k_scores_worse_than_true_k() {
        let good_cfg = SpKMeansConfig { k: 8, true_clusters: 8, ..SpKMeansConfig::default() };
        let bad_cfg = SpKMeansConfig { k: 2, true_clusters: 8, ..SpKMeansConfig::default() };
        let mut good = SpKMeans::new(&good_cfg, 6);
        let mut bad = SpKMeans::new(&bad_cfg, 6);
        for _ in 0..10 {
            good.step();
            bad.step();
        }
        assert!(good.score() > bad.score(), "{} vs {}", good.score(), bad.score());
    }

    #[test]
    fn minibatch_processes_fewer_items() {
        let mut full = SpKMeans::new(&SpKMeansConfig::default(), 1);
        let mut mini = SpKMeans::new(
            &SpKMeansConfig { batch_fraction: 0.1, ..SpKMeansConfig::default() },
            1,
        );
        let mf = full.step();
        let mm = mini.step();
        assert!(mm.items < mf.items / 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SpKMeans::new(&SpKMeansConfig::default(), 4);
        let mut b = SpKMeans::new(&SpKMeansConfig::default(), 4);
        a.step();
        b.step();
        assert_eq!(a.inertia(), b.inertia());
    }
}
