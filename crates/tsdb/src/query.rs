//! Query descriptors and aggregation functions.

use crate::Point;

/// Aggregation functions over a field (Influx's basic selectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Arithmetic mean.
    Mean,
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Number of matching points carrying the field.
    Count,
    /// Median (50th percentile, nearest-rank).
    P50,
    /// 95th percentile (nearest-rank).
    P95,
    /// 99th percentile (nearest-rank).
    P99,
}

impl Aggregate {
    /// Applies the aggregate to a value list. Returns `None` on empty input.
    pub fn apply(&self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        Some(match self {
            Aggregate::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Aggregate::Sum => values.iter().sum(),
            Aggregate::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregate::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Count => values.len() as f64,
            Aggregate::P50 => percentile(values, 0.50),
            Aggregate::P95 => percentile(values, 0.95),
            Aggregate::P99 => percentile(values, 0.99),
        })
    }
}

/// Nearest-rank percentile: the smallest value such that at least `q` of the
/// sample is ≤ it. Exact for small samples (the Influx convention), so a P99
/// over 10 points is the maximum rather than an extrapolation.
fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// A query: measurement, optional tag equality filters, optional time range.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Query {
    measurement: String,
    tag_filters: Vec<(String, String)>,
    time_from_us: Option<u64>,
    time_to_us: Option<u64>,
}

impl Query {
    /// Queries every point of `measurement`.
    pub fn measurement(name: impl Into<String>) -> Self {
        Query { measurement: name.into(), ..Query::default() }
    }

    /// Restricts to points whose tag `key` equals `value`.
    pub fn with_tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tag_filters.push((key.into(), value.into()));
        self
    }

    /// Restricts to points with `timestamp ≥ from_us`.
    pub fn from_us(mut self, from_us: u64) -> Self {
        self.time_from_us = Some(from_us);
        self
    }

    /// Restricts to points with `timestamp < to_us`.
    pub fn to_us(mut self, to_us: u64) -> Self {
        self.time_to_us = Some(to_us);
        self
    }

    /// Returns `true` when `point` satisfies every predicate.
    pub fn matches(&self, point: &Point) -> bool {
        if point.measurement() != self.measurement {
            return false;
        }
        if let Some(from) = self.time_from_us {
            if point.timestamp_us() < from {
                return false;
            }
        }
        if let Some(to) = self.time_to_us {
            if point.timestamp_us() >= to {
                return false;
            }
        }
        self.tag_filters.iter().all(|(k, v)| point.tag_value(k) == Some(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(ts: u64, tag: &str) -> Point {
        Point::new("m", ts).tag("w", tag).field("x", 1.0)
    }

    #[test]
    fn tag_and_time_filters_compose() {
        let q = Query::measurement("m").with_tag("w", "a").from_us(10).to_us(20);
        assert!(q.matches(&point(10, "a")));
        assert!(!q.matches(&point(20, "a"))); // exclusive upper bound
        assert!(!q.matches(&point(15, "b")));
        assert!(!q.matches(&Point::new("other", 15).tag("w", "a").field("x", 1.0)));
    }

    #[test]
    fn aggregates_compute_expected_values() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(Aggregate::Mean.apply(&v), Some(2.5));
        assert_eq!(Aggregate::Sum.apply(&v), Some(10.0));
        assert_eq!(Aggregate::Min.apply(&v), Some(1.0));
        assert_eq!(Aggregate::Max.apply(&v), Some(4.0));
        assert_eq!(Aggregate::Count.apply(&v), Some(4.0));
        assert_eq!(Aggregate::Mean.apply(&[]), None);
    }

    #[test]
    fn percentiles_use_nearest_rank_on_known_distributions() {
        // 1..=100 shuffled: nearest-rank percentiles are exact members.
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        v.reverse();
        assert_eq!(Aggregate::P50.apply(&v), Some(50.0));
        assert_eq!(Aggregate::P95.apply(&v), Some(95.0));
        assert_eq!(Aggregate::P99.apply(&v), Some(99.0));

        // Small samples: ranks clamp into the sample rather than interpolate.
        let small = [10.0, 30.0, 20.0];
        assert_eq!(Aggregate::P50.apply(&small), Some(20.0));
        assert_eq!(Aggregate::P95.apply(&small), Some(30.0));
        assert_eq!(Aggregate::P99.apply(&small), Some(30.0));

        // Singleton and empty edge cases.
        assert_eq!(Aggregate::P50.apply(&[7.0]), Some(7.0));
        assert_eq!(Aggregate::P99.apply(&[7.0]), Some(7.0));
        assert_eq!(Aggregate::P95.apply(&[]), None);

        // Skewed distribution: tail percentiles pick out the outlier.
        let skew = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1000.0];
        assert_eq!(Aggregate::P50.apply(&skew), Some(1.0));
        assert_eq!(Aggregate::P95.apply(&skew), Some(1000.0));
    }
}
