//! InfluxDB line-protocol encoding/decoding.
//!
//! The paper's prototype talks to a real InfluxDB over its client API; this
//! gives the embedded store the same wire format so traces can be exported
//! to (or imported from) an actual InfluxDB instance:
//!
//! ```text
//! measurement,tag1=a,tag2=b field1=1.5,field2=2 1625000000000
//! ```

use crate::{Point, TsdbError};

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace(',', "\\,").replace(' ', "\\ ").replace('=', "\\=")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Splits on `sep`, honouring backslash escapes.
fn split_escaped(s: &str, sep: char) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            cur.push('\\');
            cur.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == sep {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if escaped {
        cur.push('\\');
    }
    parts.push(cur);
    parts
}

impl Point {
    /// Serialises to one line of Influx line protocol.
    pub fn to_line_protocol(&self) -> String {
        let mut line = escape(self.measurement());
        for (k, v) in self.tags() {
            line.push(',');
            line.push_str(&escape(k));
            line.push('=');
            line.push_str(&escape(v));
        }
        line.push(' ');
        let fields: Vec<String> = self
            .fields()
            .iter()
            .map(|(k, v)| format!("{}={}", escape(k), v))
            .collect();
        line.push_str(&fields.join(","));
        line.push(' ');
        line.push_str(&self.timestamp_us().to_string());
        line
    }

    /// Parses one line of Influx line protocol.
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::Corrupt`] on malformed input (missing fields,
    /// bad numbers, bad timestamp).
    pub fn from_line_protocol(line: &str) -> Result<Point, TsdbError> {
        let corrupt = |reason: &str| TsdbError::Corrupt { reason: reason.to_string() };
        let segments = split_escaped(line.trim(), ' ');
        let (head, field_seg, ts_seg) = match segments.len() {
            3 => (&segments[0], &segments[1], Some(&segments[2])),
            2 => (&segments[0], &segments[1], None),
            _ => return Err(corrupt("expected 'measurement[,tags] fields [timestamp]'")),
        };
        let timestamp = match ts_seg {
            Some(t) => t.parse::<u64>().map_err(|_| corrupt("bad timestamp"))?,
            None => 0,
        };
        let mut head_parts = split_escaped(head, ',').into_iter();
        let measurement =
            unescape(&head_parts.next().ok_or_else(|| corrupt("missing measurement"))?);
        if measurement.is_empty() {
            return Err(corrupt("empty measurement"));
        }
        let mut point = Point::new(measurement, timestamp);
        for tag in head_parts {
            let kv = split_escaped(&tag, '=');
            if kv.len() != 2 {
                return Err(corrupt("malformed tag"));
            }
            point = point.tag(unescape(&kv[0]), unescape(&kv[1]));
        }
        if field_seg.is_empty() {
            return Err(corrupt("no fields"));
        }
        for field in split_escaped(field_seg, ',') {
            let kv = split_escaped(&field, '=');
            if kv.len() != 2 {
                return Err(corrupt("malformed field"));
            }
            // Accept Influx's integer suffix `i` as well as plain floats.
            let raw = kv[1].strip_suffix('i').unwrap_or(&kv[1]);
            let value: f64 = raw.parse().map_err(|_| corrupt("non-numeric field value"))?;
            point = point.field(unescape(&kv[0]), value);
        }
        Ok(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_tagged_point() {
        let p = Point::new("epoch_metrics", 1_625_000)
            .tag("workload", "lenet/mnist")
            .tag("config", "8c/16GB")
            .field("runtime_secs", 42.5)
            .field("energy_j", 900.0);
        let line = p.to_line_protocol();
        let back = Point::from_line_protocol(&line).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn escapes_spaces_commas_and_equals() {
        let p = Point::new("m easure,ment", 5).tag("k ey", "v=al,ue").field("f", 1.0);
        let line = p.to_line_protocol();
        let back = Point::from_line_protocol(&line).unwrap();
        assert_eq!(back.measurement(), "m easure,ment");
        assert_eq!(back.tag_value("k ey"), Some("v=al,ue"));
    }

    #[test]
    fn parses_canonical_influx_examples() {
        let p = Point::from_line_protocol("cpu,host=a usage=0.5,idle=99i 1556813561098000").unwrap();
        assert_eq!(p.measurement(), "cpu");
        assert_eq!(p.tag_value("host"), Some("a"));
        assert_eq!(p.field_value("usage"), Some(0.5));
        assert_eq!(p.field_value("idle"), Some(99.0));
        assert_eq!(p.timestamp_us(), 1_556_813_561_098_000);
    }

    #[test]
    fn missing_timestamp_defaults_to_zero() {
        let p = Point::from_line_protocol("m f=1.0").unwrap();
        assert_eq!(p.timestamp_us(), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["", "m", "m ", "m f", "m f=x", "m f=1 notanumber", "m,k f=1"] {
            assert!(
                Point::from_line_protocol(bad).is_err(),
                "should reject {bad:?}"
            );
        }
    }
}
