//! Data points: measurement + tags + numeric fields + timestamp.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One tagged, timestamped record (Influx line-protocol semantics).
///
/// Built with a fluent API:
///
/// ```
/// use pipetune_tsdb::Point;
///
/// let p = Point::new("probe", 123)
///     .tag("config", "8c/16GB")
///     .field("runtime_secs", 12.5)
///     .field("energy_j", 900.0);
/// assert_eq!(p.field_value("runtime_secs"), Some(12.5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    measurement: String,
    /// Sorted tag map — deterministic iteration for tests and persistence.
    tags: BTreeMap<String, String>,
    fields: BTreeMap<String, f64>,
    /// Microseconds of simulated time.
    timestamp_us: u64,
}

impl Point {
    /// Starts a point for `measurement` at `timestamp_us` (simulated µs).
    pub fn new(measurement: impl Into<String>, timestamp_us: u64) -> Self {
        Point {
            measurement: measurement.into(),
            tags: BTreeMap::new(),
            fields: BTreeMap::new(),
            timestamp_us,
        }
    }

    /// Adds/replaces a tag.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.insert(key.into(), value.into());
        self
    }

    /// Adds/replaces a numeric field.
    pub fn field(mut self, key: impl Into<String>, value: f64) -> Self {
        self.fields.insert(key.into(), value);
        self
    }

    /// Adds a whole vector as numbered fields (`prefix_0`, `prefix_1`, …),
    /// used for 58-element profile vectors.
    pub fn field_vec(mut self, prefix: &str, values: &[f64]) -> Self {
        for (i, &v) in values.iter().enumerate() {
            self.fields.insert(format!("{prefix}_{i}"), v);
        }
        self
    }

    /// The measurement name.
    pub fn measurement(&self) -> &str {
        &self.measurement
    }

    /// Tag value for `key`.
    pub fn tag_value(&self, key: &str) -> Option<&str> {
        self.tags.get(key).map(String::as_str)
    }

    /// Field value for `key`.
    pub fn field_value(&self, key: &str) -> Option<f64> {
        self.fields.get(key).copied()
    }

    /// Reassembles a numbered field vector written by [`Point::field_vec`].
    /// Stops at the first missing index.
    pub fn field_vec_values(&self, prefix: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 0.. {
            match self.fields.get(&format!("{prefix}_{i}")) {
                Some(&v) => out.push(v),
                None => break,
            }
        }
        out
    }

    /// All tags.
    pub fn tags(&self) -> &BTreeMap<String, String> {
        &self.tags
    }

    /// All fields.
    pub fn fields(&self) -> &BTreeMap<String, f64> {
        &self.fields
    }

    /// Timestamp in simulated microseconds.
    pub fn timestamp_us(&self) -> u64 {
        self.timestamp_us
    }

    /// Returns `true` when the point can be stored (non-empty measurement
    /// and at least one field).
    pub fn is_storable(&self) -> bool {
        !self.measurement.is_empty() && !self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_tags_and_fields() {
        let p = Point::new("m", 5).tag("a", "1").tag("b", "2").field("x", 1.0);
        assert_eq!(p.tag_value("a"), Some("1"));
        assert_eq!(p.tag_value("missing"), None);
        assert!(p.is_storable());
    }

    #[test]
    fn field_vec_round_trips() {
        let values = vec![1.0, 2.0, 3.0];
        let p = Point::new("m", 0).field_vec("ev", &values);
        assert_eq!(p.field_vec_values("ev"), values);
        assert!(p.field_vec_values("other").is_empty());
    }

    #[test]
    fn empty_points_are_not_storable() {
        assert!(!Point::new("m", 0).is_storable());
        assert!(!Point::new("", 0).field("x", 1.0).is_storable());
    }

    #[test]
    fn serde_round_trip() {
        let p = Point::new("m", 9).tag("t", "v").field("f", 2.5);
        let json = serde_json::to_string(&p).unwrap();
        let back: Point = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
