//! The thread-safe store.

use std::path::Path;

use parking_lot::RwLock;

use crate::{Aggregate, Point, Query, TsdbError};

/// In-memory, thread-safe time-series store with JSON persistence.
///
/// Writers (per-trial system tuners) and readers (the ground-truth module)
/// may operate concurrently; consistency is per-call.
#[derive(Debug, Default)]
pub struct Database {
    points: RwLock<Vec<Point>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Stores one point.
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::InvalidPoint`] for points without a measurement
    /// name or without fields.
    pub fn write(&self, point: Point) -> Result<(), TsdbError> {
        if !point.is_storable() {
            return Err(TsdbError::InvalidPoint {
                reason: "measurement and at least one field are required".into(),
            });
        }
        self.points.write().push(point);
        Ok(())
    }

    /// Stores many points; stops at the first invalid one.
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::InvalidPoint`] on the first unstorable point;
    /// earlier points in the batch remain stored.
    pub fn write_batch(&self, points: impl IntoIterator<Item = Point>) -> Result<(), TsdbError> {
        for p in points {
            self.write(p)?;
        }
        Ok(())
    }

    /// Returns every point matching `query`, in insertion order.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for storage-backend
    /// errors.
    pub fn query(&self, query: &Query) -> Result<Vec<Point>, TsdbError> {
        Ok(self.points.read().iter().filter(|p| query.matches(p)).cloned().collect())
    }

    /// Aggregates `field` over the points matching `query`.
    ///
    /// Points lacking the field are skipped. Returns `None` when nothing
    /// matched.
    ///
    /// # Errors
    ///
    /// Currently infallible (see [`Database::query`]).
    pub fn aggregate(
        &self,
        query: &Query,
        field: &str,
        agg: Aggregate,
    ) -> Result<Option<f64>, TsdbError> {
        let values: Vec<f64> = self
            .points
            .read()
            .iter()
            .filter(|p| query.matches(p))
            .filter_map(|p| p.field_value(field))
            .collect();
        Ok(agg.apply(&values))
    }

    /// Aggregates `field` into fixed time windows of `window_us`
    /// microseconds (Influx's `GROUP BY time(...)`). Returns
    /// `(window_start_us, value)` pairs for non-empty windows, in time
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::InvalidPoint`] when `window_us` is zero.
    pub fn aggregate_by_time(
        &self,
        query: &Query,
        field: &str,
        agg: Aggregate,
        window_us: u64,
    ) -> Result<Vec<(u64, f64)>, TsdbError> {
        if window_us == 0 {
            return Err(TsdbError::InvalidPoint {
                reason: "window must be positive".into(),
            });
        }
        let mut buckets: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
        for p in self.points.read().iter().filter(|p| query.matches(p)) {
            if let Some(v) = p.field_value(field) {
                let start = p.timestamp_us() / window_us * window_us;
                buckets.entry(start).or_default().push(v);
            }
        }
        Ok(buckets
            .into_iter()
            .filter_map(|(start, values)| agg.apply(&values).map(|v| (start, v)))
            .collect())
    }

    /// Exports every stored point as Influx line protocol, one per line.
    pub fn to_line_protocol(&self) -> String {
        self.points
            .read()
            .iter()
            .map(crate::Point::to_line_protocol)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Imports points from Influx line protocol (one point per non-empty,
    /// non-comment line).
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::Corrupt`] on the first malformed line; earlier
    /// lines remain imported.
    pub fn import_line_protocol(&self, text: &str) -> Result<usize, TsdbError> {
        let mut imported = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            self.write(crate::Point::from_line_protocol(line)?)?;
            imported += 1;
        }
        Ok(imported)
    }

    /// Total number of stored points.
    pub fn len(&self) -> usize {
        self.points.read().len()
    }

    /// Returns `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.read().is_empty()
    }

    /// Deletes points with `timestamp < before_us` (retention policy).
    /// Returns the number deleted.
    pub fn retain_from(&self, before_us: u64) -> usize {
        let mut guard = self.points.write();
        let before = guard.len();
        guard.retain(|p| p.timestamp_us() >= before_us);
        before - guard.len()
    }

    /// Serialises the whole store to a JSON file.
    ///
    /// The write is crash-safe: the JSON goes to a unique temporary file in
    /// the destination directory and is published with an atomic rename, so
    /// a crash mid-save leaves either the previous file or the new one —
    /// never a truncated mix (the warm-start path depends on this).
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::Io`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), TsdbError> {
        let guard = self.points.read();
        let json = serde_json::to_string(&*guard)
            .map_err(|e| TsdbError::Corrupt { reason: e.to_string() })?;
        drop(guard);
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp_name = format!(
            ".{}.{}.{}.tmp",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("tsdb"),
            std::process::id(),
            SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let tmp = match dir {
            Some(d) => d.join(&tmp_name),
            None => std::path::PathBuf::from(&tmp_name),
        };
        std::fs::write(&tmp, json)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }

    /// Loads a store previously written by [`Database::save`].
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::Io`] on filesystem failures and
    /// [`TsdbError::Corrupt`] when the JSON cannot be decoded.
    pub fn load(path: &Path) -> Result<Self, TsdbError> {
        let text = std::fs::read_to_string(path)?;
        let points: Vec<Point> =
            serde_json::from_str(&text).map_err(|e| TsdbError::Corrupt { reason: e.to_string() })?;
        Ok(Database { points: RwLock::new(points) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let db = Database::new();
        for i in 0..10u64 {
            let workload = if i % 2 == 0 { "lenet" } else { "cnn" };
            db.write(
                Point::new("epoch", i * 1000)
                    .tag("workload", workload)
                    .field("runtime", i as f64),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn query_filters_by_tag_and_time() {
        let db = sample_db();
        let q = Query::measurement("epoch").with_tag("workload", "lenet").from_us(4000);
        let rows = db.query(&q).unwrap();
        assert_eq!(rows.len(), 3); // i = 4, 6, 8
    }

    #[test]
    fn aggregate_mean_over_filter() {
        let db = sample_db();
        let q = Query::measurement("epoch").with_tag("workload", "cnn");
        let mean = db.aggregate(&q, "runtime", Aggregate::Mean).unwrap().unwrap();
        assert_eq!(mean, 5.0); // (1+3+5+7+9)/5
    }

    #[test]
    fn aggregate_of_nothing_is_none() {
        let db = sample_db();
        let q = Query::measurement("missing");
        assert_eq!(db.aggregate(&q, "runtime", Aggregate::Sum).unwrap(), None);
    }

    #[test]
    fn invalid_point_is_rejected() {
        let db = Database::new();
        assert!(db.write(Point::new("m", 0)).is_err());
        assert!(db.is_empty());
    }

    #[test]
    fn aggregate_by_time_groups_into_windows() {
        let db = sample_db(); // timestamps 0, 1000, ..., 9000
        let q = Query::measurement("epoch");
        let windows =
            db.aggregate_by_time(&q, "runtime", Aggregate::Sum, 5000).unwrap();
        // Window [0,5000): i=0..4 → sum 10; window [5000,10000): i=5..9 → 35.
        assert_eq!(windows, vec![(0, 10.0), (5000, 35.0)]);
        assert!(db.aggregate_by_time(&q, "runtime", Aggregate::Sum, 0).is_err());
    }

    #[test]
    fn line_protocol_round_trips_the_store() {
        let db = sample_db();
        let text = db.to_line_protocol();
        let restored = Database::new();
        let n = restored.import_line_protocol(&text).unwrap();
        assert_eq!(n, db.len());
        let q = Query::measurement("epoch").with_tag("workload", "cnn");
        assert_eq!(
            restored.aggregate(&q, "runtime", Aggregate::Mean).unwrap(),
            db.aggregate(&q, "runtime", Aggregate::Mean).unwrap()
        );
    }

    #[test]
    fn import_skips_comments_and_blank_lines() {
        let db = Database::new();
        let n = db
            .import_line_protocol("# comment\n\nm f=1 5\nm f=2 6\n")
            .unwrap();
        assert_eq!(n, 2);
        assert!(db.import_line_protocol("garbage").is_err());
    }

    #[test]
    fn retention_deletes_old_points() {
        let db = sample_db();
        let deleted = db.retain_from(5000);
        assert_eq!(deleted, 5);
        assert_eq!(db.len(), 5);
    }

    #[test]
    fn save_and_load_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("pipetune_tsdb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        assert_eq!(loaded.len(), db.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_replaces_existing_file_atomically_and_leaves_no_temp() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("pipetune_tsdb_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        // Overwrite an existing (stale) file in place.
        std::fs::write(&path, "stale contents").unwrap();
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        assert_eq!(loaded.len(), db.len());
        // No temporary artefacts survive a successful save.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        // Saving into a missing directory fails without clobbering `path`.
        let bad = dir.join("no_such_dir").join("db.json");
        assert!(matches!(db.save(&bad), Err(TsdbError::Io(_))));
        assert!(Database::load(&path).is_ok(), "original file untouched");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_corrupt_json() {
        let dir = std::env::temp_dir().join("pipetune_tsdb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(Database::load(&path), Err(TsdbError::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_writes_and_reads() {
        use std::sync::Arc;
        let db = Arc::new(Database::new());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        db.write(Point::new("m", t * 1000 + i).field("x", i as f64)).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(db.len(), 400);
    }
}
