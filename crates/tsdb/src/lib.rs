//! Embedded time-series store standing in for InfluxDB.
//!
//! The paper's prototype persists every per-epoch metric and profile to
//! InfluxDB (v1.7.4) and queries it from the ground-truth module (§6). This
//! crate provides the same contract in-process: tagged, timestamped points
//! with range queries, tag filtering, aggregation and JSON persistence.
//!
//! The store is thread-safe (PipeTune's pipelined system tuning writes from
//! trial threads while the ground-truth reader queries).
//!
//! # Example
//!
//! ```
//! use pipetune_tsdb::{Database, Point, Query};
//!
//! let db = Database::new();
//! db.write(
//!     Point::new("epoch_metrics", 1_000)
//!         .tag("workload", "lenet/mnist")
//!         .field("runtime_secs", 42.0),
//! )?;
//! let rows = db.query(&Query::measurement("epoch_metrics").with_tag("workload", "lenet/mnist"))?;
//! assert_eq!(rows.len(), 1);
//! # Ok::<(), pipetune_tsdb::TsdbError>(())
//! ```

#![warn(missing_docs)]

mod db;
mod line_protocol;
mod point;
mod query;

pub use db::Database;
pub use point::Point;
pub use query::{Aggregate, Query};

use std::error::Error;
use std::fmt;

/// Error type for database operations.
#[derive(Debug)]
pub enum TsdbError {
    /// A point was rejected (empty measurement or no fields).
    InvalidPoint {
        /// Why the point was rejected.
        reason: String,
    },
    /// Persistence I/O failed.
    Io(std::io::Error),
    /// Persisted JSON could not be decoded.
    Corrupt {
        /// Decoder error text.
        reason: String,
    },
}

impl fmt::Display for TsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsdbError::InvalidPoint { reason } => write!(f, "invalid point: {reason}"),
            TsdbError::Io(e) => write!(f, "i/o error: {e}"),
            TsdbError::Corrupt { reason } => write!(f, "corrupt database file: {reason}"),
        }
    }
}

impl Error for TsdbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TsdbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TsdbError {
    fn from(e: std::io::Error) -> Self {
        TsdbError::Io(e)
    }
}
