//! Simulated PDU sample stream and trapezoidal energy integration.

use serde::{Deserialize, Serialize};

/// A power-distribution-unit trace: per-second power samples at 1 W
/// resolution (the paper's LINDY iPower Control, §7.1.1).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PduTrace {
    /// `(time_secs, watts)` samples, non-decreasing in time.
    samples: Vec<(f64, f64)>,
}

impl PduTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PduTrace { samples: Vec::new() }
    }

    /// Records a constant-power interval `[start, end)` as 1 Hz samples,
    /// quantised to 1 W (the PDU's resolution).
    ///
    /// Intervals may be appended out of order across recorders; call
    /// [`PduTrace::sort`] before integrating if so. Zero-length or inverted
    /// intervals record nothing.
    pub fn record_interval(&mut self, start: f64, end: f64, watts: f64) {
        if !(start.is_finite() && end.is_finite() && watts.is_finite()) || end <= start {
            return;
        }
        let w = watts.max(0.0).round();
        let mut t = start;
        while t < end {
            self.samples.push((t, w));
            t += 1.0;
        }
        self.samples.push((end, w));
    }

    /// Sorts samples by time (needed when several recorders interleave).
    pub fn sort(&mut self) {
        self.samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Trapezoidal integral of the power samples: the paper's energy
    /// estimator (§3.2). Returns joules (watt-seconds).
    pub fn energy_joules(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| {
                let dt = (w[1].0 - w[0].0).max(0.0);
                0.5 * (w[0].1 + w[1].1) * dt
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_integrates_exactly() {
        let mut pdu = PduTrace::new();
        pdu.record_interval(0.0, 10.0, 100.0);
        assert!((pdu.energy_joules() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn quantisation_rounds_to_one_watt() {
        let mut pdu = PduTrace::new();
        pdu.record_interval(0.0, 1.0, 99.6);
        assert_eq!(pdu.samples()[0].1, 100.0);
    }

    #[test]
    fn step_change_integrates_piecewise() {
        let mut pdu = PduTrace::new();
        pdu.record_interval(0.0, 5.0, 50.0);
        pdu.record_interval(5.0, 10.0, 150.0);
        // 5s at 50W + 5s at 150W, plus the 0-length trapezoid at the join.
        let e = pdu.energy_joules();
        assert!((e - (250.0 + 750.0)).abs() < 101.0, "energy {e}");
    }

    #[test]
    fn invalid_intervals_record_nothing() {
        let mut pdu = PduTrace::new();
        pdu.record_interval(5.0, 5.0, 100.0);
        pdu.record_interval(9.0, 3.0, 100.0);
        pdu.record_interval(0.0, 1.0, f64::NAN);
        assert!(pdu.is_empty());
        assert_eq!(pdu.energy_joules(), 0.0);
    }

    #[test]
    fn out_of_order_intervals_integrate_after_sort() {
        let mut pdu = PduTrace::new();
        pdu.record_interval(10.0, 20.0, 100.0);
        pdu.record_interval(0.0, 10.0, 100.0);
        pdu.sort();
        assert!((pdu.energy_joules() - 2000.0).abs() < 1e-6);
    }
}
